"""The paper's shape claims as executable checks.

EXPERIMENTS.md records the reproduction scorecard prose-style; this
module encodes each claim as a function over figure results, so the
scorecard can be *recomputed* — by the test suite at small scale, by
``rapflow check-claims`` at paper scale, and by CI against archived
results.

Every check returns a :class:`ClaimResult` with the measured evidence,
never raises on failure — a failed claim is a finding, not a crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import ExperimentError
from .results import FigureResult

PROPOSED = "composite-greedy"


@dataclass(frozen=True)
class ClaimResult:
    """One paper claim, checked against measured results."""

    claim_id: str
    description: str
    holds: bool
    evidence: str

    def __str__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        return f"[{status}] {self.claim_id}: {self.description} — {self.evidence}"


def _final(figure: FigureResult, panel_id: str, algorithm: str) -> float:
    return figure.panel(panel_id).series[algorithm].final


def check_fig10(figure: FigureResult) -> List[ClaimResult]:
    """Claims over Fig. 10 (Dublin, utility comparison)."""
    results: List[ClaimResult] = []

    by_utility = {
        panel.spec.utility: panel for panel in figure.panels.values()
    }
    t = by_utility["threshold"].series[PROPOSED].final
    l = by_utility["linear"].series[PROPOSED].final
    s = by_utility["sqrt"].series[PROPOSED].final
    results.append(
        ClaimResult(
            claim_id="fig10-utility-ordering",
            description="threshold >= decreasing-i >= decreasing-ii",
            holds=t >= l - 1e-9 and l >= s - 1e-9,
            evidence=f"finals {t:.3g} / {l:.3g} / {s:.3g}",
        )
    )
    for utility, panel in by_utility.items():
        final_k = panel.spec.ks[-1]
        winner = panel.best_algorithm(final_k)
        gain = panel.gain_over_best_baseline(PROPOSED, final_k)
        results.append(
            ClaimResult(
                claim_id=f"fig10-{utility}-proposed-wins",
                description=(
                    f"proposed algorithm beats every baseline at k={final_k} "
                    f"({utility} utility)"
                ),
                holds=winner == PROPOSED,
                evidence=f"winner={winner}, margin {gain:+.1%}",
            )
        )
    return results


def check_fig11(figure: FigureResult) -> List[ClaimResult]:
    """Claims over Fig. 11 (shop location x threshold)."""
    results: List[ClaimResult] = []
    by_key: Dict[tuple, float] = {}
    for panel in figure.panels.values():
        key = (panel.spec.shop_location, panel.spec.threshold)
        by_key[key] = panel.series[PROPOSED].final
    locations = sorted({loc for loc, _ in by_key}, key=lambda l: l.value)
    thresholds = sorted({d for _, d in by_key})
    if len(thresholds) != 2:
        raise ExperimentError("fig11 check expects exactly two thresholds")
    small_d, large_d = thresholds
    for location in locations:
        small = by_key[(location, small_d)]
        large = by_key[(location, large_d)]
        results.append(
            ClaimResult(
                claim_id=f"fig11-{location.value}-larger-D-helps",
                description=(
                    f"D={large_d:g} attracts >= D={small_d:g} "
                    f"(shop in {location.value})"
                ),
                holds=large >= small - 1e-9,
                evidence=f"{small:.3g} -> {large:.3g}",
            )
        )
    # Absolute level ordering center > city > suburb at the large D.
    from .locations import LocationClass

    center = by_key.get((LocationClass.CITY_CENTER, large_d))
    city = by_key.get((LocationClass.CITY, large_d))
    suburb = by_key.get((LocationClass.SUBURB, large_d))
    if None not in (center, city, suburb):
        results.append(
            ClaimResult(
                claim_id="fig11-location-ordering",
                description="center >= city >= suburb absolute levels",
                holds=center >= city - 1e-9 and city >= suburb - 1e-9,
                evidence=f"{center:.3g} / {city:.3g} / {suburb:.3g}",
            )
        )
    return results


def check_fig12(figure: FigureResult) -> List[ClaimResult]:
    """Claims over Fig. 12 (Seattle general scenario)."""
    results: List[ClaimResult] = []
    by_key = {
        (panel.spec.utility, panel.spec.threshold): panel.series[PROPOSED].final
        for panel in figure.panels.values()
    }
    thresholds = sorted({d for _, d in by_key})
    small_d, large_d = thresholds[0], thresholds[-1]
    for utility in ("threshold", "linear"):
        small = by_key[(utility, small_d)]
        large = by_key[(utility, large_d)]
        results.append(
            ClaimResult(
                claim_id=f"fig12-{utility}-larger-D-helps",
                description=f"D={large_d:g} >= D={small_d:g} ({utility})",
                holds=large >= small - 1e-9,
                evidence=f"{small:.3g} -> {large:.3g} "
                f"({large / small - 1:+.0%} vs paper's ~+30%)"
                if small > 0
                else f"{small:.3g} -> {large:.3g}",
            )
        )
    for d in thresholds:
        results.append(
            ClaimResult(
                claim_id=f"fig12-threshold-beats-linear-d{int(d)}",
                description=f"threshold utility >= linear at D={d:g}",
                holds=by_key[("threshold", d)] >= by_key[("linear", d)] - 1e-9,
                evidence=(
                    f"{by_key[('threshold', d)]:.3g} vs "
                    f"{by_key[('linear', d)]:.3g}"
                ),
            )
        )
    return results


def check_fig13_vs_fig12(
    fig13: FigureResult, fig12: FigureResult
) -> List[ClaimResult]:
    """The cross-figure claim: Manhattan semantics attract more."""
    results: List[ClaimResult] = []
    shared = ("max-cardinality", "max-vehicles", "max-customers")
    for m_panel in fig13.panels.values():
        matches = [
            g
            for g in fig12.panels.values()
            if g.spec.utility == m_panel.spec.utility
            and g.spec.threshold == m_panel.spec.threshold
        ]
        if len(matches) != 1:
            continue
        g_panel = matches[0]
        for name in shared:
            manhattan = m_panel.series[name].final
            general = g_panel.series[name].final
            results.append(
                ClaimResult(
                    claim_id=(
                        f"fig13-dominates-fig12-{name}-"
                        f"{m_panel.spec.utility}-d{int(m_panel.spec.threshold)}"
                    ),
                    description=(
                        "Manhattan routing attracts >= general routing "
                        f"({name})"
                    ),
                    holds=manhattan >= general - 1e-9,
                    evidence=f"{general:.3g} -> {manhattan:.3g}",
                )
            )
    return results


CheckFunction = Callable[..., List[ClaimResult]]

FIGURE_CHECKS: Dict[str, CheckFunction] = {
    "fig10": check_fig10,
    "fig11": check_fig11,
    "fig12": check_fig12,
}


def check_all(results_by_figure: Dict[str, FigureResult]) -> List[ClaimResult]:
    """Run every applicable check over the provided figure results."""
    claims: List[ClaimResult] = []
    for figure_id, check in FIGURE_CHECKS.items():
        figure = results_by_figure.get(figure_id)
        if figure is not None:
            claims.extend(check(figure))
    if "fig13" in results_by_figure and "fig12" in results_by_figure:
        claims.extend(
            check_fig13_vs_fig12(
                results_by_figure["fig13"], results_by_figure["fig12"]
            )
        )
    return claims


def render_claims(claims: List[ClaimResult]) -> str:
    """The scorecard as text, failures first."""
    ordered = sorted(claims, key=lambda c: c.holds)
    passed = sum(1 for claim in claims if claim.holds)
    lines = [f"claims: {passed}/{len(claims)} hold"]
    lines.extend(str(claim) for claim in ordered)
    return "\n".join(lines)
