"""Shop-location classes: city's center / city / suburb.

The paper classifies all street intersections by the amount of passing
traffic and then reports results "when the shop is located in the city"
etc., averaging over random intersections of the requested class.  This
module reproduces that: intersections are ranked by passing traffic
volume and split by quantile —

* **CITY_CENTER** — the busiest ``center_fraction`` of intersections;
* **CITY** — the next tier, down to ``city_fraction``;
* **SUBURB** — everything else (including intersections no targeted flow
  passes at all).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence

from ..core import TrafficFlow
from ..errors import ExperimentError
from ..graphs import NodeId, RoadNetwork
from ..traces import node_traffic


class LocationClass(enum.Enum):
    """Where the shop sits, by surrounding traffic density."""

    CITY_CENTER = "center"
    CITY = "city"
    SUBURB = "suburb"


def classify_intersections(
    network: RoadNetwork,
    flows: Sequence[TrafficFlow],
    center_fraction: float = 0.10,
    city_fraction: float = 0.40,
) -> Dict[NodeId, LocationClass]:
    """Assign every intersection a :class:`LocationClass`.

    ``center_fraction`` and ``city_fraction`` are cumulative: with the
    defaults, the top 10% busiest intersections are CITY_CENTER and the
    next 30% are CITY.
    """
    if not (0 < center_fraction < city_fraction <= 1):
        raise ExperimentError(
            f"need 0 < center_fraction < city_fraction <= 1, got "
            f"{center_fraction}, {city_fraction}"
        )
    stats = node_traffic(flows)
    nodes = list(network.nodes())
    # Busiest first; break volume ties deterministically by insertion order.
    order = {node: index for index, node in enumerate(nodes)}
    ranked = sorted(
        nodes,
        key=lambda node: (-stats.get(node, (0, 0.0))[1], order[node]),
    )
    center_cut = max(1, round(len(ranked) * center_fraction))
    city_cut = max(center_cut + 1, round(len(ranked) * city_fraction))
    classes: Dict[NodeId, LocationClass] = {}
    for index, node in enumerate(ranked):
        if index < center_cut:
            classes[node] = LocationClass.CITY_CENTER
        elif index < city_cut:
            classes[node] = LocationClass.CITY
        else:
            classes[node] = LocationClass.SUBURB
    return classes


def locations_of_class(
    classes: Dict[NodeId, LocationClass], location: LocationClass
) -> List[NodeId]:
    """All intersections tagged ``location`` (deterministic order)."""
    return [node for node, tag in classes.items() if tag is location]


def passing_volume(
    flows: Sequence[TrafficFlow], node: NodeId
) -> float:
    """Traffic volume through one intersection (convenience for reports)."""
    return node_traffic(flows).get(node, (0, 0.0))[1]
