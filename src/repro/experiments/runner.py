"""Panel/figure runner.

Reproduces the paper's experimental protocol:

1. generate (or reuse) the city's bus trace, map-match it, and extract
   traffic flows;
2. classify intersections into city's center / city / suburb by passing
   traffic;
3. for each repetition, draw a shop of the requested class, build the
   scenario, run every algorithm across the ``k`` sweep, and record the
   attracted customers;
4. average into per-algorithm :class:`~repro.experiments.results.Series`.

Greedy and ranking algorithms are *prefix-consistent* — their k-RAP
selection is a prefix of their (k+1)-RAP selection — so the runner
selects once at ``max(ks)`` and evaluates prefixes, cutting the sweep
cost by ~|ks|x.  The two-stage Manhattan algorithms are not (the
``k <= 4`` branch differs structurally), so they select per ``k``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..algorithms import algorithm_by_name
from ..core import (
    Scenario,
    TrafficFlow,
    evaluate_placement_many,
    utility_by_name,
)
from ..errors import ExperimentError
from ..graphs import NodeId, RoadNetwork
from ..manhattan import (
    ManhattanEvaluator,
    ManhattanScenario,
    ModifiedTwoStagePlacement,
    TwoStagePlacement,
)
from ..traces import (
    BusTrace,
    DublinTraceConfig,
    SeattleTraceConfig,
    generate_dublin_trace,
    generate_seattle_trace,
)
from .locations import (
    classify_intersections,
    locations_of_class,
)
from .results import FigureResult, PanelResult, Series, mean_and_stdev
from .spec import MANHATTAN, FigureSpec, PanelSpec

#: Algorithms whose k-selection is a prefix of their (k+1)-selection.
PREFIX_CONSISTENT = {
    "greedy-coverage",
    "composite-greedy",
    "marginal-greedy",
    "lazy-greedy",
    "max-cardinality",
    "max-vehicles",
    "max-customers",
    "random",
}

#: Manhattan-semantics algorithms handled specially by the runner.
MANHATTAN_LOCAL = {
    "two-stage": TwoStagePlacement,
    "modified-two-stage": ModifiedTwoStagePlacement,
}


@dataclass
class TraceBundle:
    """A city's trace, network, and extracted flows (built once)."""

    city: str
    network: RoadNetwork
    flows: Tuple[TrafficFlow, ...]
    trace: BusTrace


class TraceProvider:
    """Builds and caches trace bundles.

    ``scale`` picks the instance size: ``"paper"`` approximates the
    paper's trace sizes; ``"small"`` is a fast variant for tests and CI
    benchmarking.
    """

    def __init__(self, scale: str = "paper", seed: int = 2015) -> None:
        if scale not in ("paper", "small"):
            raise ExperimentError(f"unknown scale {scale!r}")
        self._scale = scale
        self._seed = seed
        self._cache: Dict[str, TraceBundle] = {}

    def _config(self, city: str):
        if city == "dublin":
            if self._scale == "paper":
                return DublinTraceConfig(seed=self._seed)
            return DublinTraceConfig(
                seed=self._seed, rows=9, cols=9, pattern_count=15
            )
        if city == "seattle":
            if self._scale == "paper":
                return SeattleTraceConfig(seed=self._seed)
            return SeattleTraceConfig(
                seed=self._seed, rows=11, cols=11, pattern_count=15
            )
        raise ExperimentError(f"unknown city {city!r}")

    def get(self, city: str) -> TraceBundle:
        """Build (or return the cached) trace bundle for a city."""
        bundle = self._cache.get(city)
        if bundle is not None:
            obs.count("trace.cache_hits")
            return bundle
        config = self._config(city)
        with obs.span("trace_build", city=city, scale=self._scale):
            if city == "dublin":
                trace = generate_dublin_trace(config)
            else:
                trace = generate_seattle_trace(config)
            flows = tuple(trace.extract_flows())
        if obs.active() is not None:
            obs.count_many({"trace.builds": 1, "trace.flows": len(flows)})
        bundle = TraceBundle(
            city=city, network=trace.network, flows=flows, trace=trace
        )
        self._cache[city] = bundle
        return bundle


def _select_sweep(
    algorithm_name: str,
    scenario: Scenario,
    ks: Sequence[int],
    rep_seed: int,
) -> Dict[int, List[NodeId]]:
    """Sites per k for a general-scenario algorithm."""
    kwargs = {"seed": rep_seed} if algorithm_name == "random" else {}
    algorithm = algorithm_by_name(algorithm_name, **kwargs)
    sweep: Dict[int, List[NodeId]] = {}
    max_k = min(max(ks), len(scenario.candidate_sites))
    if algorithm_name in PREFIX_CONSISTENT:
        sites = algorithm.select(scenario, max_k)
        for k in ks:
            sweep[k] = sites[: min(k, len(sites))]
    else:
        for k in ks:
            sweep[k] = algorithm.select(scenario, min(k, max_k))
    return sweep


def _general_repetition(
    panel: PanelSpec, bundle: TraceBundle, shop: NodeId, rep: int
) -> Dict[str, Dict[int, float]]:
    utility = utility_by_name(panel.utility, panel.threshold)
    scenario = Scenario(bundle.network, bundle.flows, shop, utility)
    values: Dict[str, Dict[int, float]] = {}
    for name in panel.algorithms:
        sweep = _select_sweep(name, scenario, panel.ks, panel.seed * 1000 + rep)
        # One batched scoring pass over the packed coverage index for the
        # whole k sweep instead of re-walking every flow per k.
        totals = evaluate_placement_many(
            scenario, [sweep[k] for k in panel.ks]
        )
        values[name] = dict(zip(panel.ks, totals))
    return values


def _manhattan_repetition(
    panel: PanelSpec, bundle: TraceBundle, shop: NodeId, rep: int
) -> Dict[str, Dict[int, float]]:
    utility = utility_by_name(panel.utility, panel.threshold)
    manhattan = ManhattanScenario(bundle.network, bundle.flows, shop, utility)
    evaluator = ManhattanEvaluator(manhattan)
    general = Scenario(bundle.network, bundle.flows, shop, utility)
    site_cap = len(manhattan.candidate_sites)
    values: Dict[str, Dict[int, float]] = {}
    for name in panel.algorithms:
        if name in MANHATTAN_LOCAL:
            algorithm = MANHATTAN_LOCAL[name]()
            values[name] = {
                k: evaluator.evaluate(
                    algorithm.select(manhattan, min(k, site_cap))
                ).attracted
                for k in panel.ks
            }
        else:
            sweep = _select_sweep(
                name, general, panel.ks, panel.seed * 1000 + rep
            )
            values[name] = {
                k: evaluator.evaluate(sweep[k]).attracted for k in panel.ks
            }
    return values


def panel_repetition(
    panel: PanelSpec, bundle: TraceBundle, shop: NodeId, rep: int
) -> Dict[str, Dict[int, float]]:
    """Run one shop draw of a panel: ``values[algorithm][k]``.

    This is the checkpointable unit of work — the checkpointed runner in
    :mod:`repro.reliability.checkpoint` persists exactly one of these
    per repetition, and :func:`run_panel` is a loop over them.
    """
    with obs.span("repetition", panel=panel.panel_id, rep=rep):
        obs.count("panel.repetitions")
        if panel.semantics == MANHATTAN:
            return _manhattan_repetition(panel, bundle, shop, rep)
        return _general_repetition(panel, bundle, shop, rep)


def panel_shops(panel: PanelSpec, bundle: TraceBundle) -> List[NodeId]:
    """The panel's deterministic shop draws (one per repetition)."""
    classes = classify_intersections(bundle.network, bundle.flows)
    pool = locations_of_class(classes, panel.shop_location)
    if not pool:
        raise ExperimentError(
            f"no intersections classified as {panel.shop_location.value}"
        )
    rng = random.Random(panel.seed)
    return [rng.choice(pool) for _ in range(panel.repetitions)]


def aggregate_panel(
    panel: PanelSpec, values: Dict[str, Dict[int, List[float]]]
) -> PanelResult:
    result = PanelResult(spec=panel)
    for name in panel.algorithms:
        means: List[float] = []
        stdevs: List[float] = []
        for k in panel.ks:
            mean, stdev = mean_and_stdev(values[name][k])
            means.append(mean)
            stdevs.append(stdev)
        result.add(
            Series(
                algorithm=name,
                ks=tuple(panel.ks),
                means=tuple(means),
                stdevs=tuple(stdevs),
            )
        )
    return result


def run_panel(
    panel: PanelSpec, provider: Optional[TraceProvider] = None
) -> PanelResult:
    """Run one panel end to end.

    When an :class:`repro.obs.ObsContext` is active, the panel runs
    inside a ``panel`` span and the counters it accumulated (gain
    evaluations, CELF skips, pack stats, ...) land on the returned
    :attr:`~repro.experiments.results.PanelResult.metrics`.
    """
    provider = provider or TraceProvider()
    ctx = obs.active()
    with obs.span("panel", panel=panel.panel_id, city=panel.city):
        before = ctx.snapshot() if ctx is not None else None
        bundle = provider.get(panel.city)
        shops = panel_shops(panel, bundle)
        values: Dict[str, Dict[int, List[float]]] = {
            name: {k: [] for k in panel.ks} for name in panel.algorithms
        }
        for rep, shop in enumerate(shops):
            rep_values = panel_repetition(panel, bundle, shop, rep)
            for name in panel.algorithms:
                for k in panel.ks:
                    values[name][k].append(rep_values[name][k])
        result = aggregate_panel(panel, values)
        if ctx is not None and before is not None:
            result.metrics = ctx.counters_since(before)
        return result


def run_figure(
    figure: FigureSpec, provider: Optional[TraceProvider] = None
) -> FigureResult:
    """Run every panel of a figure (sharing the trace provider cache)."""
    provider = provider or TraceProvider()
    result = FigureResult(spec=figure)
    with obs.span("figure", figure=figure.figure_id):
        for panel in figure.panels:
            result.add(run_panel(panel, provider))
    return result
