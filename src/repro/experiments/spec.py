"""Experiment specifications.

A :class:`PanelSpec` describes one sub-figure of the paper's evaluation:
a city trace, a utility function with its threshold ``D``, a shop
location class, the RAP budgets to sweep, the algorithms to compare, the
evaluation semantics (general fixed-path vs Manhattan), and the number of
random shop draws to average over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import ExperimentError
from .locations import LocationClass

GENERAL = "general"
MANHATTAN = "manhattan"

#: Algorithms plotted in the general-scenario figures.  The composite
#: greedy is the paper's proposed line (it *is* Algorithm 1 under the
#: threshold utility and Algorithm 2 under decreasing utilities).
GENERAL_ALGORITHMS: Tuple[str, ...] = (
    "composite-greedy",
    "max-cardinality",
    "max-vehicles",
    "max-customers",
    "random",
)

#: Algorithms plotted in the Manhattan-scenario figure; "two-stage" is
#: Algorithm 3 under the threshold utility and "modified-two-stage" is
#: Algorithm 4 under decreasing utilities.
MANHATTAN_ALGORITHMS: Tuple[str, ...] = (
    "two-stage",
    "max-cardinality",
    "max-vehicles",
    "max-customers",
    "random",
)


@dataclass(frozen=True)
class PanelSpec:
    """One panel (sub-figure) of an evaluation figure."""

    panel_id: str
    city: str
    utility: str
    threshold: float
    shop_location: LocationClass = LocationClass.CITY
    ks: Tuple[int, ...] = tuple(range(1, 11))
    algorithms: Tuple[str, ...] = GENERAL_ALGORITHMS
    semantics: str = GENERAL
    repetitions: int = 20
    seed: int = 42

    def __post_init__(self) -> None:
        if self.city not in ("dublin", "seattle"):
            raise ExperimentError(f"unknown city {self.city!r}")
        if self.semantics not in (GENERAL, MANHATTAN):
            raise ExperimentError(f"unknown semantics {self.semantics!r}")
        if self.threshold <= 0:
            raise ExperimentError(f"threshold must be positive, got {self.threshold}")
        if not self.ks or any(k < 0 for k in self.ks):
            raise ExperimentError(f"invalid k sweep {self.ks!r}")
        if self.repetitions < 1:
            raise ExperimentError(
                f"need at least one repetition, got {self.repetitions}"
            )
        if not self.algorithms:
            raise ExperimentError("panel needs at least one algorithm")

    def describe(self) -> str:
        """One-line human-readable description of the panel settings."""
        return (
            f"{self.panel_id}: {self.city}, {self.utility} utility, "
            f"D={self.threshold:g} ft, shop in {self.shop_location.value}, "
            f"{self.semantics} scenario, k in {self.ks[0]}..{self.ks[-1]}, "
            f"{self.repetitions} shop draws"
        )


@dataclass(frozen=True)
class FigureSpec:
    """A full evaluation figure — an ordered list of panels."""

    figure_id: str
    title: str
    panels: Tuple[PanelSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.panels:
            raise ExperimentError(f"figure {self.figure_id} has no panels")
        seen = set()
        for panel in self.panels:
            if panel.panel_id in seen:
                raise ExperimentError(
                    f"figure {self.figure_id}: duplicate panel "
                    f"{panel.panel_id!r}"
                )
            seen.add(panel.panel_id)
