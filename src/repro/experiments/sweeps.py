"""Sensitivity sweeps beyond the paper's figure grid.

The paper varies the utility function, threshold ``D``, shop location,
and ``k``.  Real deployments also need to know how results respond to
the *other* knobs:

* :func:`sweep_threshold` — attracted customers as a continuous function
  of ``D`` for a fixed budget (where does enlarging the catchment stop
  paying?);
* :func:`sweep_budget` — the value-per-RAP curve out to saturation
  (where does the k-th RAP stop earning?);
* :func:`sweep_attractiveness` — linearity check in ``alpha`` (the
  expectation is linear in attractiveness; simulated systems often
  aren't — this sweep validates the model end to end).

Every sweep returns a :class:`SweepResult` of aligned (x, value) points
ready for :func:`repro.analysis.charts.line_chart`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..algorithms import PlacementAlgorithm, algorithm_by_name
from ..core import Scenario, TrafficFlow, evaluate_placement, utility_by_name
from ..errors import ExperimentError
from ..graphs import NodeId, RoadNetwork


@dataclass(frozen=True)
class SweepResult:
    """One parameter sweep: aligned xs and attracted-customer values."""

    parameter: str
    xs: Tuple[float, ...]
    values: Tuple[float, ...]
    algorithm: str

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.values):
            raise ExperimentError(
                f"sweep {self.parameter}: {len(self.xs)} xs vs "
                f"{len(self.values)} values"
            )

    @property
    def peak(self) -> Tuple[float, float]:
        """``(x, value)`` at the maximum."""
        index = max(range(len(self.values)), key=self.values.__getitem__)
        return self.xs[index], self.values[index]

    def saturation_x(self, fraction: float = 0.95) -> float:
        """Smallest x reaching ``fraction`` of the final value."""
        if not self.values:
            raise ExperimentError("empty sweep")
        target = fraction * self.values[-1]
        for x, value in zip(self.xs, self.values):
            if value >= target:
                return x
        return self.xs[-1]


def _resolve(algorithm) -> PlacementAlgorithm:
    if isinstance(algorithm, str):
        return algorithm_by_name(algorithm)
    return algorithm


def sweep_threshold(
    network: RoadNetwork,
    flows: Sequence[TrafficFlow],
    shop: NodeId,
    utility_name: str,
    thresholds: Sequence[float],
    k: int,
    algorithm="composite-greedy",
) -> SweepResult:
    """Attracted customers vs detour threshold ``D`` at fixed ``k``."""
    if not thresholds:
        raise ExperimentError("need at least one threshold")
    solver = _resolve(algorithm)
    values = []
    for threshold in thresholds:
        scenario = Scenario(
            network, flows, shop, utility_by_name(utility_name, threshold)
        )
        budget = min(k, len(scenario.candidate_sites))
        values.append(solver.place(scenario, budget).attracted)
    return SweepResult(
        parameter="threshold",
        xs=tuple(float(t) for t in thresholds),
        values=tuple(values),
        algorithm=solver.name,
    )


def sweep_budget(
    scenario: Scenario,
    ks: Sequence[int],
    algorithm="composite-greedy",
) -> SweepResult:
    """Attracted customers vs RAP budget on one fixed scenario."""
    if not ks:
        raise ExperimentError("need at least one budget")
    solver = _resolve(algorithm)
    max_k = min(max(ks), len(scenario.candidate_sites))
    sites = solver.select(scenario, max_k)
    values = tuple(
        evaluate_placement(scenario, sites[: min(k, len(sites))]).attracted
        for k in ks
    )
    return SweepResult(
        parameter="budget",
        xs=tuple(float(k) for k in ks),
        values=values,
        algorithm=solver.name,
    )


def sweep_attractiveness(
    network: RoadNetwork,
    flows: Sequence[TrafficFlow],
    shop: NodeId,
    utility_name: str,
    threshold: float,
    alphas: Sequence[float],
    k: int,
    algorithm="composite-greedy",
) -> SweepResult:
    """Attracted customers vs the global attractiveness ``alpha``.

    Rescales every flow's attractiveness; the analytic model is exactly
    linear in alpha (each flow contributes ``alpha * shape(d) * volume``),
    so the sweep doubles as a model sanity check.
    """
    if not alphas:
        raise ExperimentError("need at least one alpha")
    if any(not (0 <= a <= 1) for a in alphas):
        raise ExperimentError(f"alphas must lie in [0, 1]: {list(alphas)}")
    solver = _resolve(algorithm)
    values = []
    for alpha in alphas:
        rescaled = [
            TrafficFlow(
                path=flow.path,
                volume=flow.volume,
                attractiveness=alpha,
                label=flow.label,
            )
            for flow in flows
        ]
        scenario = Scenario(
            network, rescaled, shop, utility_by_name(utility_name, threshold)
        )
        budget = min(k, len(scenario.candidate_sites))
        values.append(solver.place(scenario, budget).attracted)
    return SweepResult(
        parameter="attractiveness",
        xs=tuple(float(a) for a in alphas),
        values=tuple(values),
        algorithm=solver.name,
    )
