"""The paper's evaluation figures as runnable experiment specs.

Each builder returns a :class:`~repro.experiments.spec.FigureSpec`
mirroring one figure of Section V:

* **Fig. 10** — Dublin, shop in the city, ``D = 20,000`` ft, one panel
  per utility function (threshold / decreasing i / decreasing ii);
* **Fig. 11** — Dublin, decreasing utility i, one panel per shop
  location x threshold (center/city/suburb x 20,000/10,000 ft);
* **Fig. 12** — Seattle, general scenario, threshold & decreasing i at
  ``D in {2,500, 1,000}`` ft;
* **Fig. 13** — Seattle, Manhattan-grid scenario, same grid of settings
  (Algorithm 3 on threshold panels, Algorithm 4 on decreasing panels).

``repetitions`` defaults to 20 shop draws (the paper uses 1,000; the
shapes stabilize long before that — crank it up for publication-grade
smoothness).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from ..errors import UnknownFigureError
from .locations import LocationClass
from .spec import (
    GENERAL_ALGORITHMS,
    MANHATTAN,
    MANHATTAN_ALGORITHMS,
    FigureSpec,
    PanelSpec,
)

DEFAULT_KS: Tuple[int, ...] = tuple(range(1, 11))

#: Dublin thresholds (feet), paper Section V-C.
DUBLIN_D_LARGE = 20_000.0
DUBLIN_D_SMALL = 10_000.0
#: Seattle thresholds (feet), paper Section V-D.
SEATTLE_D_LARGE = 2_500.0
SEATTLE_D_SMALL = 1_000.0


def fig10(
    repetitions: int = 20,
    ks: Sequence[int] = DEFAULT_KS,
    seed: int = 42,
) -> FigureSpec:
    """Dublin, shop in the city, D = 20,000 ft, three utility functions."""
    panels = tuple(
        PanelSpec(
            panel_id=f"fig10{letter}-{utility}",
            city="dublin",
            utility=utility,
            threshold=DUBLIN_D_LARGE,
            shop_location=LocationClass.CITY,
            ks=tuple(ks),
            algorithms=GENERAL_ALGORITHMS,
            repetitions=repetitions,
            seed=seed,
        )
        for letter, utility in (
            ("a", "threshold"),
            ("b", "linear"),
            ("c", "sqrt"),
        )
    )
    return FigureSpec(
        figure_id="fig10",
        title="Dublin trace: impact of the utility function "
        "(shop in the city, D = 20,000 ft)",
        panels=panels,
    )


def fig11(
    repetitions: int = 20,
    ks: Sequence[int] = DEFAULT_KS,
    seed: int = 42,
) -> FigureSpec:
    """Dublin, decreasing utility i, shop location x threshold grid."""
    panels = []
    for letter, location in (
        ("a", LocationClass.CITY_CENTER),
        ("b", LocationClass.CITY),
        ("c", LocationClass.SUBURB),
    ):
        for threshold in (DUBLIN_D_LARGE, DUBLIN_D_SMALL):
            panels.append(
                PanelSpec(
                    panel_id=f"fig11{letter}-{location.value}-d{int(threshold)}",
                    city="dublin",
                    utility="linear",
                    threshold=threshold,
                    shop_location=location,
                    ks=tuple(ks),
                    algorithms=GENERAL_ALGORITHMS,
                    repetitions=repetitions,
                    seed=seed,
                )
            )
    return FigureSpec(
        figure_id="fig11",
        title="Dublin trace: impact of shop location and threshold D "
        "(decreasing utility i)",
        panels=tuple(panels),
    )


def fig12(
    repetitions: int = 20,
    ks: Sequence[int] = DEFAULT_KS,
    seed: int = 42,
) -> FigureSpec:
    """Seattle, general scenario, utility x threshold grid."""
    panels = []
    for letter, utility in (("a", "threshold"), ("b", "linear")):
        for threshold in (SEATTLE_D_LARGE, SEATTLE_D_SMALL):
            panels.append(
                PanelSpec(
                    panel_id=f"fig12{letter}-{utility}-d{int(threshold)}",
                    city="seattle",
                    utility=utility,
                    threshold=threshold,
                    shop_location=LocationClass.CITY,
                    ks=tuple(ks),
                    algorithms=GENERAL_ALGORITHMS,
                    repetitions=repetitions,
                    seed=seed,
                )
            )
    return FigureSpec(
        figure_id="fig12",
        title="Seattle trace, general scenario (shop in the city)",
        panels=tuple(panels),
    )


def fig13(
    repetitions: int = 20,
    ks: Sequence[int] = DEFAULT_KS,
    seed: int = 42,
) -> FigureSpec:
    """Seattle, Manhattan-grid scenario, utility x threshold grid.

    Threshold panels plot Algorithm 3 ("two-stage"); decreasing panels
    plot Algorithm 4 ("modified-two-stage").
    """
    panels = []
    for letter, utility in (("a", "threshold"), ("b", "linear")):
        stage = "two-stage" if utility == "threshold" else "modified-two-stage"
        algorithms = (stage,) + tuple(
            name for name in MANHATTAN_ALGORITHMS if name not in ("two-stage",)
        )
        for threshold in (SEATTLE_D_LARGE, SEATTLE_D_SMALL):
            panels.append(
                PanelSpec(
                    panel_id=f"fig13{letter}-{utility}-d{int(threshold)}",
                    city="seattle",
                    utility=utility,
                    threshold=threshold,
                    shop_location=LocationClass.CITY,
                    ks=tuple(ks),
                    algorithms=algorithms,
                    semantics=MANHATTAN,
                    repetitions=repetitions,
                    seed=seed,
                )
            )
    return FigureSpec(
        figure_id="fig13",
        title="Seattle trace, Manhattan-grid scenario (shop in the city)",
        panels=tuple(panels),
    )


FIGURES: Dict[str, Callable[..., FigureSpec]] = {
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}


def available_figures() -> Tuple[str, ...]:
    """Registered figure ids, sorted."""
    return tuple(sorted(FIGURES))


def build_figure(figure_id: str, **kwargs) -> FigureSpec:
    """Build a figure spec by id (kwargs forwarded to the builder)."""
    try:
        builder = FIGURES[figure_id]
    except KeyError:
        raise UnknownFigureError(figure_id) from None
    return builder(**kwargs)
