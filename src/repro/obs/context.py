"""Run-scoped trace recorder: nested spans, counters, JSONL events.

:class:`ObsContext` is the single mutable object of the observability
layer.  Entering one (``with ObsContext(...) as ctx:``) makes it the
process-wide *active* context; the module-level hooks (:func:`span`,
:func:`count`, :func:`count_many`, :func:`gauge`) then route into it.
When no context is active every hook is a near-free no-op — one global
read and a ``None`` check — so instrumented hot paths cost nothing in
ordinary library use (the disabled-overhead contract is checked by
``scripts/check_obs_overhead.py``).

Three recording surfaces:

* **spans** — nested timed sections forming a tree rooted at the
  context's implicit run span.  Timing comes from the context's
  :class:`~repro.obs.clock.Clock`; inject a
  :class:`~repro.obs.clock.TickClock` for deterministic event streams.
* **counters** — monotone named totals (``celf.lazy_skips``,
  ``pack.rows``, ...).  Increments land both on the context (global
  totals) and on the innermost open span, so per-algorithm breakdowns
  fall out of the span tree for free.
* **gauges** — last-value-wins observations (``backend`` choice,
  configured scale, ...).

Every span start/end is mirrored to an optional JSONL sink.  Each event
carries ``event``, ``span_id``, ``name`` and ``t_rel`` (seconds since
the context opened, monotone within a span); ``span_end`` events add
``duration`` and the span's own counters.

The layer is single-threaded by design, matching the rest of the
reproduction; activation is not thread-local.
"""

from __future__ import annotations

import json
from contextlib import AbstractContextManager, contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    IO,
    ContextManager,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Union,
)

from ..errors import ObsError
from .clock import Clock, SystemClock

#: Counter value type (ints stay ints until a float lands on them).
Number = Union[int, float]


@dataclass
class Span:
    """One timed section of a run (a node of the span tree)."""

    span_id: int
    name: str
    parent_id: Optional[int]
    t_start: float
    t_end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, Number] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        """Span length in seconds (``None`` while still open)."""
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def total_counters(self) -> Dict[str, Number]:
        """This span's counters plus every descendant's, merged."""
        totals: Dict[str, Number] = dict(self.counters)
        for child in self.children:
            for name, value in child.total_counters().items():
                totals[name] = totals.get(name, 0) + value
        return totals


class ObsContext:
    """Span/counter recorder for one instrumented run.

    Parameters
    ----------
    clock:
        Time source for span timestamps (default:
        :class:`~repro.obs.clock.SystemClock`).
    jsonl_path:
        Optional path; when given, every span event is appended to it as
        one JSON object per line while the context is entered.
    label:
        Name of the implicit root span (default ``"run"``).
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        jsonl_path: Optional[Union[str, Path]] = None,
        label: str = "run",
    ) -> None:
        self._clock: Clock = clock if clock is not None else SystemClock()
        self._t0 = self._clock.now()
        self.root = Span(span_id=0, name=label, parent_id=None, t_start=0.0)
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, object] = {}
        self._stack: List[Span] = [self.root]
        self._next_id = 1
        self._jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self._sink: Optional[IO[str]] = None
        self._entered = False
        self._previous: Optional["ObsContext"] = None

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def __enter__(self) -> "ObsContext":
        global _ACTIVE
        if self._entered:
            raise ObsError("ObsContext cannot be entered twice")
        self._entered = True
        if self._jsonl_path is not None:
            try:
                self._sink = open(self._jsonl_path, "w")
            except OSError as error:
                raise ObsError(
                    f"cannot open JSONL sink {self._jsonl_path}: {error}"
                ) from error
        self._previous = _ACTIVE
        _ACTIVE = self
        self._emit_start(self.root)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        global _ACTIVE
        try:
            if len(self._stack) != 1:
                open_spans = [span.name for span in self._stack[1:]]
                raise ObsError(
                    f"context closed with open span(s) {open_spans!r}"
                )
            self.root.t_end = self._rel()
            self.root.counters = dict(self.counters)
            self._emit_end(self.root)
        finally:
            _ACTIVE = self._previous
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    @property
    def current_span(self) -> Span:
        """The innermost open span (the root when none is)."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a nested span; always closed on exit, even on error."""
        parent = self._stack[-1]
        child = Span(
            span_id=self._next_id,
            name=name,
            parent_id=parent.span_id,
            t_start=self._rel(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        parent.children.append(child)
        self._stack.append(child)
        self._emit_start(child)
        try:
            yield child
        finally:
            child.t_end = self._rel()
            self._emit_end(child)
            self._stack.pop()

    def record_span(self, name: str, duration: float, **attrs: object) -> Span:
        """Append an already-finished span of length ``duration`` seconds.

        The context-manager :meth:`span` requires strictly nested (LIFO)
        open/close pairs, which concurrent ``asyncio`` tasks cannot
        guarantee — two interleaved requests would close each other's
        spans.  Async code therefore times a stage with its own injected
        clock and records the result retroactively here: the span is
        closed at the current context time with ``t_start`` back-dated by
        ``duration``, parented to the innermost open span.  Both JSONL
        events (``span_start`` / ``span_end``) are emitted immediately,
        in order.
        """
        if duration < 0:
            raise ObsError(
                f"record_span({name!r}) needs a non-negative duration, "
                f"got {duration}"
            )
        t_end = self._rel()
        parent = self._stack[-1]
        child = Span(
            span_id=self._next_id,
            name=name,
            parent_id=parent.span_id,
            t_start=t_end - duration,
            t_end=t_end,
            attrs=dict(attrs),
        )
        self._next_id += 1
        parent.children.append(child)
        self._emit_start(child)
        self._emit_end(child)
        return child

    # ------------------------------------------------------------------
    # counters / gauges
    # ------------------------------------------------------------------
    def count(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to a named counter (context + innermost span)."""
        self.counters[name] = self.counters.get(name, 0) + value
        top = self._stack[-1]
        top.counters[name] = top.counters.get(name, 0) + value

    def count_many(self, counters: Mapping[str, Number]) -> None:
        """Batch :meth:`count` — one call per instrumented flush point."""
        for name, value in counters.items():
            self.count(name, value)

    def gauge(self, name: str, value: object) -> None:
        """Record a last-value-wins observation."""
        self.gauges[name] = value

    def snapshot(self) -> Dict[str, Number]:
        """A copy of the global counter totals (for delta accounting)."""
        return dict(self.counters)

    def counters_since(
        self, snapshot: Mapping[str, Number]
    ) -> Dict[str, Number]:
        """Counter deltas accumulated since :meth:`snapshot`."""
        deltas: Dict[str, Number] = {}
        for name, value in self.counters.items():
            delta = value - snapshot.get(name, 0)
            if delta:
                deltas[name] = delta
        return deltas

    # ------------------------------------------------------------------
    # event sink
    # ------------------------------------------------------------------
    def _rel(self) -> float:
        return self._clock.now() - self._t0

    def _emit(self, payload: Dict[str, object]) -> None:
        if self._sink is None:
            return
        try:
            self._sink.write(json.dumps(payload) + "\n")
        except OSError as error:
            raise ObsError(
                f"cannot write JSONL sink {self._jsonl_path}: {error}"
            ) from error

    def _emit_start(self, span: Span) -> None:
        payload: Dict[str, object] = {
            "event": "span_start",
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "t_rel": span.t_start,
        }
        if span.attrs:
            payload["attrs"] = span.attrs
        self._emit(payload)

    def _emit_end(self, span: Span) -> None:
        payload: Dict[str, object] = {
            "event": "span_end",
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "t_rel": span.t_end,
            "duration": span.duration,
        }
        if span.counters:
            payload["counters"] = span.counters
        if span.span_id == 0 and self.gauges:
            payload["gauges"] = self.gauges
        self._emit(payload)


# ----------------------------------------------------------------------
# module-level hooks (no-ops when no context is active)
# ----------------------------------------------------------------------
_ACTIVE: Optional[ObsContext] = None


class _NullSpan(AbstractContextManager):
    """Reusable do-nothing context manager for the inactive path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def active() -> Optional[ObsContext]:
    """The currently active context, or ``None``."""
    return _ACTIVE


def span(name: str, **attrs: object) -> "ContextManager[Optional[Span]]":
    """Open a span on the active context (no-op context manager if none)."""
    ctx = _ACTIVE
    if ctx is None:
        return _NULL_SPAN
    return ctx.span(name, **attrs)


def count(name: str, value: Number = 1) -> None:
    """Increment a counter on the active context (no-op if none)."""
    ctx = _ACTIVE
    if ctx is not None:
        ctx.count(name, value)


def count_many(counters: Mapping[str, Number]) -> None:
    """Batch-increment counters on the active context (no-op if none)."""
    ctx = _ACTIVE
    if ctx is not None:
        ctx.count_many(counters)


def gauge(name: str, value: object) -> None:
    """Record a gauge on the active context (no-op if none)."""
    ctx = _ACTIVE
    if ctx is not None:
        ctx.gauges[name] = value


def record_span(name: str, duration: float, **attrs: object) -> Optional[Span]:
    """Retroactively record a finished span (no-op if no context).

    See :meth:`ObsContext.record_span` — the async-safe alternative to
    the nested :func:`span` context manager.
    """
    ctx = _ACTIVE
    if ctx is None:
        return None
    return ctx.record_span(name, duration, **attrs)


__all__ = [
    "Number",
    "ObsContext",
    "Span",
    "active",
    "count",
    "count_many",
    "gauge",
    "record_span",
    "span",
]
