"""Fixed-bucket latency histograms for the ``/metrics`` endpoints.

The front and every worker serve ``GET /metrics`` with a latency
histogram over the **same fixed bucket bounds**
(:data:`LATENCY_BUCKETS_MS`), so fleet-wide aggregation is a bucket-wise
sum (:meth:`LatencyHistogram.merge`) and two independently measured
histograms can be compared bucket-by-bucket — the bench asserts its
client-side p95 lands within one bucket of the front's server-side p95.

Percentiles are derived from the buckets (the reported value is the
upper bound of the bucket the percentile falls in), which is exactly as
coarse as it sounds: the buckets themselves ship in the payload so
consumers can make their own calls.  Recording is two integer
increments and a ``bisect`` — cheap enough to stay on even when tracing
is off.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

from ..errors import ObsError

#: Shared bucket upper bounds, in milliseconds.  Roughly 1-2.5-5 per
#: decade from 0.5ms to 5s; everything slower lands in the overflow
#: bucket.  Changing these is a metrics schema change — bench snapshots
#: and the chaos gate assert on them.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


def bucket_index(ms: float) -> int:
    """The bucket a latency (ms) falls in; ``len(bounds)`` = overflow."""
    return bisect_left(LATENCY_BUCKETS_MS, ms)


class LatencyHistogram:
    """Counts of request latencies in the fixed shared buckets.

    >>> hist = LatencyHistogram()
    >>> hist.observe(0.003)   # seconds
    >>> hist.percentile(0.95)
    5.0
    """

    __slots__ = ("_counts", "_count", "_sum_ms")

    bounds: Tuple[float, ...] = LATENCY_BUCKETS_MS

    def __init__(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum_ms = 0.0

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def counts(self) -> List[int]:
        """Per-bucket counts (last entry is the overflow bucket)."""
        return list(self._counts)

    def observe(self, seconds: float) -> None:
        """Record one latency, given in seconds."""
        ms = seconds * 1e3
        self._counts[bisect_left(self.bounds, ms)] += 1
        self._count += 1
        self._sum_ms += ms

    def merge(self, other: "LatencyHistogram") -> None:
        """Add ``other``'s counts into this histogram (same bounds)."""
        for index, value in enumerate(other._counts):
            self._counts[index] += value
        self._count += other._count
        self._sum_ms += other._sum_ms

    def percentile(self, p: float) -> float:
        """Upper bound (ms) of the bucket percentile ``p`` falls in.

        Overflow observations report the last finite bound — the
        histogram cannot distinguish 6s from 60s, by design.  Returns
        0.0 for an empty histogram.
        """
        if not 0.0 < p <= 1.0:
            raise ObsError(f"percentile wants p in (0, 1], got {p}")
        if self._count == 0:
            return 0.0
        target = p * self._count
        cumulative = 0
        for index, value in enumerate(self._counts):
            cumulative += value
            if cumulative >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]
        return self.bounds[-1]

    def to_dict(self) -> Dict[str, object]:
        """JSON payload: bounds + counts + derived p50/p95/p99."""
        return {
            "buckets_ms": list(self.bounds),
            "counts": list(self._counts),
            "count": self._count,
            "sum_ms": round(self._sum_ms, 3),
            "p50_ms": self.percentile(0.50),
            "p95_ms": self.percentile(0.95),
            "p99_ms": self.percentile(0.99),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram from a ``/metrics`` payload."""
        bounds = payload.get("buckets_ms")
        counts = payload.get("counts")
        if not isinstance(bounds, Sequence) or tuple(bounds) != cls.bounds:
            raise ObsError(
                f"histogram payload has foreign buckets: {bounds!r}"
            )
        if (
            not isinstance(counts, Sequence)
            or len(counts) != len(cls.bounds) + 1
        ):
            raise ObsError(
                f"histogram payload has malformed counts: {counts!r}"
            )
        hist = cls()
        hist._counts = [int(value) for value in counts]
        hist._count = sum(hist._counts)
        sum_ms = payload.get("sum_ms", 0.0)
        hist._sum_ms = float(sum_ms) if isinstance(sum_ms, (int, float)) else 0.0
        return hist


__all__ = ["LATENCY_BUCKETS_MS", "LatencyHistogram", "bucket_index"]
