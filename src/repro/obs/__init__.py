"""repro.obs — structured tracing, counters, and profiling hooks.

The observability layer of the reproduction.  One
:class:`~repro.obs.context.ObsContext` records a run: nested spans
(timed via an injectable :class:`~repro.obs.clock.Clock`, so the
deterministic packages stay wall-clock free under lint rule RAP002),
domain counters (CELF lazy skips, gain evaluations, pack stats,
reliability quarantines, ...), gauges, and an optional JSONL event
sink.

Instrumented library code never talks to a context directly — it calls
the module-level hooks re-exported here (:func:`span`, :func:`count`,
:func:`count_many`, :func:`gauge`), which are near-free no-ops when no
context is active::

    from repro import obs

    with obs.ObsContext(jsonl_path="events.jsonl") as ctx:
        placement = CompositeGreedy().place(scenario, k=5)
    print(obs.render_report(ctx))

Surfacing lives in the CLI (``rapflow profile``, ``--obs-jsonl``), the
experiment runner (per-repetition metrics on results objects), and
``scripts/bench_trajectory.py`` (counter snapshots in BENCH_core.json).
"""

from .clock import Clock, SystemClock, TickClock
from .context import (
    Number,
    ObsContext,
    Span,
    active,
    count,
    count_many,
    gauge,
    record_span,
    span,
)
from .report import render_counter_table, render_report, render_span_tree

__all__ = [
    "Clock",
    "Number",
    "ObsContext",
    "Span",
    "SystemClock",
    "TickClock",
    "active",
    "count",
    "count_many",
    "gauge",
    "record_span",
    "render_counter_table",
    "render_report",
    "render_span_tree",
    "span",
]
