"""repro.obs — structured tracing, counters, and profiling hooks.

The observability layer of the reproduction.  One
:class:`~repro.obs.context.ObsContext` records a run: nested spans
(timed via an injectable :class:`~repro.obs.clock.Clock`, so the
deterministic packages stay wall-clock free under lint rule RAP002),
domain counters (CELF lazy skips, gain evaluations, pack stats,
reliability quarantines, ...), gauges, and an optional JSONL event
sink.

Instrumented library code never talks to a context directly — it calls
the module-level hooks re-exported here (:func:`span`, :func:`count`,
:func:`count_many`, :func:`gauge`), which are near-free no-ops when no
context is active::

    from repro import obs

    with obs.ObsContext(jsonl_path="events.jsonl") as ctx:
        placement = CompositeGreedy().place(scenario, k=5)
    print(obs.render_report(ctx))

Surfacing lives in the CLI (``rapflow profile``, ``--obs-jsonl``), the
experiment runner (per-repetition metrics on results objects), and
``scripts/bench_trajectory.py`` (counter snapshots in BENCH_core.json).

The serving fleet adds the **distributed** half: cross-process trace
propagation over ``X-Rapflow-Trace`` headers with per-process JSONL
segments (:mod:`repro.obs.trace`), an offline collector that merges
segments into trace trees (:mod:`repro.obs.collect`, surfaced as
``rapflow trace``), fixed-bucket latency histograms for the
``/metrics`` endpoints (:mod:`repro.obs.metrics`), and SLO burn-rate
accounting on the injectable clock (:mod:`repro.obs.slo`).
"""

from .clock import Clock, SystemClock, TickClock
from .collect import (
    Trace,
    TraceSpan,
    build_traces,
    find_trace,
    load_traces,
    render_trace,
)
from .context import (
    Number,
    ObsContext,
    Span,
    active,
    count,
    count_many,
    gauge,
    record_span,
    span,
)
from .metrics import LATENCY_BUCKETS_MS, LatencyHistogram, bucket_index
from .report import render_counter_table, render_report, render_span_tree
from .slo import SLOConfig, SLOTracker
from .trace import (
    TRACE_HEADER,
    TraceContext,
    TraceRecorder,
    format_trace_header,
    make_trace_id,
    parse_trace_header,
)

__all__ = [
    "Clock",
    "LATENCY_BUCKETS_MS",
    "LatencyHistogram",
    "Number",
    "ObsContext",
    "SLOConfig",
    "SLOTracker",
    "Span",
    "SystemClock",
    "TRACE_HEADER",
    "TickClock",
    "Trace",
    "TraceContext",
    "TraceRecorder",
    "TraceSpan",
    "active",
    "bucket_index",
    "build_traces",
    "count",
    "count_many",
    "find_trace",
    "format_trace_header",
    "gauge",
    "load_traces",
    "make_trace_id",
    "parse_trace_header",
    "record_span",
    "render_counter_table",
    "render_report",
    "render_span_tree",
    "render_trace",
    "span",
]
