"""SLO targets and multi-window error-budget burn rates.

A chaos run that reports "availability 99.2%" says nothing about
*when* the errors happened — a respawn storm that burns a day of error
budget in a minute looks identical to background noise.  Burn rate is
the standard fix: the observed error rate divided by the rate the SLO
*allows*, over several window lengths at once (a short window catches
storms fast, a long one catches slow leaks).  Burn rate 1.0 means the
budget is being spent exactly as fast as the target permits; 14x over
the 1m window means a storm.

:class:`SLOConfig` carries the targets (an availability floor, a
latency threshold with its own attainment floor, and the window
lengths) and rides on ``FleetConfig``.  :class:`SLOTracker` does the
accounting on an **injectable** :class:`~repro.obs.clock.Clock`
(RAP002: the serve layer never reads the wall clock), bucketing
outcomes into coarse time slots so memory stays bounded by the longest
window rather than the request rate.  The fleet front records every
``/query`` outcome and surfaces :meth:`SLOTracker.snapshot` in
``/healthz``; ``rapflow chaos`` gates on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ObsError
from .clock import Clock


@dataclass(frozen=True)
class SLOConfig:
    """Availability + latency service-level objectives for the fleet.

    Parameters
    ----------
    availability_target:
        Fraction of ``/query`` requests that must succeed (2xx,
        degraded fallbacks included — a served stale answer is still
        served).  The error budget is ``1 - availability_target``.
    latency_target_ms:
        Requests slower than this are "slow" for the latency SLO.
    latency_availability_target:
        Fraction of requests that must come in under
        ``latency_target_ms``.
    windows:
        Burn-rate window lengths in seconds, ascending.
    """

    availability_target: float = 0.99
    latency_target_ms: float = 250.0
    latency_availability_target: float = 0.95
    windows: Tuple[float, ...] = (60.0, 300.0)

    def validate(self) -> "SLOConfig":
        """Raise :class:`~repro.errors.ObsError` on nonsense targets."""
        for name, value in (
            ("availability_target", self.availability_target),
            ("latency_availability_target", self.latency_availability_target),
        ):
            if not 0.0 < value < 1.0:
                raise ObsError(
                    f"{name} must be in (0, 1), got {value}"
                )
        if self.latency_target_ms <= 0:
            raise ObsError(
                f"latency_target_ms must be > 0, "
                f"got {self.latency_target_ms}"
            )
        if not self.windows:
            raise ObsError("windows must not be empty")
        previous = 0.0
        for window in self.windows:
            if window <= previous:
                raise ObsError(
                    f"windows must be ascending and positive, "
                    f"got {self.windows}"
                )
            previous = window
        return self


class SLOTracker:
    """Windowed outcome accounting against an :class:`SLOConfig`.

    Outcomes land in coarse time slots (1/60th of the shortest window),
    so a snapshot is a sum over at most a few hundred slots and memory
    never grows with request rate.  All timestamps come from the
    injected clock.
    """

    def __init__(self, config: SLOConfig, clock: Clock) -> None:
        self._config = config.validate()
        self._clock = clock
        self._slot_width = min(config.windows) / 60.0
        # Slots needed to cover the longest window, plus slack so the
        # prune scan runs rarely instead of on every record.
        self._max_slots = (
            int(max(config.windows) / self._slot_width) + 62
        )
        # slot index -> [requests, errors, slow]
        self._slots: Dict[int, list] = {}

    @property
    def config(self) -> SLOConfig:
        """The targets this tracker accounts against."""
        return self._config

    def record(self, ok: bool, duration: float) -> None:
        """Record one request outcome (duration in seconds)."""
        now = self._clock.now()
        slot = self._slots.setdefault(int(now / self._slot_width), [0, 0, 0])
        slot[0] += 1
        if not ok:
            slot[1] += 1
        if duration * 1e3 > self._config.latency_target_ms:
            slot[2] += 1
        self._prune(now)

    def _prune(self, now: float) -> None:
        if len(self._slots) <= self._max_slots:
            return
        horizon = int((now - max(self._config.windows)) / self._slot_width) - 1
        for key in [k for k in self._slots if k < horizon]:
            del self._slots[key]

    def snapshot(self) -> Dict[str, object]:
        """Targets plus per-window counts and burn rates.

        ``healthy`` is true while every window's burn rates are at or
        under 1.0 — the budget is being spent no faster than allowed.
        """
        now = self._clock.now()
        error_budget = 1.0 - self._config.availability_target
        latency_budget = 1.0 - self._config.latency_availability_target
        windows: Dict[str, object] = {}
        healthy = True
        for window in self._config.windows:
            first_slot = int((now - window) / self._slot_width)
            requests = errors = slow = 0
            for key, (total, bad, late) in self._slots.items():
                if key >= first_slot:
                    requests += total
                    errors += bad
                    slow += late
            error_rate = errors / requests if requests else 0.0
            slow_rate = slow / requests if requests else 0.0
            burn = error_rate / error_budget
            latency_burn = slow_rate / latency_budget
            healthy = healthy and burn <= 1.0 and latency_burn <= 1.0
            windows[f"{window:g}s"] = {
                "requests": requests,
                "errors": errors,
                "slow": slow,
                "availability": round(1.0 - error_rate, 6),
                "burn_rate": round(burn, 3),
                "latency_burn_rate": round(latency_burn, 3),
            }
        return {
            "availability_target": self._config.availability_target,
            "latency_target_ms": self._config.latency_target_ms,
            "latency_availability_target": (
                self._config.latency_availability_target
            ),
            "windows": windows,
            "healthy": healthy,
        }


__all__ = ["SLOConfig", "SLOTracker"]
