"""Clock abstraction for the observability layer.

Span timing needs a time source, but the deterministic packages
(``core/``, ``algorithms/``, ``graphs/``, ``manhattan/``) are forbidden
from reading the wall clock (lint rule RAP002): bit-identical replays
and checkpoint resume depend on those layers being pure functions of
their inputs.  The :class:`Clock` protocol squares the circle —
instrumented code never touches :mod:`time` directly; it either calls
into :mod:`repro.obs` hooks (which consult the *context's* clock, here,
outside the banned packages) or receives an injected ``Clock`` whose
``.now()`` call sites RAP002 explicitly allowlists.

:class:`SystemClock` is the production source (``time.perf_counter``:
monotonic, high resolution, no epoch semantics to leak into events);
:class:`TickClock` is a deterministic stand-in for tests and replay —
every read advances by a fixed step, so event streams compare equal
across runs.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a monotone ``now() -> float`` (seconds)."""

    def now(self) -> float:
        """Current time in seconds; must never decrease between calls."""
        ...


class SystemClock:
    """Monotonic wall-clock source (``time.perf_counter``)."""

    __slots__ = ()

    def now(self) -> float:
        """Seconds from an arbitrary, monotonically increasing origin."""
        return time.perf_counter()


class TickClock:
    """Deterministic clock: each read advances by a fixed ``step``.

    >>> clock = TickClock(step=0.5)
    >>> clock.now(), clock.now(), clock.now()
    (0.0, 0.5, 1.0)
    """

    __slots__ = ("_next", "_step")

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self._next = start
        self._step = step

    def now(self) -> float:
        """The next tick (monotone by construction)."""
        current = self._next
        self._next += self._step
        return current


__all__ = ["Clock", "SystemClock", "TickClock"]
