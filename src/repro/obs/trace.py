"""Cross-process distributed tracing for the serving fleet.

PR 4's :class:`~repro.obs.context.ObsContext` records span trees inside
one process; since the fleet split into a front plus N workers, a hedged
query that degrades to the LRU fallback dies at the HTTP hop with no
artifact explaining why.  This module is the cross-process half:

* every front request gets a **seeded-deterministic** ``trace_id``
  (:func:`make_trace_id` — fleet seed + a monotone request counter, no
  wall clock, no unseeded randomness);
* the trace travels over the ``X-Rapflow-Trace`` header
  (``<trace_id>:<parent_span_id>``, see :func:`format_trace_header`);
* each process appends completed spans to its own **JSONL segment**
  file via a :class:`TraceRecorder` (``front.jsonl``,
  ``worker-w0.jsonl``, ...), tagged with trace id, parent span id,
  process role, worker id, shard digest, attempt number and hedge flag;
* :mod:`repro.obs.collect` merges the segments back into one tree per
  trace and ``rapflow trace <id>`` renders it.

Propagation *inside* a process rides a :class:`contextvars.ContextVar`
(:func:`current` / :func:`activate`), so the engine and the micro
batcher can emit spans without threading trace arguments through every
call.  Tracing is **opt-in** per process (a ``trace_dir``): when no
recorder was installed the context variable is never set, and every
hook here degrades to a single ``ContextVar.get`` + ``None`` check —
``scripts/check_obs_overhead.py`` enforces the <5% disabled-mode
contract on the serve path.

Timing always goes through the recorder's injectable
:class:`~repro.obs.clock.Clock` (RAP002: the serve layer never reads
the wall clock directly).
"""

from __future__ import annotations

import json
from contextvars import ContextVar, Token
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Mapping, Optional, Tuple, Union

from .clock import Clock, SystemClock

#: Header carrying ``<trace_id>:<parent_span_id>`` over the fleet's
#: HTTP hops.  Lowercase because the serving layer lowercases incoming
#: header names during framing.
TRACE_HEADER = "x-rapflow-trace"


def make_trace_id(seed: int, index: int) -> str:
    """Deterministic 16-hex-digit trace id for request ``index``.

    Derived from the fleet seed and a per-front monotone counter —
    replaying a seeded chaos run reproduces the exact same ids, so
    trace trees can be diffed across runs.
    """
    return f"{seed & 0xFFFFFFFF:08x}{index & 0xFFFFFFFF:08x}"


def format_trace_header(trace_id: str, span_id: str) -> str:
    """Encode a trace context for the ``X-Rapflow-Trace`` header."""
    return f"{trace_id}:{span_id}"


def parse_trace_header(value: str) -> Optional[Tuple[str, str]]:
    """Decode ``<trace_id>:<span_id>``; ``None`` when malformed.

    Malformed headers are ignored rather than rejected — tracing must
    never turn a servable request into an error.
    """
    trace_id, sep, span_id = value.partition(":")
    if not sep or not trace_id or not span_id:
        return None
    return trace_id, span_id


class TraceRecorder:
    """Appends completed spans to one per-process JSONL segment.

    One recorder per process role (the fleet front opens
    ``front.jsonl``; each worker opens ``worker-<id>.jsonl``).  Span
    ids are allocated from a local counter prefixed with the origin
    (``front-3``, ``w0-17``), so they are unique fleet-wide without
    coordination and deterministic given the request order.

    A failed write degrades the recorder permanently (mirroring the
    latency log's contract: observability must never take down
    serving); the :attr:`degraded` flag surfaces in ``/healthz``.
    """

    def __init__(
        self,
        path: Union[str, Path],
        role: str,
        worker_id: Optional[str] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.path = Path(path)
        self.role = role
        self.worker_id = worker_id
        self.clock = clock if clock is not None else SystemClock()
        self._origin = worker_id if worker_id is not None else role
        self._counter = 0
        self._handle: Optional[IO[str]] = None
        self._degraded = False
        self._epoch = self.clock.now()

    @property
    def degraded(self) -> bool:
        """True once a write failed and the segment went dark."""
        return self._degraded

    def next_span_id(self) -> str:
        """Allocate the next process-unique span id."""
        span_id = f"{self._origin}-{self._counter}"
        self._counter += 1
        return span_id

    def span(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: float,
        end: float,
        attrs: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Append one completed span to the segment.

        ``start``/``end`` are clock readings; the event stores
        ``t_start`` relative to the recorder's creation (segment-local
        ordering only — cross-process clocks are never compared) and
        the span ``duration``.
        """
        if self._degraded:
            return
        event = {
            "event": "span",
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "role": self.role,
            "worker": self.worker_id,
            "t_start": round(start - self._epoch, 6),
            "duration": round(end - start, 6),
        }
        if attrs:
            event["attrs"] = dict(attrs)
        try:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(json.dumps(event, sort_keys=True) + "\n")
            self._handle.flush()
        except OSError:
            # Same stance as the server's latency log: a full disk must
            # not fail requests.  The flag is reported, not raised.
            self._degraded = True
            self.close()

    def close(self) -> None:
        """Close the segment file (idempotent)."""
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass


@dataclass(frozen=True)
class TraceContext:
    """The active trace at one point in one process.

    Carries the recorder so nested instrumentation (engine, batcher)
    reaches the *right* segment even when several workers share a
    process (the chaos harness runs front + N local workers in one
    interpreter, each on its own thread and loop).
    """

    trace_id: str
    span_id: str
    recorder: TraceRecorder = field(repr=False)


_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "rapflow_trace", default=None
)


def current() -> Optional[TraceContext]:
    """The task's active trace context, or ``None`` when untraced."""
    return _CURRENT.get()


def activate(context: TraceContext) -> "Token[Optional[TraceContext]]":
    """Make ``context`` current; returns the token for :func:`deactivate`."""
    return _CURRENT.set(context)


def deactivate(token: "Token[Optional[TraceContext]]") -> None:
    """Restore the trace context that was current before ``token``."""
    _CURRENT.reset(token)


def record(
    name: str,
    start: float,
    end: float,
    attrs: Optional[Mapping[str, object]] = None,
    parent: Optional[str] = None,
    context: Optional[TraceContext] = None,
) -> Optional[str]:
    """Record one completed span under the active trace.

    No-op (returns ``None``) when no trace is active — the disabled
    hot path is one ``ContextVar.get`` plus a ``None`` check.  Returns
    the allocated span id otherwise.  ``parent`` defaults to the
    active context's span.
    """
    ctx = context if context is not None else _CURRENT.get()
    if ctx is None:
        return None
    span_id = ctx.recorder.next_span_id()
    ctx.recorder.span(
        ctx.trace_id,
        span_id,
        parent if parent is not None else ctx.span_id,
        name,
        start,
        end,
        attrs,
    )
    return span_id


__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "TraceRecorder",
    "activate",
    "current",
    "deactivate",
    "format_trace_header",
    "make_trace_id",
    "parse_trace_header",
    "record",
]
