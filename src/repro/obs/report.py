"""Human-readable rendering of a recorded :class:`ObsContext`.

``rapflow profile ...`` prints two views after the instrumented run:

* :func:`render_span_tree` — the nested spans with durations, attrs and
  each span's own counters (per-algorithm breakdowns fall out of the
  ``select`` spans);
* :func:`render_counter_table` — the context-wide counter totals and
  gauges, aligned for eyeballing and greppable in CI logs.

:func:`render_report` concatenates both.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .context import Number, ObsContext, Span


def _format_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "open"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_value(value: Number) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _span_label(span: Span) -> str:
    attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
    label = span.name if not attrs else f"{span.name} [{attrs}]"
    return f"{label}  ({_format_duration(span.duration)})"


def _render_span(
    span: Span, prefix: str, is_last: bool, lines: List[str]
) -> None:
    connector = "`- " if is_last else "|- "
    lines.append(f"{prefix}{connector}{_span_label(span)}")
    child_prefix = prefix + ("   " if is_last else "|  ")
    for name in sorted(span.counters):
        lines.append(
            f"{child_prefix}  {name} = {_format_value(span.counters[name])}"
        )
    for index, child in enumerate(span.children):
        _render_span(
            child, child_prefix, index == len(span.children) - 1, lines
        )


def render_span_tree(context: ObsContext) -> str:
    """The context's span tree, one line per span plus counter lines."""
    root = context.root
    lines = [_span_label(root)]
    for index, child in enumerate(root.children):
        _render_span(child, "", index == len(root.children) - 1, lines)
    return "\n".join(lines)


def render_counter_table(
    counters: Mapping[str, Number], gauges: Optional[Mapping[str, object]] = None
) -> str:
    """Aligned ``name = value`` table of counters (and gauges, if any)."""
    entries: Dict[str, str] = {
        name: _format_value(value) for name, value in counters.items()
    }
    for name, value in (gauges or {}).items():
        entries[name] = str(value)
    if not entries:
        return "(no counters recorded)"
    width = max(len(name) for name in entries)
    return "\n".join(
        f"  {name:<{width}}  {entries[name]}" for name in sorted(entries)
    )


def render_report(context: ObsContext) -> str:
    """Span tree plus counter/gauge table, ready for the CLI."""
    return (
        "span tree\n---------\n"
        + render_span_tree(context)
        + "\n\ncounters\n--------\n"
        + render_counter_table(context.counters, context.gauges)
    )


__all__ = ["render_counter_table", "render_report", "render_span_tree"]
