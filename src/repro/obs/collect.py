"""Merge per-process trace segments into cross-process trace trees.

Each traced process appends completed spans to its own JSONL segment
(see :class:`~repro.obs.trace.TraceRecorder`); nothing at runtime ever
joins them — that is this module's job, offline:

* :func:`load_segments` reads every ``*.jsonl`` file in a trace
  directory (unparseable or foreign lines are skipped, segments are
  best-effort by design);
* :func:`build_traces` stitches the spans into one :class:`Trace` per
  trace id, linking children to parents by span id — a span whose
  parent lives in a *lost* segment (worker killed mid-write) becomes
  an extra root rather than disappearing;
* :func:`render_trace` draws the familiar ASCII tree (same connectors
  as ``rapflow profile``), flagging the hop that breached its deadline
  budget;
* :func:`slowest` and :func:`degraded` answer the two questions chaos
  triage always starts with.

``rapflow trace <id>`` and ``rapflow traces`` are thin CLI wrappers
over these functions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..errors import ObsError


@dataclass
class TraceSpan:
    """One completed span, as read back from a segment."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    role: str
    worker: Optional[str]
    t_start: float
    duration: float
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["TraceSpan"] = field(default_factory=list)

    @property
    def breached_deadline(self) -> bool:
        """Did this hop blow its budget (or time out outright)?"""
        status = self.attrs.get("status")
        if status == 504 or status == "timeout":
            return True
        budget = self.attrs.get("budget")
        if isinstance(budget, (int, float)) and budget > 0:
            return self.duration >= float(budget)
        return False


@dataclass
class Trace:
    """All spans of one trace id, stitched into a forest.

    Normally a single tree rooted at the front's request span; spans
    whose parents were lost (killed worker, torn segment) surface as
    additional roots so the evidence is never silently dropped.
    """

    trace_id: str
    spans: Dict[str, TraceSpan]
    roots: List[TraceSpan]

    @property
    def duration(self) -> float:
        """The longest root span — the end-to-end view of the trace."""
        return max((root.duration for root in self.roots), default=0.0)

    @property
    def degraded(self) -> bool:
        """True when any hop served (or recorded) a degraded outcome."""
        return any(span.attrs.get("degraded") for span in self.spans.values())

    def named(self, name: str) -> List[TraceSpan]:
        """Every span called ``name``, in segment order."""
        return [s for s in self.spans.values() if s.name == name]


def load_segments(
    trace_dir: Union[str, Path]
) -> List[Dict[str, object]]:
    """Read every span event from every ``*.jsonl`` segment in a dir."""
    directory = Path(trace_dir)
    if not directory.is_dir():
        raise ObsError(f"trace directory not found: {directory}")
    events: List[Dict[str, object]] = []
    for path in sorted(directory.glob("*.jsonl")):
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ObsError(
                f"cannot read trace segment {path}: {error}"
            ) from error
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a killed worker's segment
            if isinstance(event, dict) and event.get("event") == "span":
                events.append(event)
    return events


def _span_from_event(event: Dict[str, object]) -> Optional[TraceSpan]:
    trace_id = event.get("trace_id")
    span_id = event.get("span_id")
    if not isinstance(trace_id, str) or not isinstance(span_id, str):
        return None
    parent = event.get("parent_id")
    attrs = event.get("attrs")
    return TraceSpan(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent if isinstance(parent, str) else None,
        name=str(event.get("name", "?")),
        role=str(event.get("role", "?")),
        worker=event.get("worker") if isinstance(event.get("worker"), str) else None,
        t_start=float(event.get("t_start", 0.0) or 0.0),
        duration=float(event.get("duration", 0.0) or 0.0),
        attrs=dict(attrs) if isinstance(attrs, dict) else {},
    )


def build_traces(
    events: Iterable[Dict[str, object]]
) -> Dict[str, Trace]:
    """Group span events by trace id and link children to parents."""
    by_trace: Dict[str, Dict[str, TraceSpan]] = {}
    for event in events:
        span = _span_from_event(event)
        if span is None:
            continue
        by_trace.setdefault(span.trace_id, {})[span.span_id] = span
    traces: Dict[str, Trace] = {}
    for trace_id, spans in by_trace.items():
        roots: List[TraceSpan] = []
        for span in spans.values():
            parent = spans.get(span.parent_id) if span.parent_id else None
            if parent is None:
                roots.append(span)
            else:
                parent.children.append(span)
        for span in spans.values():
            span.children.sort(key=lambda child: child.t_start)
        roots.sort(key=lambda root: root.t_start)
        traces[trace_id] = Trace(trace_id=trace_id, spans=spans, roots=roots)
    return traces


def load_traces(trace_dir: Union[str, Path]) -> Dict[str, Trace]:
    """Segments → traces in one call (the CLI entry point)."""
    return build_traces(load_segments(trace_dir))


def find_trace(trace_dir: Union[str, Path], trace_id: str) -> Trace:
    """Load one trace by id, or raise :class:`~repro.errors.ObsError`."""
    traces = load_traces(trace_dir)
    trace = traces.get(trace_id)
    if trace is None:
        raise ObsError(
            f"trace {trace_id!r} not found in {trace_dir} "
            f"({len(traces)} traces present)"
        )
    return trace


def slowest(traces: Dict[str, Trace], k: int) -> List[Trace]:
    """The ``k`` traces with the longest end-to-end duration."""
    if k < 1:
        raise ObsError(f"slowest wants k >= 1, got {k}")
    ranked = sorted(
        traces.values(), key=lambda trace: trace.duration, reverse=True
    )
    return ranked[:k]


def degraded(traces: Dict[str, Trace]) -> List[Trace]:
    """Every trace that served (or recorded) a degraded outcome."""
    return [
        trace
        for trace in sorted(traces.values(), key=lambda t: t.trace_id)
        if trace.degraded
    ]


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _span_label(span: TraceSpan) -> str:
    origin = span.worker if span.worker is not None else span.role
    parts = [f"{span.name}@{origin}"]
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
    if attrs:
        parts.append(f"[{attrs}]")
    parts.append(f"({_format_duration(span.duration)})")
    if span.breached_deadline:
        parts.append("<< deadline breached")
    return "  ".join(parts)


def _render_span(
    span: TraceSpan, prefix: str, is_last: bool, lines: List[str]
) -> None:
    connector = "`- " if is_last else "|- "
    lines.append(f"{prefix}{connector}{_span_label(span)}")
    child_prefix = prefix + ("   " if is_last else "|  ")
    for index, child in enumerate(span.children):
        _render_span(
            child, child_prefix, index == len(span.children) - 1, lines
        )


def render_trace(trace: Trace) -> str:
    """ASCII tree of one merged trace, one line per span."""
    flags = "  [degraded]" if trace.degraded else ""
    lines = [
        f"trace {trace.trace_id}  "
        f"({_format_duration(trace.duration)}, {len(trace.spans)} spans)"
        f"{flags}"
    ]
    for index, root in enumerate(trace.roots):
        _render_span(root, "", index == len(trace.roots) - 1, lines)
    return "\n".join(lines)


__all__ = [
    "Trace",
    "TraceSpan",
    "build_traces",
    "degraded",
    "find_trace",
    "load_segments",
    "load_traces",
    "render_trace",
    "slowest",
]
