"""Chaos harness: drive a serving fleet through injected failure.

:func:`run_chaos` stands up a :class:`~repro.serve.fleet.PlacementFleet`
of in-process workers over one compiled artifact, fires a concurrent
request load at the front, and — at seeded points in the request stream
— applies a failure schedule: worker **kills** (abrupt, no drain),
event-loop **stalls** (the wedged-worker failure mode), **slow** replies
and **corrupt** replies (via the workers' seeded
:class:`~repro.reliability.FaultInjector`, whose decisions are pure
functions of ``(seed, request index)``).

The harness then measures what a resilient fleet must guarantee:

* **availability** — fraction of requests answered 200 per kind, with
  degraded (cache-replayed) answers tallied separately;
* **bit-identity** — every non-degraded ``evaluate`` answer is compared
  against totals computed by direct library calls on the same backend;
  any mismatch is a correctness failure, not a statistics blip;
* **recovery** — respawn and corruption-detection counts read back from
  the fleet's ``/healthz``.

Every request outcome and applied event is optionally appended to a
JSONL file (the CI ``chaos-smoke`` job uploads it as an artifact), and
the whole run is deterministic in its injected decisions: schedules and
request mixes derive from ``seed`` alone, never from the wall clock
(lint rule RAP002 covers this module).
"""

from __future__ import annotations

import json
import random
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ServeClientError, ServeError, ServeRequestError
from ..reliability.faults import FaultConfig, FaultInjector
from .artifacts import ScenarioArtifact
from .client import ServeClient
from .engine import QueryEngine, decode_site
from .fleet import FleetConfig, PlacementFleet, RetryPolicy, local_worker_factory
from .testing import FleetThread

#: Failure presets the harness understands.
CHAOS_PRESETS = ("kill", "stall", "slow", "corrupt", "mixed")

#: Share of the request stream per kind (evaluate-heavy, like the bench).
_KIND_WEIGHTS = (("evaluate", 0.90), ("top_gains", 0.05), ("place", 0.05))


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled failure: fired when request ``at_fraction`` of the
    stream is dispatched."""

    at_fraction: float
    action: str  # "kill" | "stall"
    target: int  # worker slot index
    duration: float = 0.0  # stall length in seconds

    def trigger_index(self, total_requests: int) -> int:
        """The dispatch index at which this event fires."""
        return max(0, min(total_requests - 1, int(self.at_fraction * total_requests)))


def fault_config_for(preset: str) -> Optional[FaultConfig]:
    """The worker-side fault rates a preset injects (None = clean)."""
    if preset == "slow":
        return FaultConfig(
            request_delay_rate=0.2, request_delay_seconds=0.02
        )
    if preset == "corrupt":
        return FaultConfig(request_corrupt_rate=0.08)
    if preset == "mixed":
        return FaultConfig(
            request_delay_rate=0.1,
            request_delay_seconds=0.01,
            request_corrupt_rate=0.04,
        )
    if preset in ("kill", "stall"):
        return None
    raise ServeRequestError(
        f"unknown chaos preset {preset!r}; expected one of {CHAOS_PRESETS}"
    )


def build_schedule(
    preset: str, workers: int, seed: int
) -> List[ChaosEvent]:
    """The seeded failure schedule for ``preset`` over ``workers`` slots.

    Deterministic: the same ``(preset, workers, seed)`` always yields
    the same events, so a chaos run replays exactly.
    """
    if preset not in CHAOS_PRESETS:
        raise ServeRequestError(
            f"unknown chaos preset {preset!r}; expected one of "
            f"{CHAOS_PRESETS}"
        )
    rng = random.Random(seed)
    targets = list(range(workers))
    rng.shuffle(targets)
    second = targets[1 % len(targets)]
    if preset == "kill":
        return [
            ChaosEvent(0.25, "kill", targets[0]),
            ChaosEvent(0.50, "kill", second),
        ]
    if preset == "stall":
        return [ChaosEvent(0.30, "stall", targets[0], duration=0.8)]
    if preset == "mixed":
        return [
            ChaosEvent(0.20, "kill", targets[0]),
            ChaosEvent(0.55, "stall", second, duration=0.8),
        ]
    return []  # slow / corrupt act through the fault injector alone


@dataclass
class ChaosResult:
    """Outcome of one chaos run (see :meth:`availability`)."""

    preset: str
    seed: int
    workers: int
    concurrency: int
    requests: int
    sent: Dict[str, int] = field(default_factory=dict)
    ok: Dict[str, int] = field(default_factory=dict)
    degraded: int = 0
    mismatches: int = 0
    corrupt_detected: int = 0
    respawns: int = 0
    retries: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    events_applied: List[Dict[str, object]] = field(default_factory=list)
    worker_states: List[str] = field(default_factory=list)
    #: The fleet's async-sanitizer tallies (None unless RAPFLOW_SANITIZE
    #: was set for the run) — CI asserts zero violations on it.
    sanitizer: Optional[Dict[str, object]] = None
    #: Shared-memory plane summary when the run attached workers over
    #: shm (``via_shm=True``): segment name, attach count, and whether
    #: the segment leaked past cleanup — CI asserts ``leaked`` false.
    shm: Optional[Dict[str, object]] = None
    #: The front's SLO snapshot (error-budget burn rates per window),
    #: read back from ``/healthz`` after the load completes.
    slo: Optional[Dict[str, object]] = None
    #: Trace ids of every degraded (cache-replayed) reply, in arrival
    #: order — present only when the run traced (``trace_dir`` set).
    #: Each id resolves to a full cross-process tree via
    #: ``rapflow trace <id> --trace-dir <dir>``.
    degraded_trace_ids: List[str] = field(default_factory=list)

    def availability(self, kind: str = "evaluate") -> float:
        """Fraction of ``kind`` requests answered 200 (1.0 if none sent)."""
        sent = self.sent.get(kind, 0)
        if sent == 0:
            return 1.0
        return self.ok.get(kind, 0) / sent

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the bench and CLI both emit this)."""
        return {
            "preset": self.preset,
            "seed": self.seed,
            "workers": self.workers,
            "concurrency": self.concurrency,
            "requests": self.requests,
            "sent": dict(self.sent),
            "ok": dict(self.ok),
            "availability": {
                kind: self.availability(kind) for kind in self.sent
            },
            "degraded": self.degraded,
            "mismatches": self.mismatches,
            "corrupt_detected": self.corrupt_detected,
            "respawns": self.respawns,
            "retries": self.retries,
            "shed": dict(self.shed),
            "events_applied": list(self.events_applied),
            "worker_states": list(self.worker_states),
            "sanitizer": self.sanitizer,
            "shm": self.shm,
            "slo": self.slo,
            "degraded_trace_ids": list(self.degraded_trace_ids),
        }


def _build_pool(
    reference: QueryEngine, pool_size: int, k: int
) -> List[List[object]]:
    """Plausible hot placements from the reference engine's top gains."""
    response = reference.handle(
        {"kind": "top_gains", "placement": [], "limit": pool_size + k}
    )
    sites = [entry["site"] for entry in response["gains"]]
    if len(sites) < k:
        raise ServeError(
            f"scenario offers only {len(sites)} candidate sites; chaos "
            f"needs at least {k}"
        )
    pool = []
    for start in range(max(1, min(pool_size, len(sites)))):
        pool.append([sites[(start + j) % len(sites)] for j in range(k)])
    return pool


def _build_requests(
    pool: Sequence[Sequence[object]], total: int, seed: int
) -> List[Dict[str, object]]:
    """The seeded request stream: evaluate-heavy, alternating backends."""
    rng = random.Random(seed * 1_000_003 + 17)
    stream: List[Dict[str, object]] = []
    for index in range(total):
        roll = rng.random()
        backend = "numpy" if index % 2 else "python"
        cumulative = 0.0
        kind = _KIND_WEIGHTS[-1][0]
        for name, weight in _KIND_WEIGHTS:
            cumulative += weight
            if roll < cumulative:
                kind = name
                break
        if kind == "evaluate":
            pool_index = rng.randrange(len(pool))
            stream.append(
                {
                    "kind": "evaluate",
                    "placements": [list(pool[pool_index])],
                    "backend": backend,
                    "_pool_index": pool_index,
                }
            )
        elif kind == "top_gains":
            stream.append(
                {
                    "kind": "top_gains",
                    "placement": [],
                    "limit": 4,
                    "backend": backend,
                }
            )
        else:
            stream.append(
                {
                    "kind": "place",
                    "algorithm": "composite-greedy",
                    "k": 2,
                    "backend": backend,
                }
            )
    return stream


def run_chaos(
    artifact: ScenarioArtifact,
    preset: str = "kill",
    workers: int = 4,
    requests: int = 400,
    concurrency: int = 8,
    seed: int = 0,
    jsonl_path: Optional[Union[str, Path]] = None,
    fleet_config: Optional[FleetConfig] = None,
    events: Optional[Sequence[ChaosEvent]] = None,
    via_shm: bool = False,
    trace_dir: Optional[Union[str, Path]] = None,
) -> ChaosResult:
    """Drive a fleet through ``preset`` failures and measure the damage.

    Stands up ``workers`` in-process replicas of ``artifact`` behind a
    front, sends ``requests`` seeded requests from ``concurrency``
    client threads, fires the (seeded or explicit) failure ``events``
    at their scheduled points in the stream, and returns a
    :class:`ChaosResult`.  Pass ``jsonl_path`` to append one JSON line
    per request outcome and applied event.

    With ``via_shm=True`` the artifact is published once into a
    temporary shared-memory pool and every worker replica **attaches**
    zero-copy instead of holding its own array copies — the chaos run
    then doubles as a lifecycle test for the shm plane: the summary's
    ``shm.leaked`` flag reports whether the segment survived cleanup
    (it must not, even with workers killed mid-load).

    With ``trace_dir`` set, the front and every worker write JSONL
    trace segments there, every reply carries a ``trace_id``, and the
    result records the trace ids of all degraded replies — so each
    fallback can be replayed as a full cross-process tree
    (``rapflow trace <id>``) showing the failed attempt, the retry, and
    the cache-replay hop.
    """
    schedule = sorted(
        events if events is not None else build_schedule(preset, workers, seed),
        key=lambda event: event.at_fraction,
    )
    fault_config = fault_config_for(preset) if events is None else None
    reference = QueryEngine(artifact, cache_size=0)
    pool = _build_pool(reference, pool_size=8, k=2)
    stream = _build_requests(pool, requests, seed)
    expected: Dict[Tuple[int, str], List[float]] = {}
    for request in stream:
        if request["kind"] != "evaluate":
            continue
        key = (request["_pool_index"], request["backend"])
        if key not in expected:
            placement = tuple(
                decode_site(site) for site in pool[key[0]]
            )
            expected[key] = reference.evaluate_totals(
                [placement], backend=key[1]
            )

    worker_seed = seed * 11 + 5

    shm_pool = None
    if via_shm:
        import tempfile

        from .shm import ShmArtifactPool

        shm_pool = ShmArtifactPool(tempfile.mkdtemp(prefix="rapflow-chaos-shm-"))
        shm_pool.publish(artifact)

    def engine_factory() -> QueryEngine:
        injector = None
        if fault_config is not None:
            injector = FaultInjector(fault_config, seed=worker_seed)
        if shm_pool is not None:
            # Each replica restores zero-copy from the shared segment:
            # no npz read, no private array copies.
            attached = ScenarioArtifact.attach(shm_pool, artifact.digest)
            return QueryEngine(attached, fault_injector=injector)
        return QueryEngine(artifact, fault_injector=injector)

    config = fleet_config or FleetConfig(
        workers=workers,
        max_inflight=64,
        timeout=10.0,
        heartbeat_interval=0.05,
        heartbeat_timeout=0.3,
        max_missed=2,
        respawn_backoff=0.05,
        respawn_backoff_cap=0.5,
        retry=RetryPolicy(retries=3, backoff=0.02, backoff_cap=0.2),
        seed=seed,
    )
    if trace_dir is not None:
        config = replace(config, trace_dir=trace_dir)
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
    result = ChaosResult(
        preset=preset,
        seed=seed,
        workers=config.workers,
        concurrency=concurrency,
        requests=requests,
    )
    fired = [False] * len(schedule)
    lock = threading.Lock()
    log_handle = open(jsonl_path, "a") if jsonl_path else None

    def log(record: Dict[str, object]) -> None:
        if log_handle is None:
            return
        with lock:
            log_handle.write(json.dumps(record) + "\n")

    try:
        worker_kwargs: Dict[str, object] = {}
        if trace_dir is not None:
            worker_kwargs["trace_dir"] = trace_dir
        fleet = PlacementFleet(
            local_worker_factory(engine_factory, **worker_kwargs),
            digest=artifact.digest,
            config=config,
        )
        with FleetThread(fleet) as handle:
            client = handle.client(timeout=30.0)

            def fire_due_events(index: int) -> None:
                for position, event in enumerate(schedule):
                    with lock:
                        if fired[position]:
                            continue
                        if event.trigger_index(requests) > index:
                            continue
                        fired[position] = True
                    applied: Dict[str, object] = {
                        "event": event.action,
                        "target": event.target,
                        "at_request": index,
                    }
                    try:
                        worker = fleet.worker_handle(event.target)
                        if event.action == "kill":
                            worker.kill()
                        elif event.action == "stall":
                            worker.inject_stall(event.duration)
                            applied["duration"] = event.duration
                        else:
                            raise ServeRequestError(
                                f"unknown chaos action {event.action!r}"
                            )
                    except ServeError as error:
                        applied["skipped"] = str(error)
                    result.events_applied.append(applied)
                    log(applied)

            def drive(index: int) -> None:
                fire_due_events(index)
                request = {
                    name: value
                    for name, value in stream[index].items()
                    if not name.startswith("_")
                }
                kind = str(request["kind"])
                record: Dict[str, object] = {"request": index, "kind": kind}
                with lock:
                    result.sent[kind] = result.sent.get(kind, 0) + 1
                try:
                    payload = client.query(request)
                except ServeClientError as error:
                    record["status"] = error.status or 0
                    record["error"] = str(error)[:200]
                    log(record)
                    return
                record["status"] = 200
                degraded = bool(payload.get("degraded"))
                record["degraded"] = degraded
                record["served_by"] = payload.get("served_by")
                trace_id = payload.get("trace_id")
                if trace_id is not None:
                    record["trace_id"] = trace_id
                mismatch = False
                if kind == "evaluate" and not degraded:
                    key = (
                        stream[index]["_pool_index"],
                        stream[index]["backend"],
                    )
                    totals = payload.get("totals")
                    mismatch = totals != expected[key]
                with lock:
                    result.ok[kind] = result.ok.get(kind, 0) + 1
                    if degraded:
                        result.degraded += 1
                        if isinstance(trace_id, str):
                            result.degraded_trace_ids.append(trace_id)
                    if mismatch:
                        result.mismatches += 1
                        record["mismatch"] = True
                log(record)

            with ThreadPoolExecutor(max_workers=concurrency) as executor:
                list(executor.map(drive, range(requests)))
            fire_due_events(requests - 1)  # anything not yet triggered

            health = client.healthz()
            result.respawns = int(health.get("respawns", 0))
            requests_doc = health.get("requests", {})
            if isinstance(requests_doc, dict):
                result.corrupt_detected = int(
                    requests_doc.get("corrupt_detected", 0)
                )
                result.retries = int(requests_doc.get("retries", 0))
            admission = health.get("admission", {})
            if isinstance(admission, dict):
                tiers = admission.get("tiers", {})
                if isinstance(tiers, dict):
                    result.shed = {
                        kind: int(doc.get("shed", 0))
                        for kind, doc in tiers.items()
                        if isinstance(doc, dict)
                    }
            workers_doc = health.get("workers", [])
            if isinstance(workers_doc, list):
                result.worker_states = [
                    str(doc.get("state"))
                    for doc in workers_doc
                    if isinstance(doc, dict)
                ]
            sanitizer_doc = health.get("sanitizer")
            if isinstance(sanitizer_doc, dict):
                result.sanitizer = sanitizer_doc
            slo_doc = health.get("slo")
            if isinstance(slo_doc, dict):
                result.slo = slo_doc
        if shm_pool is not None:
            # The fleet is stopped: detach the replicas' handles and
            # unlink the segment, then probe that nothing leaked —
            # killed workers must not pin the segment past cleanup.
            from .shm import segment_exists, segment_name_for

            segment = segment_name_for(artifact.digest)
            shm_pool.detach_all()
            shm_pool.unlink_all()
            result.shm = {
                "digest": artifact.digest,
                "segment": segment,
                "leaked": segment_exists(segment),
            }
        log({"summary": result.to_dict()})
    finally:
        if shm_pool is not None and result.shm is None:
            # The run died before clean teardown: still unlink.
            shm_pool.detach_all()
            shm_pool.unlink_all()
        if log_handle is not None:
            log_handle.close()
    return result


__all__ = [
    "CHAOS_PRESETS",
    "ChaosEvent",
    "ChaosResult",
    "build_schedule",
    "fault_config_for",
    "run_chaos",
]
