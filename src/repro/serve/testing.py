"""Synchronous harness around the asyncio server (tests, benches, CLI).

:class:`ServerThread` runs a :class:`~repro.serve.server.PlacementServer`
on a dedicated event loop in a background thread, so synchronous callers
(pytest tests, the latency bench's thread pool, interactive sessions)
can drive it with :class:`~repro.serve.client.ServeClient` instances
without touching asyncio themselves.  Entering the context binds the
port; exiting performs the full graceful drain.

The split keeps the serving stack itself single-threaded: the only
cross-thread traffic is the HTTP socket and the
``call_soon_threadsafe``-scheduled shutdown.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from ..errors import ServeError
from .client import ServeClient
from .engine import QueryEngine
from .server import PlacementServer

#: How long :meth:`ServerThread.stop` waits for the loop thread.
_JOIN_TIMEOUT = 30.0


class ServerThread:
    """Run a placement server on a background event loop.

    Accepts either a ready-made :class:`PlacementServer` or a
    :class:`QueryEngine` (plus server keyword arguments) to wrap in one.
    """

    def __init__(self, engine_or_server: object, **server_kwargs: object) -> None:
        if isinstance(engine_or_server, PlacementServer):
            if server_kwargs:
                raise ServeError(
                    "pass server kwargs only together with a QueryEngine"
                )
            self._placement_server = engine_or_server
        elif isinstance(engine_or_server, QueryEngine):
            self._placement_server = PlacementServer(
                engine_or_server, **server_kwargs  # type: ignore[arg-type]
            )
        else:
            raise ServeError(
                f"ServerThread wraps a QueryEngine or PlacementServer, got "
                f"{type(engine_or_server).__name__}"
            )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._killed = False

    @property
    def server(self) -> PlacementServer:
        """The wrapped server (port is valid once the context is entered)."""
        return self._placement_server

    @property
    def port(self) -> int:
        """The bound port."""
        return self._placement_server.port

    def client(self, timeout: float = 30.0) -> ServeClient:
        """A fresh client pointed at this server."""
        return ServeClient(
            self._placement_server.host, self.port, timeout=timeout
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._placement_server.start())
        except BaseException as error:  # rapflow: noqa[RAP003] re-raised in the starting thread by __enter__
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            if self._killed:
                # A crash-simulated stop cuts connections mid-task; the
                # resulting CancelledErrors are expected, not reportable.
                loop.set_exception_handler(lambda _loop, _context: None)
            else:
                loop.run_until_complete(self._placement_server.shutdown())
            # Let connection handlers and transport close callbacks
            # finish before the loop closes, so no callback lands on a
            # closed loop.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)  # rapflow: noqa[RAP009] drain of cancelled tasks; results are the CancelledErrors we caused
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="rapflow-serve", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise ServeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    def stop(self) -> None:
        """Stop the loop; the thread drains the server before exiting."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=_JOIN_TIMEOUT)

    def kill(self) -> None:
        """Abrupt stop — the in-process analogue of ``SIGKILL``.

        No drain, no batcher flush: the listening socket closes, open
        connections are cut mid-flight, and the loop exits.  The chaos
        harness and fleet tests use this to crash a worker the way a
        killed process crashes; production shutdown is :meth:`stop`.
        """
        self._killed = True
        if self._loop is not None and self._loop.is_running():
            def _abort() -> None:
                self._placement_server.abort()
                self._loop.stop()

            self._loop.call_soon_threadsafe(_abort)
        if self._thread is not None:
            self._thread.join(timeout=_JOIN_TIMEOUT)

    def inject_stall(self, seconds: float) -> None:
        """Block the server's event loop for ``seconds`` (chaos hook).

        Schedules a *blocking* wait on the loop thread, so every request
        and health probe stalls — indistinguishable from a worker wedged
        in a long GIL-bound computation, which is exactly the failure
        mode the fleet supervisor's stall detection must catch.
        """
        if self._loop is None or not self._loop.is_running():
            raise ServeError("cannot stall a server that is not running")
        blocker = threading.Event()  # never set: wait() is a pure timer
        self._loop.call_soon_threadsafe(blocker.wait, seconds)


class FleetThread:
    """Run a :class:`~repro.serve.fleet.PlacementFleet` on a background loop.

    The fleet analogue of :class:`ServerThread`: entering the context
    starts every worker and binds the front; exiting shuts the whole
    fleet down.  Synchronous callers (fleet tests, the chaos harness,
    the bench's thread pools) drive the front with ordinary
    :class:`~repro.serve.client.ServeClient` instances.
    """

    def __init__(self, fleet: object) -> None:
        from .fleet import PlacementFleet

        if not isinstance(fleet, PlacementFleet):
            raise ServeError(
                f"FleetThread wraps a PlacementFleet, got "
                f"{type(fleet).__name__}"
            )
        self._fleet = fleet
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def fleet(self) -> object:
        """The wrapped fleet (port valid once the context is entered)."""
        return self._fleet

    @property
    def port(self) -> int:
        """The front's bound port."""
        return self._fleet.port

    def client(self, timeout: float = 30.0, **kwargs: object) -> ServeClient:
        """A fresh client pointed at the fleet front."""
        return ServeClient(
            self._fleet.host, self.port, timeout=timeout, **kwargs
        )

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._fleet.start())
        except BaseException as error:  # rapflow: noqa[RAP003] re-raised in the starting thread by __enter__
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._fleet.shutdown())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)  # rapflow: noqa[RAP009] drain of cancelled tasks; results are the CancelledErrors we caused
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def __enter__(self) -> "FleetThread":
        self._thread = threading.Thread(
            target=self._run, name="rapflow-fleet", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise ServeError(
                f"fleet failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    def stop(self) -> None:
        """Stop the loop; the thread shuts the fleet down before exiting."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=_JOIN_TIMEOUT)


__all__ = ["FleetThread", "ServerThread"]
