"""repro.serve — embeddable placement-query service.

The serving layer of the reproduction: compile a
:class:`~repro.core.scenario.Scenario` once into a content-addressed
:class:`~repro.serve.artifacts.ScenarioArtifact` (CSR coverage arrays,
per-incidence utility values, CELF seed heaps — persisted to disk so
restarts skip recompilation), then answer placement queries against it:

* :class:`~repro.serve.engine.QueryEngine` — typed ``place`` /
  ``evaluate`` / ``what_if`` / ``top_gains`` requests, answered by the
  exact library calls a direct user would make (bit-identical results,
  both backends), with a bounded LRU response cache;
* :class:`~repro.serve.batching.MicroBatcher` — coalesces concurrent
  evaluate requests into shared
  :func:`~repro.core.kernel.evaluate_placement_many` calls;
* :class:`~repro.serve.server.PlacementServer` /
  :class:`~repro.serve.client.ServeClient` — stdlib-only JSON-over-HTTP
  front end with admission control (429 on overload), per-request
  deadlines (504), ``/healthz``, and graceful draining shutdown;
* :class:`~repro.serve.fleet.PlacementFleet` — a supervised fleet of N
  worker replicas behind one routing front: heartbeat probes, bounded
  respawn with a circuit breaker, retry/backoff/hedging for idempotent
  queries, tiered load shedding, and degraded cache-replay fallback;
* :func:`~repro.serve.chaos.run_chaos` — seeded chaos harness that
  kills/stalls/slows/corrupts workers under concurrent load and checks
  availability plus bit-identity of every non-degraded answer;
* :class:`~repro.serve.shm.ShmArtifactPool` — shared-memory artifact
  plane: one published segment per digest, zero-copy
  :meth:`~repro.serve.artifacts.ScenarioArtifact.attach` restores in
  every worker, refcounted attach/detach, and guaranteed unlink on
  drain or crash (manifest-driven ``sweep``).

The fleet and workers share an observability plane (:mod:`repro.obs`):
cross-process trace propagation over ``X-Rapflow-Trace`` headers into
per-process JSONL segments (opt-in via ``FleetConfig.trace_dir`` /
``PlacementServer(trace_dir=...)``), fixed-bucket latency histograms on
``GET /metrics``, and SLO error-budget burn rates in ``/healthz``.

Surfacing lives in the CLI (``rapflow serve [--workers N]`` /
``rapflow chaos`` / ``rapflow query`` / ``rapflow evaluate``) and
``scripts/bench_serve.py``::

    from repro.serve import ArtifactStore, QueryEngine, ServerThread

    artifact = ArtifactStore("~/.cache/rapflow").get_or_compile(scenario)
    engine = QueryEngine(artifact)
    with ServerThread(engine) as handle:
        totals = handle.client().evaluate([["a", "b"], ["c"]])
"""

from .artifacts import (
    ArtifactStore,
    ScenarioArtifact,
    scenario_digest,
    scenario_from_spec,
    scenario_to_spec,
    spec_digest,
)
from .batching import MicroBatcher
from .chaos import (
    CHAOS_PRESETS,
    ChaosEvent,
    ChaosResult,
    build_schedule,
    run_chaos,
)
from .client import ServeClient
from .engine import REQUEST_KINDS, QueryEngine
from .fleet import (
    FleetConfig,
    LocalWorker,
    PlacementFleet,
    ProcessWorker,
    RetryPolicy,
    SHED_TIERS,
    local_worker_factory,
    process_worker_factory,
    run_fleet,
)
from .server import PlacementServer, run_server
from .shm import (
    ShmArtifactPool,
    ShmAttachment,
    ShmManifest,
    memory_probe,
    segment_exists,
    segment_name_for,
)
from .testing import FleetThread, ServerThread

__all__ = [
    "ArtifactStore",
    "CHAOS_PRESETS",
    "ChaosEvent",
    "ChaosResult",
    "FleetConfig",
    "FleetThread",
    "LocalWorker",
    "MicroBatcher",
    "PlacementFleet",
    "PlacementServer",
    "ProcessWorker",
    "QueryEngine",
    "REQUEST_KINDS",
    "RetryPolicy",
    "SHED_TIERS",
    "ScenarioArtifact",
    "ServeClient",
    "ServerThread",
    "ShmArtifactPool",
    "ShmAttachment",
    "ShmManifest",
    "build_schedule",
    "local_worker_factory",
    "memory_probe",
    "process_worker_factory",
    "run_chaos",
    "run_fleet",
    "run_server",
    "scenario_digest",
    "scenario_from_spec",
    "scenario_to_spec",
    "segment_exists",
    "segment_name_for",
    "spec_digest",
]
