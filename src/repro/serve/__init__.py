"""repro.serve — embeddable placement-query service.

The serving layer of the reproduction: compile a
:class:`~repro.core.scenario.Scenario` once into a content-addressed
:class:`~repro.serve.artifacts.ScenarioArtifact` (CSR coverage arrays,
per-incidence utility values, CELF seed heaps — persisted to disk so
restarts skip recompilation), then answer placement queries against it:

* :class:`~repro.serve.engine.QueryEngine` — typed ``place`` /
  ``evaluate`` / ``what_if`` / ``top_gains`` requests, answered by the
  exact library calls a direct user would make (bit-identical results,
  both backends), with a bounded LRU response cache;
* :class:`~repro.serve.batching.MicroBatcher` — coalesces concurrent
  evaluate requests into shared
  :func:`~repro.core.kernel.evaluate_placement_many` calls;
* :class:`~repro.serve.server.PlacementServer` /
  :class:`~repro.serve.client.ServeClient` — stdlib-only JSON-over-HTTP
  front end with admission control (429 on overload), per-request
  deadlines (504), ``/healthz``, and graceful draining shutdown.

Surfacing lives in the CLI (``rapflow serve`` / ``rapflow query`` /
``rapflow evaluate``) and ``scripts/bench_serve.py``::

    from repro.serve import ArtifactStore, QueryEngine, ServerThread

    artifact = ArtifactStore("~/.cache/rapflow").get_or_compile(scenario)
    engine = QueryEngine(artifact)
    with ServerThread(engine) as handle:
        totals = handle.client().evaluate([["a", "b"], ["c"]])
"""

from .artifacts import (
    ArtifactStore,
    ScenarioArtifact,
    scenario_digest,
    scenario_from_spec,
    scenario_to_spec,
    spec_digest,
)
from .batching import MicroBatcher
from .client import ServeClient
from .engine import REQUEST_KINDS, QueryEngine
from .server import PlacementServer, run_server
from .testing import ServerThread

__all__ = [
    "ArtifactStore",
    "MicroBatcher",
    "PlacementServer",
    "QueryEngine",
    "REQUEST_KINDS",
    "ScenarioArtifact",
    "ServeClient",
    "ServerThread",
    "run_server",
    "scenario_digest",
    "scenario_from_spec",
    "scenario_to_spec",
    "spec_digest",
]
