"""Scenario artifacts: compile once, digest, persist, restore.

A :class:`ScenarioArtifact` is the serving-time form of a
:class:`~repro.core.scenario.Scenario`: the CSR-packed coverage arrays,
the one-time per-incidence utility values, and the precompiled CELF seed
heap, all built exactly once (via
:func:`~repro.core.kernel.warm_kernel`) so that every query afterwards
is pure array work.

Artifacts are **content-addressed**: the scenario is serialized to a
canonical JSON *spec* (network nodes/edges in natural iteration order —
preserving Dijkstra tie-breaking — plus flows, shop, utility parameters,
candidate sites, detour mode) and the artifact digest is the SHA-256 of
that spec.  Two structurally identical scenarios share one digest, and a
digest pins the scenario bit-for-bit: JSON's shortest-round-trip float
encoding restores every ``float64`` exactly, so a restored scenario's
detours, utility values, and therefore every placement and evaluation
result are identical to the original's — on both evaluation backends.

:class:`ArtifactStore` persists artifacts under ``<root>/<digest>/``
(``meta.json`` with the spec + pack stats, ``arrays.npz`` with the CSR
columns), so a restarted server skips recompilation: the coverage index
is reassembled from the stored arrays
(:meth:`~repro.core.coverage.CoverageIndex.from_packed`) without a
single Dijkstra run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Union

import numpy as np

from .. import obs
from ..core.flow import TrafficFlow
from ..core.kernel import PackedCoverage, warm_kernel
from ..core.coverage import CoverageIndex
from ..core.scenario import Scenario
from ..core.utility import (
    LinearUtility,
    SqrtUtility,
    ThresholdUtility,
    UtilityFunction,
)
from ..errors import ReproError, ServeArtifactError
from ..graphs import network_from_dict, network_to_dict
from ..graphs.io import _decode_id, _encode_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .shm import ShmArtifactPool, ShmAttachment

PathLike = Union[str, Path]

FORMAT_NAME = "rapflow-scenario"
FORMAT_VERSION = 1

#: Spec names for the serializable paper utilities (CustomUtility is
#: refused: an arbitrary shape callable cannot round-trip through JSON).
_UTILITY_NAMES: Dict[type, str] = {
    ThresholdUtility: "threshold",
    LinearUtility: "linear",
    SqrtUtility: "sqrt",
}


def utility_to_spec(utility: UtilityFunction) -> Dict[str, object]:
    """Serialize a paper utility to its ``{"name", "threshold"}`` spec."""
    name = _UTILITY_NAMES.get(type(utility))
    if name is None:
        raise ServeArtifactError(
            f"utility {utility!r} is not serializable; artifacts support "
            "the paper shapes (threshold/linear/sqrt) only"
        )
    return {"name": name, "threshold": float(utility.threshold)}


def utility_from_spec(spec: Dict[str, object]) -> UtilityFunction:
    """Rebuild a utility from its spec (inverse of :func:`utility_to_spec`)."""
    from ..core.utility import utility_by_name

    try:
        name = str(spec["name"])
        threshold = float(spec["threshold"])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as error:
        raise ServeArtifactError(f"bad utility spec {spec!r}: {error}") from None
    return utility_by_name(name, threshold)


def _canonical_network(network) -> Dict[str, object]:
    """``network_to_dict`` with every numeric normalized to ``float``.

    The loader casts coordinates and lengths to ``float``, so a network
    built from ints would otherwise hash differently before and after
    one round trip (``json.dumps(6) != json.dumps(6.0)`` even though
    ``6 == 6.0``) — the digest must be idempotent under restore.
    """
    document = network_to_dict(network)
    for node in document["nodes"]:
        node["x"] = float(node["x"])
        node["y"] = float(node["y"])
    for edge in document["edges"]:
        edge["length"] = float(edge["length"])
    return document


def scenario_to_spec(scenario: Scenario) -> Dict[str, object]:
    """Serialize a scenario to its canonical JSON-compatible spec.

    Node order in the network section follows ``network.nodes()``
    (insertion order) and flow/candidate order follows the scenario's
    tuples — the same orders every derived structure (Dijkstra heap
    tie-breaking, coverage build, candidate alignment) iterates in, so
    restoring the spec reproduces those structures exactly.
    """
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "network": _canonical_network(scenario.network),
        "flows": [
            {
                "path": [_encode_id(node) for node in flow.path],
                "volume": float(flow.volume),
                "attractiveness": float(flow.attractiveness),
                "label": flow.label,
            }
            for flow in scenario.flows
        ],
        "shop": _encode_id(scenario.shop),
        "utility": utility_to_spec(scenario.utility),
        "candidate_sites": [
            _encode_id(site) for site in scenario.candidate_sites
        ],
        "detour_mode": scenario.detour_mode,
        "default_backend": scenario.default_backend,
    }


def scenario_from_spec(spec: Dict[str, object]) -> Scenario:
    """Rebuild a scenario from a spec (inverse of :func:`scenario_to_spec`)."""
    if not isinstance(spec, dict):
        raise ServeArtifactError("scenario spec must be a JSON object")
    if spec.get("format") != FORMAT_NAME:
        raise ServeArtifactError(
            f"unexpected spec format {spec.get('format')!r}; expected "
            f"{FORMAT_NAME!r}"
        )
    if spec.get("version") != FORMAT_VERSION:
        raise ServeArtifactError(
            f"unsupported scenario spec version {spec.get('version')!r}"
        )
    try:
        network = network_from_dict(spec["network"])  # type: ignore[arg-type]
        flows = [
            TrafficFlow(
                path=tuple(_decode_id(node) for node in entry["path"]),
                volume=float(entry["volume"]),
                attractiveness=float(entry["attractiveness"]),
                label=entry.get("label"),
            )
            for entry in spec["flows"]  # type: ignore[union-attr]
        ]
        return Scenario(
            network=network,
            flows=flows,
            shop=_decode_id(spec["shop"]),
            utility=utility_from_spec(spec["utility"]),  # type: ignore[arg-type]
            candidate_sites=[
                _decode_id(site)
                for site in spec["candidate_sites"]  # type: ignore[union-attr]
            ],
            detour_mode=str(spec.get("detour_mode", "shortest")),
            default_backend=spec.get("default_backend"),  # type: ignore[arg-type]
        )
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ServeArtifactError(f"malformed scenario spec: {error}") from None


def spec_digest(spec: Dict[str, object]) -> str:
    """SHA-256 of the canonical JSON encoding of a scenario spec."""
    canonical = json.dumps(
        spec, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def scenario_digest(scenario: Scenario) -> str:
    """Content digest of a scenario (via its canonical spec)."""
    return spec_digest(scenario_to_spec(scenario))


@dataclass
class ScenarioArtifact:
    """A compiled, digest-addressed scenario ready to serve queries.

    ``scenario`` carries the attached coverage index and (through the
    kernel's per-scenario cache) the precompiled gain arrays and CELF
    seed heap; ``stats`` records the pack sizes
    (:func:`~repro.core.kernel.warm_kernel`'s return value).
    """

    digest: str
    spec: Dict[str, object]
    scenario: Scenario
    stats: Dict[str, int]
    #: Set on the shared-memory restore path only: keeps the segment
    #: mapping alive for as long as the artifact is (the CSR columns
    #: are views over it).
    shm: Optional["ShmAttachment"] = None

    @classmethod
    def compile(cls, scenario: Scenario) -> "ScenarioArtifact":
        """Compile every serving-time structure for ``scenario`` once."""
        spec = scenario_to_spec(scenario)
        with obs.span("serve.artifact.compile"):
            stats = warm_kernel(scenario)
        obs.count("serve.artifact.compiles")
        return cls(
            digest=spec_digest(spec),
            spec=spec,
            scenario=scenario,
            stats=stats,
        )

    def patched(self, volume_deltas: Mapping[int, float]) -> "ScenarioArtifact":
        """An incrementally re-addressed artifact with volume deltas applied.

        The streaming fast path: traffic-matrix deltas change per-flow
        volumes only, so the expensive structures — the network, the
        Dijkstra detour fields, and every CSR incidence column — are
        shared with this artifact, and only the per-flow volume vector is
        rewritten (:meth:`~repro.core.kernel.PackedCoverage.apply_delta`).
        The patched scenario is re-warmed through the normal kernel
        caches, and the new spec/digest are derived from the updated flow
        volumes, so the result is indistinguishable (bit-for-bit, digest
        included) from compiling the updated scenario from scratch —
        without a single Dijkstra run or utility re-evaluation on the
        unchanged incidences.
        """
        if not volume_deltas:
            return self
        scenario = self.scenario
        packed = scenario.coverage.packed().apply_delta(dict(volume_deltas))
        flows: List[TrafficFlow] = list(scenario.flows)
        spec_flows = [dict(entry) for entry in self.spec["flows"]]  # type: ignore[union-attr]
        for raw_index, raw_delta in volume_deltas.items():
            index = int(raw_index)
            flow = flows[index]
            updated = flow.volume + float(raw_delta)
            flows[index] = replace(flow, volume=updated)
            spec_flows[index]["volume"] = float(updated)
        new_spec: Dict[str, object] = dict(self.spec)
        new_spec["flows"] = spec_flows
        patched_scenario = scenario.with_flows(flows)
        patched_scenario.attach_coverage(
            CoverageIndex.from_packed(patched_scenario.flows, packed, lazy=True)
        )
        with obs.span("serve.artifact.patch", flows_changed=len(volume_deltas)):
            stats = warm_kernel(patched_scenario)
        obs.count("serve.artifact.patches")
        return ScenarioArtifact(
            digest=spec_digest(new_spec),
            spec=new_spec,
            scenario=patched_scenario,
            stats=stats,
            # Shared columns may be views over this artifact's segment;
            # carrying the attachment keeps the mapping alive with us.
            shm=self.shm,
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, root: PathLike) -> Path:
        """Persist under ``<root>/<digest>/`` (meta.json + arrays.npz)."""
        directory = Path(root) / self.digest
        directory.mkdir(parents=True, exist_ok=True)
        packed = self.scenario.coverage.packed()
        try:
            np.savez(
                directory / "arrays.npz",
                indptr=packed.indptr,
                flow_index=packed.flow_index,
                detour=packed.detour,
                position=packed.position,
                entry_row=packed.entry_row,
                volume=packed.volume,
                attractiveness=packed.attractiveness,
            )
            with open(directory / "meta.json", "w") as handle:
                json.dump(
                    {
                        "format": FORMAT_NAME,
                        "version": FORMAT_VERSION,
                        "digest": self.digest,
                        "spec": self.spec,
                        "stats": self.stats,
                        "packed_nodes": [
                            _encode_id(node) for node in packed.nodes
                        ],
                    },
                    handle,
                )
        except OSError as error:
            raise ServeArtifactError(
                f"cannot persist artifact {self.digest[:12]} under "
                f"{directory}: {error}"
            ) from error
        obs.count("serve.artifact.saves")
        return directory

    @classmethod
    def load(cls, root: PathLike, digest: str) -> "ScenarioArtifact":
        """Restore a persisted artifact — no Dijkstra, no re-packing."""
        directory = Path(root) / digest
        try:
            with open(directory / "meta.json") as handle:
                meta = json.load(handle)
            with np.load(directory / "arrays.npz") as arrays:
                columns = {key: arrays[key] for key in arrays.files}
        except OSError as error:
            raise ServeArtifactError(
                f"cannot read artifact {digest[:12]} under {directory}: "
                f"{error}"
            ) from error
        except (json.JSONDecodeError, ValueError) as error:
            raise ServeArtifactError(
                f"artifact {digest[:12]} is corrupt: {error}"
            ) from None
        spec = meta.get("spec")
        if not isinstance(spec, dict):
            raise ServeArtifactError(
                f"artifact {digest[:12]} meta.json has no scenario spec"
            )
        actual = spec_digest(spec)
        if actual != digest:
            raise ServeArtifactError(
                f"artifact digest mismatch under {directory}: directory "
                f"says {digest[:12]}, spec hashes to {actual[:12]}"
            )
        scenario = scenario_from_spec(spec)
        try:
            packed = PackedCoverage.from_arrays(
                nodes=[_decode_id(raw) for raw in meta["packed_nodes"]],
                indptr=columns["indptr"],
                flow_index=columns["flow_index"],
                detour=columns["detour"],
                position=columns["position"],
                volume=columns["volume"],
                attractiveness=columns["attractiveness"],
                # Artifacts saved before the shm plane carry no
                # entry_row column; from_arrays rederives it then.
                entry_row=columns.get("entry_row"),
            )
        except (KeyError, ReproError) as error:
            raise ServeArtifactError(
                f"artifact {digest[:12]} arrays are inconsistent: {error}"
            ) from None
        scenario.attach_coverage(
            CoverageIndex.from_packed(scenario.flows, packed)
        )
        with obs.span("serve.artifact.load"):
            stats = warm_kernel(scenario)
        obs.count("serve.artifact.loads")
        return cls(digest=digest, spec=spec, scenario=scenario, stats=stats)

    @classmethod
    def attach(
        cls, pool: "ShmArtifactPool", digest: str
    ) -> "ScenarioArtifact":
        """Zero-copy restore from a shared-memory segment — no npz read.

        The inverse of :meth:`repro.serve.shm.ShmArtifactPool.publish`:
        the CSR columns become read-only views straight over the shared
        buffer (``PackedCoverage.from_arrays`` adopts them, including
        the published ``entry_row``, without copying) and the coverage
        index is rebuilt lazily, so a worker serving through the numpy
        kernel holds private memory only for the per-incidence utility
        values — the arrays themselves stay one physical copy per host.

        The returned artifact keeps the attachment alive via
        :attr:`shm`; drop it with ``pool.detach(digest)`` when done.
        """
        attachment = pool.attach(digest)
        try:
            meta = attachment.manifest.meta
            spec = meta.get("spec")
            if not isinstance(spec, dict):
                raise ServeArtifactError(
                    f"shm manifest for {digest[:12]} has no scenario spec"
                )
            actual = spec_digest(spec)
            if actual != digest:
                raise ServeArtifactError(
                    f"shm manifest digest mismatch: pool says {digest[:12]}, "
                    f"spec hashes to {actual[:12]}"
                )
            scenario = scenario_from_spec(spec)
            arrays = attachment.arrays
            try:
                packed = PackedCoverage.from_arrays(
                    nodes=[
                        _decode_id(raw)
                        for raw in meta["packed_nodes"]  # type: ignore[union-attr]
                    ],
                    indptr=arrays["indptr"],
                    flow_index=arrays["flow_index"],
                    detour=arrays["detour"],
                    position=arrays["position"],
                    volume=arrays["volume"],
                    attractiveness=arrays["attractiveness"],
                    entry_row=arrays["entry_row"],
                )
            except (KeyError, ReproError) as error:
                raise ServeArtifactError(
                    f"shm arrays for {digest[:12]} are inconsistent: {error}"
                ) from None
            scenario.attach_coverage(
                CoverageIndex.from_packed(scenario.flows, packed, lazy=True)
            )
            with obs.span("serve.artifact.attach"):
                stats = warm_kernel(scenario)
        except BaseException:  # rapflow: noqa[RAP003] detach-and-reraise cleanup
            pool.detach(digest)
            raise
        obs.count("serve.artifact.attaches")
        return cls(
            digest=digest,
            spec=spec,
            scenario=scenario,
            stats=stats,
            shm=attachment,
        )


class ArtifactStore:
    """Digest-keyed disk cache of compiled scenario artifacts.

    ``get_or_compile`` is the serving entry point: hit the in-memory
    map, then the disk cache, then compile-and-persist.  A store with
    ``root=None`` is memory-only (compilation still happens once per
    digest per process).
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self._root = Path(root) if root is not None else None
        self._loaded: Dict[str, ScenarioArtifact] = {}

    @property
    def root(self) -> Optional[Path]:
        """The on-disk cache directory (``None`` for memory-only)."""
        return self._root

    def cached_digests(self) -> List[str]:
        """Digests available on disk (empty for memory-only stores)."""
        if self._root is None or not self._root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self._root.iterdir()
            if entry.is_dir() and (entry / "meta.json").is_file()
        )

    def get_or_compile(self, scenario: Scenario) -> ScenarioArtifact:
        """The artifact for ``scenario`` — memory, then disk, then compile."""
        digest = scenario_digest(scenario)
        cached = self._loaded.get(digest)
        if cached is not None:
            obs.count("serve.artifact.memory_hits")
            return cached
        if self._root is not None and (
            self._root / digest / "meta.json"
        ).is_file():
            artifact = ScenarioArtifact.load(self._root, digest)
            obs.count("serve.artifact.disk_hits")
        else:
            artifact = ScenarioArtifact.compile(scenario)
            if self._root is not None:
                artifact.save(self._root)
        self._loaded[digest] = artifact
        return artifact

    def load(self, digest: str) -> ScenarioArtifact:
        """The artifact for a known digest (memory, then disk)."""
        cached = self._loaded.get(digest)
        if cached is not None:
            obs.count("serve.artifact.memory_hits")
            return cached
        if self._root is None:
            raise ServeArtifactError(
                f"artifact {digest[:12]} is not loaded and the store has "
                "no disk cache"
            )
        artifact = ScenarioArtifact.load(self._root, digest)
        self._loaded[digest] = artifact
        return artifact

    def put(self, artifact: ScenarioArtifact) -> None:
        """Register an already-compiled artifact (and persist if disk-backed).

        The streaming refresher compiles patched artifacts outside the
        store (:meth:`ScenarioArtifact.patched`); ``put`` makes them
        addressable by digest like any compiled-here artifact.
        """
        self._loaded[artifact.digest] = artifact
        if self._root is not None:
            artifact.save(self._root)


__all__ = [
    "ArtifactStore",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ScenarioArtifact",
    "scenario_digest",
    "scenario_from_spec",
    "scenario_to_spec",
    "spec_digest",
    "utility_from_spec",
    "utility_to_spec",
]
