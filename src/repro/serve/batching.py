"""Micro-batching for concurrent evaluate queries.

Scoring a placement costs one masked reduction over the packed coverage
arrays, but each :func:`~repro.core.kernel.evaluate_placement_many` call
also pays fixed per-call overhead (backend resolution, pack lookup,
Python dispatch).  Under concurrency that overhead dominates: eight
clients each asking for one placement trigger eight kernel entries
where one would do.

:class:`MicroBatcher` coalesces: an ``evaluate`` request enqueues its
placements and awaits a future; the first request in an idle window
schedules a flush after ``window`` seconds (early when ``max_batch``
placements accumulate); the flush concatenates every queued placement
into **one** ``evaluate_placement_many`` call — deduplicating identical
placements, which under hot-query workloads shrinks the kernel batch
dramatically — and scatters the totals back to the per-request futures.

Batching only pays once enough requests are in flight to share a
kernel call.  The caller therefore passes its admission count
(``inflight=...`` — the HTTP server's concurrent-request gauge) and the
batcher **bypasses the window adaptively**: a request that arrives with
``inflight <= bypass_threshold`` and finds no batch already open
dispatches immediately.  Holding such a request hostage for ``window``
seconds buys little coalescing and costs up to the window in latency —
the low-concurrency regression BENCH_serve.json showed at c=2 (0.57x)
and c=4 (0.71x) before the threshold existed (PR 6's ``solo`` hint only
covered c=1).  The hint must come from the caller because the batcher
alone cannot tell idle from busy: the engine's kernel call is
synchronous, so by the time the loop hands the next queued request to
the batcher the previous one has already finished and nothing is ever
"pending" — only the server's admission count sees the concurrency.
Bypassed requests are tallied separately (``bypassed`` in
:meth:`stats`).

The batcher also serves as the **fleet front's per-shard dedup stage**:
constructed with an async ``dispatch`` callable instead of an engine,
flushes are forwarded (one coalesced placement list per window) to
whatever answers — in the fleet, the retry/hedging worker path — so
identical queries landing on *different replicas* still collapse to one
backend call per window.

Placements are scored independently by the kernel (each gets its own
min-reduction and utility pass), so coalescing, reordering, and
deduplication cannot change any total: batched results are bit-identical
to direct ``evaluate_placement_many`` calls, which the differential
tests pin.

Batches are grouped by ``(utility, backend)`` — placements under
different utilities can never share a kernel call.  The batcher is
asyncio-native and single-loop; it relies on the event loop for the
flush timer (``asyncio.sleep``), never on wall-clock reads.
"""

from __future__ import annotations

import asyncio
import json
from typing import (
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .. import obs
from ..errors import ServeRequestError
from ..graphs import NodeId
from ..obs import trace as obs_trace
from .engine import QueryEngine

#: One queued request: its placements and the future awaiting totals.
_Pending = Tuple[List[Tuple[NodeId, ...]], "asyncio.Future[List[float]]"]

#: Batch group: canonical utility spec JSON (or "") and backend name.
_GroupKey = Tuple[str, str]

#: Async evaluate sink for engine-less batchers (the fleet front):
#: ``(placements, utility, backend) -> totals`` in placement order.
DispatchFn = Callable[
    [List[Tuple[NodeId, ...]], Optional[dict], Optional[str]],
    Awaitable[List[float]],
]


class MicroBatcher:
    """Coalesces concurrent evaluate requests into shared kernel calls.

    Parameters
    ----------
    engine:
        The query engine whose ``evaluate_totals`` scores each flushed
        batch.  Mutually exclusive with ``dispatch``.
    window:
        Seconds to hold a batch open for stragglers (0 still batches
        whatever lands in the same loop iteration).
    max_batch:
        Flush early once this many placements are queued in one group.
    bypass_threshold:
        Dispatch immediately (no window) when the caller-reported
        in-flight count is at or below this and no batch is open.  The
        PR 6 behavior — bypass only genuinely solo requests — is
        ``bypass_threshold=1``.
    dispatch:
        Async evaluate sink used instead of an engine (the fleet
        front): each flush forwards the coalesced placements and awaits
        the totals.  Mutually exclusive with ``engine``.
    """

    def __init__(
        self,
        engine: Optional[QueryEngine] = None,
        window: float = 0.002,
        max_batch: int = 256,
        bypass_threshold: int = 1,
        dispatch: Optional[DispatchFn] = None,
    ) -> None:
        if window < 0:
            raise ServeRequestError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ServeRequestError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if bypass_threshold < 0:
            raise ServeRequestError(
                f"bypass_threshold must be >= 0, got {bypass_threshold}"
            )
        if (engine is None) == (dispatch is None):
            raise ServeRequestError(
                "exactly one of engine= and dispatch= must be given"
            )
        self._engine = engine
        self._dispatch = dispatch
        self._window = window
        self._max_batch = max_batch
        self._bypass_threshold = bypass_threshold
        self._pending: Dict[_GroupKey, List[_Pending]] = {}
        self._specs: Dict[_GroupKey, Tuple[Optional[dict], Optional[str]]] = {}
        self._flush_tasks: Dict[_GroupKey, "asyncio.Task[None]"] = {}
        self._dispatch_tasks: Set["asyncio.Task[None]"] = set()
        self.flushes = 0
        self.batched_requests = 0
        self.batched_placements = 0
        self.deduped_placements = 0
        self.bypassed = 0

    async def evaluate(
        self,
        placements: Sequence[Sequence[NodeId]],
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
        solo: bool = False,
        inflight: Optional[int] = None,
    ) -> List[float]:
        """Score ``placements``, sharing a kernel call with peers.

        Awaits until the enclosing batch flushes; the returned totals
        are ordered like ``placements``.  ``inflight`` is the caller's
        concurrent-request count (the server's admission gauge): at or
        below ``bypass_threshold``, with no batch already open, the
        request dispatches immediately instead of paying the window.
        ``solo=True`` is the legacy spelling of ``inflight=1``.
        """
        if not placements:
            return []
        quiet = solo or (
            inflight is not None and inflight <= self._bypass_threshold
        )
        if quiet and not self._pending and not self._flush_tasks:
            # Too little concurrency to coalesce with: dispatch
            # immediately instead of paying the batch window for zero
            # (or near-zero) sharing.  With a synchronous engine no
            # other request can enqueue between this check and the
            # call; with an async dispatch a concurrent arrival simply
            # opens its own batch.
            self.bypassed += 1
            self.batched_requests += 1
            self.batched_placements += len(placements)
            obs.count("serve.batch.bypassed")
            normalized = [tuple(sites) for sites in placements]
            if self._dispatch is not None:
                return await self._dispatch(normalized, utility, backend)
            assert self._engine is not None
            return self._engine_eval(
                normalized, utility, backend, requests=1, deduped=0
            )
        key: _GroupKey = (
            json.dumps(utility, sort_keys=True) if utility else "",
            backend or "",
        )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[List[float]]" = loop.create_future()
        normalized = [tuple(sites) for sites in placements]
        group = self._pending.setdefault(key, [])
        group.append((normalized, future))
        self._specs[key] = (utility, backend)
        self.batched_requests += 1
        self.batched_placements += len(normalized)
        queued = sum(len(entry[0]) for entry in group)
        if queued >= self._max_batch:
            self._cancel_timer(key)
            self._flush(key)
        elif key not in self._flush_tasks:
            self._flush_tasks[key] = loop.create_task(self._timer(key))
        return await future

    async def _timer(self, key: _GroupKey) -> None:
        try:
            await asyncio.sleep(self._window)
        except asyncio.CancelledError:
            return
        self._flush_tasks.pop(key, None)
        self._flush(key)

    def _cancel_timer(self, key: _GroupKey) -> None:
        task = self._flush_tasks.pop(key, None)
        if task is not None:
            task.cancel()

    def _flush(self, key: _GroupKey) -> None:
        group = self._pending.pop(key, None)
        if not group:
            return
        utility, backend = self._specs.pop(key, (None, None))
        # Dedup identical placements across the batch: hot queries
        # collapse to one kernel row each.
        unique: Dict[Tuple[NodeId, ...], int] = {}
        for placements, _ in group:
            for placement in placements:
                if placement not in unique:
                    unique[placement] = len(unique)
        requested = sum(len(entry[0]) for entry in group)
        self.flushes += 1
        self.deduped_placements += requested - len(unique)
        obs.count_many(
            {
                "serve.batch.flushes": 1,
                "serve.batch.requests": len(group),
                "serve.batch.placements": requested,
                "serve.batch.deduped": requested - len(unique),
            }
        )
        if self._dispatch is not None:
            task = asyncio.get_running_loop().create_task(
                self._scatter_dispatch(group, unique, utility, backend)
            )
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._dispatch_tasks.discard)
            return
        assert self._engine is not None
        try:
            totals = self._engine_eval(
                list(unique),
                utility,
                backend,
                requests=len(group),
                deduped=requested - len(unique),
            )
        except Exception as error:  # rapflow: noqa[RAP003] scattered to every awaiting request, which re-raises with full type
            for _, future in group:
                if not future.done():
                    future.set_exception(error)
            return
        for placements, future in group:
            if not future.done():
                future.set_result(
                    [totals[unique[placement]] for placement in placements]
                )

    def _engine_eval(
        self,
        placements: List[Tuple[NodeId, ...]],
        utility: Optional[dict],
        backend: Optional[str],
        requests: int,
        deduped: int,
    ) -> List[float]:
        """One engine kernel call, recorded as an ``engine.evaluate``
        span when a distributed trace is active.

        A flush can serve several coalesced requests; the span parents
        to whichever request's context scheduled the flush (the others
        share the kernel call but not the span), with the coalescing
        tallies in the attrs so the sharing is visible in the tree.
        """
        assert self._engine is not None
        ctx = obs_trace.current()
        if ctx is None:
            return self._engine.evaluate_totals(
                placements, utility=utility, backend=backend
            )
        clock = ctx.recorder.clock
        t_start = clock.now()
        status = "ok"
        try:
            return self._engine.evaluate_totals(
                placements, utility=utility, backend=backend
            )
        except Exception as error:  # rapflow: noqa[RAP003] re-raised verbatim; only the span status is derived
            status = type(error).__name__
            raise
        finally:
            obs_trace.record(
                "engine.evaluate",
                t_start,
                clock.now(),
                {
                    "placements": len(placements),
                    "requests": requests,
                    "deduped": deduped,
                    "status": status,
                },
                context=ctx,
            )

    async def _scatter_dispatch(
        self,
        group: List[_Pending],
        unique: Dict[Tuple[NodeId, ...], int],
        utility: Optional[dict],
        backend: Optional[str],
    ) -> None:
        """Await the async sink for one flush and scatter its totals."""
        assert self._dispatch is not None
        try:
            totals = await self._dispatch(list(unique), utility, backend)
        except Exception as error:  # rapflow: noqa[RAP003] scattered to every awaiting request, which re-raises with full type
            for _, future in group:
                if not future.done():
                    future.set_exception(error)
            return
        for placements, future in group:
            if not future.done():
                future.set_result(
                    [totals[unique[placement]] for placement in placements]
                )

    async def drain(self) -> None:
        """Flush every open batch immediately (graceful-shutdown path)."""
        for key in list(self._flush_tasks):
            self._cancel_timer(key)
        for key in list(self._pending):
            self._flush(key)
        while self._dispatch_tasks:
            outcomes = await asyncio.gather(
                *list(self._dispatch_tasks), return_exceptions=True
            )
            for outcome in outcomes:
                # _scatter_dispatch delivers failures to the awaiting
                # futures; anything surfacing here is a harness bug.
                if isinstance(outcome, Exception):
                    raise outcome

    def stats(self) -> Dict[str, int]:
        """Lifetime batching tallies (for ``/healthz`` and the bench)."""
        return {
            "flushes": self.flushes,
            "requests": self.batched_requests,
            "placements": self.batched_placements,
            "deduped": self.deduped_placements,
            "bypassed": self.bypassed,
        }


__all__ = ["DispatchFn", "MicroBatcher"]
