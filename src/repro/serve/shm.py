"""Shared-memory artifact plane: one compile, one physical copy, N workers.

The fleet's ``ProcessWorker`` used to restore its own ``ScenarioArtifact``
from the npz cache — every worker paid a full deserialize *and* held a
private copy of the CSR columns.  The arrays are immutable after
:func:`~repro.core.kernel.warm_kernel`, so this module maps them into one
named ``multiprocessing.shared_memory`` segment per digest and lets any
number of processes attach zero-copy views:

``ShmArtifactPool``
    Owner-side registry rooted at a manifest directory.  ``publish``
    packs a compiled artifact's seven CSR columns into a single segment
    (name ``rf-<digest prefix>``) and writes a JSON manifest (segment
    name, column table, owner pid, scenario spec).  ``attach`` opens the
    segment read-only and rebuilds numpy views straight over the shared
    buffer — refcounted per process, so repeated attaches are free.
    ``unlink``/``unlink_all`` retire segments deterministically on fleet
    drain; ``sweep`` reclaims segments whose owner died without
    unlinking (manifests record the owner pid).

``ScenarioArtifact.attach`` (in :mod:`repro.serve.artifacts`) completes
the zero-copy restore path: shm views → ``PackedCoverage.from_arrays``
(adoption, no copy) → lazy ``CoverageIndex`` → ``warm_kernel``.  A
worker serving through the numpy kernel then holds private memory only
for the per-incidence utility values — not the coverage arrays.

Lifecycle invariants (tested in ``tests/serve/test_shm.py``):

* attaching processes **never** own the segment: the pool unregisters
  the mapping from ``multiprocessing.resource_tracker`` right after
  attach, so a worker exit (clean or ``SIGKILL``) neither unlinks the
  segment under its siblings nor emits leaked-resource warnings;
* the publishing process keeps its registration, so even if the owner
  crashes without ``unlink_all`` its resource tracker reclaims the
  segments — ``sweep`` then retires the stale manifests.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..errors import ServeArtifactError
from ..graphs.io import _encode_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .artifacts import ScenarioArtifact

PathLike = Union[str, Path]

MANIFEST_FORMAT = "rapflow-shm"
MANIFEST_VERSION = 1

#: Segment names are digest-keyed: two pools publishing the same spec
#: collide on purpose (the arrays are identical), unrelated artifacts
#: never collide, and a leak probe can reconstruct the name from the
#: digest alone.  POSIX shm names are limited (NAME_MAX on /dev/shm),
#: so only a prefix of the sha256 hex digest is embedded.
SEGMENT_PREFIX = "rf-"
_DIGEST_CHARS = 24

#: The published CSR columns, in segment order.  All dtypes are 8-byte
#: wide, so packing them back to back keeps every offset 8-aligned.
_COLUMN_DTYPES: Tuple[Tuple[str, str], ...] = (
    ("indptr", "int64"),
    ("flow_index", "int64"),
    ("detour", "float64"),
    ("position", "int64"),
    ("entry_row", "int64"),
    ("volume", "float64"),
    ("attractiveness", "float64"),
)


def segment_name_for(digest: str) -> str:
    """The shm segment name for an artifact digest."""
    return SEGMENT_PREFIX + digest[:_DIGEST_CHARS]


def segment_exists(name: str) -> bool:
    """Probe whether a named segment currently exists on this host.

    Uses the ``/dev/shm`` filesystem view where available (Linux), and
    falls back to an attach-and-close probe elsewhere.  The probe never
    takes ownership: a fallback attach is unregistered from the
    resource tracker before closing.
    """
    dev_shm = Path("/dev/shm")
    if dev_shm.is_dir():
        return (dev_shm / name).exists()
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    _disown_segment(segment)
    segment.close()
    return True


def _disown_segment(segment: shared_memory.SharedMemory) -> None:
    """Drop a segment from this process's resource tracker.

    ``SharedMemory.__init__`` registers every mapping — owner or not —
    with ``multiprocessing.resource_tracker`` (until 3.13's ``track``
    flag).  An attaching process must not own the lifecycle: without
    this, the *first* attacher to exit would unlink the segment under
    everyone else and log a leaked-resource warning.
    """
    try:
        resource_tracker.unregister(
            getattr(segment, "_name", segment.name), "shared_memory"
        )
    except (KeyError, ValueError):  # pragma: no cover - tracker variance
        pass


def memory_probe() -> Dict[str, object]:
    """Private/shared resident memory of the calling process, in bytes.

    Plain RSS counts shared pages once per process, so it cannot prove
    the "N workers, one copy" claim — ``Private_Clean + Private_Dirty``
    from ``/proc/self/smaps_rollup`` can.  Falls back to ``VmRSS`` from
    ``/proc/self/status`` (reported as private, with ``source`` marking
    the degraded fidelity) and to all-zero off Linux.
    """
    try:
        fields: Dict[str, int] = {}
        with open("/proc/self/smaps_rollup") as handle:
            for line in handle:
                key, _, rest = line.partition(":")
                parts = rest.split()
                if parts and parts[-1] == "kB":
                    fields[key] = int(parts[0]) * 1024
        return {
            "rss_bytes": fields.get("Rss", 0),
            "private_bytes": (
                fields.get("Private_Clean", 0) + fields.get("Private_Dirty", 0)
            ),
            "shared_bytes": (
                fields.get("Shared_Clean", 0) + fields.get("Shared_Dirty", 0)
            ),
            "source": "smaps_rollup",
        }
    except OSError:
        pass
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    rss = int(line.split()[1]) * 1024
                    return {
                        "rss_bytes": rss,
                        "private_bytes": rss,
                        "shared_bytes": 0,
                        "source": "status",
                    }
    except OSError:
        pass
    return {
        "rss_bytes": 0,
        "private_bytes": 0,
        "shared_bytes": 0,
        "source": "unavailable",
    }


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - container uid variance
        return True
    return True


@dataclass(frozen=True)
class ShmColumn:
    """One packed column inside a segment: where it lives and its shape."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int

    def to_json(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "offset": self.offset,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_json(cls, raw: Dict[str, object]) -> "ShmColumn":
        try:
            return cls(
                key=str(raw["key"]),
                dtype=str(raw["dtype"]),
                shape=tuple(int(n) for n in raw["shape"]),  # type: ignore[union-attr]
                offset=int(raw["offset"]),  # type: ignore[arg-type]
                nbytes=int(raw["nbytes"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ServeArtifactError(
                f"malformed shm column entry {raw!r}: {error}"
            ) from None


@dataclass(frozen=True)
class ShmManifest:
    """On-disk description of one published segment.

    ``owner_pid`` is the publisher: ``sweep`` uses it to tell a live
    pool's segments from a crashed one's.  ``meta`` carries everything
    ``ScenarioArtifact.attach`` needs that is not an array — the
    canonical scenario spec, the packed node ids, and the compile
    stats — so the attach path never touches the npz cache.
    """

    digest: str
    segment: str
    nbytes: int
    owner_pid: int
    columns: Tuple[ShmColumn, ...]
    meta: Dict[str, object]

    def to_json(self) -> Dict[str, object]:
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "digest": self.digest,
            "segment": self.segment,
            "nbytes": self.nbytes,
            "owner_pid": self.owner_pid,
            "columns": [column.to_json() for column in self.columns],
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, raw: Dict[str, object]) -> "ShmManifest":
        if not isinstance(raw, dict) or raw.get("format") != MANIFEST_FORMAT:
            raise ServeArtifactError(
                f"not an shm manifest: format={raw.get('format')!r}"
                if isinstance(raw, dict)
                else "shm manifest must be a JSON object"
            )
        if raw.get("version") != MANIFEST_VERSION:
            raise ServeArtifactError(
                f"unsupported shm manifest version {raw.get('version')!r}"
            )
        try:
            columns = tuple(
                ShmColumn.from_json(entry)
                for entry in raw["columns"]  # type: ignore[union-attr]
            )
            meta = raw["meta"]
            if not isinstance(meta, dict):
                raise ServeArtifactError("shm manifest meta must be an object")
            return cls(
                digest=str(raw["digest"]),
                segment=str(raw["segment"]),
                nbytes=int(raw["nbytes"]),  # type: ignore[arg-type]
                owner_pid=int(raw["owner_pid"]),  # type: ignore[arg-type]
                columns=columns,
                meta=meta,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ServeArtifactError(
                f"malformed shm manifest: {error}"
            ) from None


class ShmAttachment:
    """A process-local mapping of one published segment.

    ``arrays`` are read-only numpy views straight over the shared
    buffer — no per-process copy.  Attachments are refcounted by the
    pool; ``close`` is idempotent and tolerates callers that still hold
    views (the mapping then persists until process exit, which is
    harmless: the segment's lifetime is governed by ``unlink``, not by
    mappings).
    """

    def __init__(
        self,
        manifest: ShmManifest,
        segment: shared_memory.SharedMemory,
    ) -> None:
        self.manifest = manifest
        self._segment: Optional[shared_memory.SharedMemory] = segment
        arrays: Dict[str, "np.ndarray"] = {}
        for column in manifest.columns:
            view: "np.ndarray" = np.ndarray(
                column.shape,
                dtype=np.dtype(column.dtype),
                buffer=segment.buf,
                offset=column.offset,
            )
            view.flags.writeable = False
            arrays[column.key] = view
        self.arrays = arrays
        self.refcount = 0

    @property
    def digest(self) -> str:
        """The artifact digest this attachment maps."""
        return self.manifest.digest

    @property
    def nbytes(self) -> int:
        """Total bytes of shared array data mapped by this attachment."""
        return self.manifest.nbytes

    @property
    def closed(self) -> bool:
        """Whether the underlying mapping has been released."""
        return self._segment is None

    def close(self) -> None:
        """Release this mapping (the segment itself stays published)."""
        segment = self._segment
        if segment is None:
            return
        self._segment = None
        self.arrays = {}
        try:
            segment.close()
        except BufferError:
            # A caller still holds views over the buffer: the munmap is
            # deferred to process exit.  Deliberate — invalidating live
            # views would turn a refcount bug into a segfault.
            obs.count("serve.shm.close_deferred")


class ShmArtifactPool:
    """Digest-keyed registry of shared-memory artifact segments.

    One pool instance per process; the *publishing* process owns segment
    lifetimes (``unlink_all`` on drain), attaching processes only map.
    The manifest directory is the rendezvous: publishers write
    ``<root>/<digest>.json``, attachers read it, ``sweep`` reclaims
    entries whose owner died.
    """

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._owned: Dict[str, shared_memory.SharedMemory] = {}
        self._attached: Dict[str, ShmAttachment] = {}

    @property
    def root(self) -> Path:
        """The manifest directory."""
        return self._root

    def _manifest_path(self, digest: str) -> Path:
        return self._root / f"{digest}.json"

    def digests(self) -> List[str]:
        """Digests with a manifest in this pool (sorted)."""
        return sorted(
            path.stem
            for path in self._root.glob("*.json")
            if not path.name.endswith(".tmp")
        )

    def manifest(self, digest: str) -> ShmManifest:
        """The parsed manifest for ``digest`` (raises if unpublished)."""
        path = self._manifest_path(digest)
        try:
            with open(path) as handle:
                raw = json.load(handle)
        except OSError:
            raise ServeArtifactError(
                f"artifact {digest[:12]} is not published in shm pool "
                f"{self._root}"
            ) from None
        except json.JSONDecodeError as error:
            raise ServeArtifactError(
                f"shm manifest for {digest[:12]} is corrupt: {error}"
            ) from None
        return ShmManifest.from_json(raw)

    # ------------------------------------------------------------------
    # owner side
    # ------------------------------------------------------------------
    def publish(self, artifact: "ScenarioArtifact") -> ShmManifest:
        """Map a compiled artifact's CSR columns into a shared segment.

        Idempotent per digest: re-publishing an already-published digest
        reuses the existing segment (the arrays are content-addressed,
        so the bytes are identical by construction).
        """
        digest = artifact.digest
        existing = self._manifest_path(digest)
        if existing.is_file():
            manifest = self.manifest(digest)
            if segment_exists(manifest.segment):
                obs.count("serve.shm.publish_reuses")
                return manifest
            # Stale manifest from a reclaimed segment: fall through and
            # republish over it.
            existing.unlink(missing_ok=True)
        packed = artifact.scenario.coverage.packed()
        sources: Dict[str, "np.ndarray"] = {
            "indptr": packed.indptr,
            "flow_index": packed.flow_index,
            "detour": packed.detour,
            "position": packed.position,
            "entry_row": packed.entry_row,
            "volume": packed.volume,
            "attractiveness": packed.attractiveness,
        }
        columns: List[ShmColumn] = []
        offset = 0
        for key, dtype in _COLUMN_DTYPES:
            source = np.ascontiguousarray(sources[key], dtype=np.dtype(dtype))
            columns.append(
                ShmColumn(
                    key=key,
                    dtype=dtype,
                    shape=tuple(source.shape),
                    offset=offset,
                    nbytes=source.nbytes,
                )
            )
            sources[key] = source
            offset += source.nbytes
        name = segment_name_for(digest)
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(offset, 1)
            )
        except FileExistsError:
            # A segment without a manifest in this pool: an orphan from
            # a publisher killed together with its resource tracker
            # (SIGKILL takes both), or another pool root serving the
            # same digest.  The name is digest-derived and the bytes
            # content-addressed, so adoption is safe: attach, rewrite
            # the columns below (idempotent over a healthy segment,
            # healing over a partially-copied one), take ownership.
            segment = self._adopt_segment(name, offset)
            obs.count("serve.shm.publish_adoptions")
        except OSError as error:
            raise ServeArtifactError(
                f"cannot create shm segment {name} "
                f"({offset} bytes): {error}"
            ) from error
        for column in columns:
            destination: "np.ndarray" = np.ndarray(
                column.shape,
                dtype=np.dtype(column.dtype),
                buffer=segment.buf,
                offset=column.offset,
            )
            destination[...] = sources[column.key]
        manifest = ShmManifest(
            digest=digest,
            segment=name,
            nbytes=offset,
            owner_pid=os.getpid(),
            columns=tuple(columns),
            meta={
                "spec": artifact.spec,
                "stats": artifact.stats,
                "packed_nodes": [_encode_id(node) for node in packed.nodes],
            },
        )
        tmp = existing.with_suffix(".json.tmp")
        try:
            with open(tmp, "w") as handle:
                json.dump(manifest.to_json(), handle)
            os.replace(tmp, existing)
        except OSError as error:
            segment.close()
            segment.unlink()
            raise ServeArtifactError(
                f"cannot write shm manifest for {digest[:12]}: {error}"
            ) from error
        # Keep the owner handle open until unlink: the registration it
        # carries is the crash-cleanup path (the owner's resource
        # tracker reclaims the segment if we die before unlink_all).
        self._owned[digest] = segment
        obs.count("serve.shm.publishes")
        obs.count_many({"serve.shm.published_bytes": offset})
        return manifest

    def _adopt_segment(
        self, name: str, nbytes: int
    ) -> shared_memory.SharedMemory:
        """Take over an existing same-name segment for republishing.

        Attaching registers the mapping with this process's resource
        tracker (the pre-3.13 always-register behavior), which is
        exactly the ownership transfer adoption needs: if we crash, our
        tracker reclaims it.  A segment too small for the columns can
        only be a different packing layout — retire it and create
        fresh.
        """
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            # Vanished between the create attempt and now (a racing
            # sweep or owner exit): the name is free again.
            return shared_memory.SharedMemory(
                name=name, create=True, size=max(nbytes, 1)
            )
        if segment.size < nbytes:
            try:
                resource_tracker.register(
                    getattr(segment, "_name", segment.name), "shared_memory"
                )
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - lost a race
                pass
            segment.close()
            return shared_memory.SharedMemory(
                name=name, create=True, size=max(nbytes, 1)
            )
        return segment

    def unlink(self, digest: str) -> bool:
        """Retire one segment and its manifest; ``True`` if it existed."""
        manifest_path = self._manifest_path(digest)
        segment = self._owned.pop(digest, None)
        name = segment_name_for(digest)
        found = segment is not None
        if segment is None:
            try:
                segment = shared_memory.SharedMemory(name=name)
                found = True
            except FileNotFoundError:
                segment = None
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - defensive
                obs.count("serve.shm.close_deferred")
            try:
                # ``SharedMemory.unlink`` unregisters unconditionally;
                # make sure a registration exists (an earlier disowned
                # attach may have removed it — registrations are
                # deduped by name) so the tracker's books stay clean.
                resource_tracker.register(
                    getattr(segment, "_name", segment.name), "shared_memory"
                )
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - lost a race
                pass
        had_manifest = manifest_path.is_file()
        manifest_path.unlink(missing_ok=True)
        if found or had_manifest:
            obs.count("serve.shm.unlinks")
            return True
        return False

    def unlink_all(self) -> List[str]:
        """Retire every published segment (fleet drain path)."""
        retired = []
        for digest in set(self.digests()) | set(self._owned):
            if self.unlink(digest):
                retired.append(digest)
        return sorted(retired)

    def sweep(self) -> List[str]:
        """Reclaim segments whose owner process is gone.

        Covers the crash case where the owner died *and* its resource
        tracker failed to unlink (or only the stale manifest remains).
        Live owners' segments are left untouched.
        """
        swept = []
        for digest in self.digests():
            if digest in self._owned:
                continue
            try:
                manifest = self.manifest(digest)
            except ServeArtifactError:
                # Unreadable manifest: nobody can attach through it, so
                # retire it along with any matching segment.
                self.unlink(digest)
                swept.append(digest)
                continue
            if _pid_alive(manifest.owner_pid):
                continue
            self.unlink(digest)
            swept.append(digest)
        if swept:
            obs.count_many({"serve.shm.sweeps": len(swept)})
        return sorted(swept)

    # ------------------------------------------------------------------
    # attacher side
    # ------------------------------------------------------------------
    def attach(self, digest: str) -> ShmAttachment:
        """Map a published segment read-only (refcounted per process)."""
        attachment = self._attached.get(digest)
        if attachment is not None and not attachment.closed:
            attachment.refcount += 1
            obs.count("serve.shm.attach_reuses")
            return attachment
        manifest = self.manifest(digest)
        try:
            segment = shared_memory.SharedMemory(name=manifest.segment)
        except FileNotFoundError:
            raise ServeArtifactError(
                f"shm segment {manifest.segment} for {digest[:12]} is gone "
                "(owner unlinked or crashed); re-publish or sweep"
            ) from None
        except OSError as error:
            raise ServeArtifactError(
                f"cannot attach shm segment {manifest.segment}: {error}"
            ) from error
        if digest not in self._owned:
            # The tracker dedups registrations by name, so disowning an
            # attach in the owner process would also drop the owner's
            # crash-cleanup registration.
            _disown_segment(segment)
        if segment.size < manifest.nbytes:
            segment.close()
            raise ServeArtifactError(
                f"shm segment {manifest.segment} is {segment.size} bytes "
                f"but the manifest declares {manifest.nbytes}"
            )
        attachment = ShmAttachment(manifest, segment)
        attachment.refcount = 1
        self._attached[digest] = attachment
        obs.count("serve.shm.attaches")
        return attachment

    def detach(self, digest: str) -> None:
        """Drop one reference; the mapping closes at refcount zero."""
        attachment = self._attached.get(digest)
        if attachment is None:
            return
        attachment.refcount -= 1
        if attachment.refcount <= 0:
            del self._attached[digest]
            attachment.close()
            obs.count("serve.shm.detaches")

    def detach_all(self) -> None:
        """Release every mapping held by this process."""
        for digest in list(self._attached):
            attachment = self._attached.pop(digest)
            attachment.refcount = 0
            attachment.close()

    def attached_digests(self) -> List[str]:
        """Digests currently mapped by this process (sorted)."""
        return sorted(
            digest
            for digest, attachment in self._attached.items()
            if not attachment.closed
        )


__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "SEGMENT_PREFIX",
    "ShmArtifactPool",
    "ShmAttachment",
    "ShmColumn",
    "ShmManifest",
    "memory_probe",
    "segment_exists",
    "segment_name_for",
]
