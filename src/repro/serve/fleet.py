"""Fault-tolerant serving fleet: one front, N supervised workers.

One :class:`PlacementFleet` runs a routing front (same hand-rolled
asyncio HTTP stack as :mod:`repro.serve.server`) over worker replicas,
each an independent :class:`~repro.serve.server.PlacementServer`
serving a content-addressed artifact.  Requests are routed by scenario
digest: the fleet carries one or more **shards** (digest → worker
group, the GreeDi-style partition topology from the billboard-placement
companion paper), a client addresses a non-default shard with the
``X-Rapflow-Digest`` header, and every worker reply must carry its
shard's digest — a mismatched digest is treated as a corrupt reply,
never returned to the caller.

With ``front_batch_window > 0`` the front also runs one
:class:`~repro.serve.batching.MicroBatcher` per shard in *dispatch*
mode: concurrent ``evaluate`` requests are deduplicated and coalesced
**before** replica routing, so identical hot queries that would have
landed on different replicas collapse to one backend call per window —
per-shard dedup, not per-worker.

The fleet stays alive under injected failure through four mechanisms:

* **worker lifecycle** — the supervisor heartbeats every worker's
  ``/healthz`` on the injectable :class:`~repro.obs.clock.Clock`;
  ``max_missed`` consecutive missed probes (crash *or* stall — a wedged
  event loop misses probes exactly like a dead process) mark the worker
  down and schedule a respawn with exponential backoff and seeded
  jitter.  A per-worker circuit breaker counts respawns inside a sliding
  window and **ejects** a flapping worker instead of respawning it
  forever.
* **request resilience** — the front forwards its remaining deadline
  budget via ``X-Rapflow-Deadline`` (a worker never works longer than
  the front will wait), retries idempotent kinds (``evaluate`` /
  ``top_gains``) on other replicas with backoff + jitter, and can hedge:
  after a p95-based delay a second copy of the request races on another
  replica and the first reply wins.
* **graceful degradation** — every good idempotent reply feeds a bounded
  front-side LRU; when no replica can answer, the front replays the
  cached reply marked ``"degraded": true`` instead of failing, and only
  answers 503 when it has nothing cached.
* **tiered load shedding** — admission is budgeted per request kind (see
  :data:`SHED_TIERS`), so under overload cheap ``evaluate`` queries
  survive longer than expensive ``place`` runs; shedding state is
  exported as obs gauges and in the front's ``/healthz``.

Workers come in two interchangeable shapes: :class:`LocalWorker` (an
in-process :class:`~repro.serve.testing.ServerThread` — deterministic
and fast, used by tests and the chaos harness, with ``kill`` / stall
hooks) and :class:`ProcessWorker` (a real ``python -m repro serve``
subprocess sharing the artifact cache directory, used by
``rapflow serve --workers N``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import random
import subprocess
import sys
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .. import obs
from ..errors import ObsError, ServeRequestError, ServeWorkerError
from ..graphs import NodeId
from ..obs import trace as obs_trace
from ..obs.clock import Clock, SystemClock
from ..obs.metrics import LatencyHistogram
from ..obs.slo import SLOConfig, SLOTracker
from .batching import MicroBatcher
from .engine import decode_site, encode_site
from .server import (
    DEADLINE_HEADER,
    DIGEST_HEADER,
    close_quietly,
    read_http_request,
    sanitizer_health,
    write_json_response,
)
from .testing import ServerThread

# DIGEST_HEADER (re-exported from .server): a client addresses a
# specific shard (scenario digest) behind a multi-shard front with it.
# Absent, the front's default shard answers; an unknown digest is a 404
# (the front serves no such shard).

#: Request kinds safe to retry/hedge: re-executing them cannot change
#: state anywhere (evaluate and top_gains are pure reads; place is too,
#: but an expensive one — re-running it under overload amplifies load).
IDEMPOTENT_KINDS = frozenset({"evaluate", "top_gains"})

#: Tiered admission budgets, as fractions of the front's
#: ``max_inflight``: under overload the cheap read path keeps its full
#: budget while expensive optimization runs are shed first — the same
#: cost-aware prioritization the companion scheduling formulation's
#: admission policy (Algorithm 5, *Scheduling Advertisement Delivery in
#: Vehicular Networks*) applies to delivery slots.
SHED_TIERS: Dict[str, float] = {
    "evaluate": 1.0,
    "what_if": 0.5,
    "top_gains": 0.5,
    "place": 0.25,
}

#: Latency samples retained per worker (p95/p99 estimation).
_LATENCY_WINDOW = 256

#: Validated evaluate bodies memoized on the front (LRU).  Hot
#: workloads re-send byte-identical bodies; a hit skips JSON parsing
#: and placement validation on the front's single event loop.
PARSE_CACHE_ENTRIES = 512


@dataclass
class RetryPolicy:
    """Front-side retry/hedging knobs for idempotent requests.

    ``retries`` counts *extra* attempts across replicas; ``backoff`` /
    ``backoff_cap`` shape the exponential sleep between attempts,
    ``jitter`` the randomized fraction of it (seeded at the fleet
    level).  ``hedge=True`` races a second replica after
    ``hedge_delay`` seconds — or, once enough samples exist, after the
    observed p95 fleet latency — and takes whichever reply lands first.
    """

    retries: int = 2
    backoff: float = 0.02
    backoff_cap: float = 0.5
    jitter: float = 0.5
    hedge: bool = False
    hedge_delay: float = 0.05

    def validate(self) -> None:
        if self.retries < 0:
            raise ServeRequestError(
                f"retries must be >= 0, got {self.retries}"
            )
        if not (0.0 <= self.jitter <= 1.0):
            raise ServeRequestError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )


@dataclass
class FleetConfig:
    """Supervision and admission knobs for one :class:`PlacementFleet`.

    ``workers`` counts replicas **per shard**.  The ``front_*`` knobs
    control the front-side per-shard micro-batcher:
    ``front_batch_window=0`` (the default) disables it — per-worker
    batching inside each :class:`~repro.serve.server.PlacementServer`
    still applies — while a positive window coalesces and deduplicates
    concurrent ``evaluate`` requests across replicas before routing.

    ``slo`` carries the availability/latency targets the front's
    burn-rate accounting (``/healthz`` → ``slo``) runs against;
    ``trace_dir`` opts the front into distributed tracing (its
    ``front.jsonl`` segment lands there — workers need their own
    ``trace_dir`` to contribute worker spans).
    """

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 64
    timeout: float = 30.0
    heartbeat_interval: float = 0.1
    heartbeat_timeout: float = 0.5
    max_missed: int = 2
    respawn_backoff: float = 0.05
    respawn_backoff_cap: float = 2.0
    breaker_threshold: int = 5
    breaker_window: float = 30.0
    degraded_cache_size: int = 256
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0
    front_batch_window: float = 0.0
    front_max_batch: int = 256
    front_bypass: int = 4
    slo: SLOConfig = field(default_factory=SLOConfig)
    trace_dir: Optional[Union[str, Path]] = None

    def validate(self) -> None:
        if self.workers < 1:
            raise ServeRequestError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.front_batch_window < 0:
            raise ServeRequestError(
                "front_batch_window must be >= 0, got "
                f"{self.front_batch_window}"
            )
        if self.front_max_batch < 1:
            raise ServeRequestError(
                f"front_max_batch must be >= 1, got {self.front_max_batch}"
            )
        if self.front_bypass < 0:
            raise ServeRequestError(
                f"front_bypass must be >= 0, got {self.front_bypass}"
            )
        if self.max_inflight < 1:
            raise ServeRequestError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ServeRequestError("heartbeat knobs must be > 0")
        if self.max_missed < 1:
            raise ServeRequestError(
                f"max_missed must be >= 1, got {self.max_missed}"
            )
        if self.breaker_threshold < 1:
            raise ServeRequestError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        self.retry.validate()
        try:
            self.slo.validate()
        except ObsError as error:
            raise ServeRequestError(f"invalid SLO config: {error}") from None


# ----------------------------------------------------------------------
# workers
# ----------------------------------------------------------------------
class LocalWorker:
    """In-process worker: a :class:`ServerThread` behind the interface.

    ``engine_factory`` builds a fresh engine per (re)spawn, so a
    respawned worker starts from clean state the way a restarted process
    would.  Chaos hooks (:meth:`kill`, :meth:`inject_stall`) pass
    through to the thread harness.
    """

    def __init__(
        self,
        worker_id: str,
        engine_factory: Callable[[], object],
        **server_kwargs: object,
    ) -> None:
        self.worker_id = worker_id
        self._engine_factory = engine_factory
        self._server_kwargs = server_kwargs
        self._handle: Optional[ServerThread] = None

    def start(self) -> None:
        """Spawn the server thread (blocking until the port is bound)."""
        engine = self._engine_factory()
        kwargs = dict(self._server_kwargs)
        kwargs.setdefault("worker_label", self.worker_id)
        self._handle = ServerThread(engine, **kwargs)
        self._handle.__enter__()

    def stop(self) -> None:
        """Graceful stop (drain, then join)."""
        if self._handle is not None:
            self._handle.stop()
            self._handle = None

    def kill(self) -> None:
        """Abrupt stop — the in-process ``SIGKILL`` analogue."""
        if self._handle is not None:
            self._handle.kill()
            self._handle = None

    def inject_stall(self, seconds: float) -> None:
        """Wedge the worker's event loop for ``seconds`` (chaos hook)."""
        if self._handle is None:
            raise ServeWorkerError(
                f"worker {self.worker_id} is not running"
            )
        self._handle.inject_stall(seconds)

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` of the running worker."""
        if self._handle is None:
            raise ServeWorkerError(
                f"worker {self.worker_id} is not running"
            )
        return self._handle.server.host, self._handle.port


class ProcessWorker:
    """Subprocess worker: ``python -m repro serve`` on an ephemeral port.

    The child announces its bound address through ``--ready-file``; the
    parent pre-compiles the artifact into the shared ``--cache-dir``
    before spawning, so every child disk-loads the same digest instead
    of recompiling.  The waiting loop uses an injectable sleeper and the
    injected clock (RAP002: the serve layer never calls the wall clock
    directly).
    """

    def __init__(
        self,
        worker_id: str,
        serve_args: Sequence[str],
        ready_dir: Union[str, Path],
        start_timeout: float = 60.0,
        clock: Optional[Clock] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.worker_id = worker_id
        self._serve_args = list(serve_args)
        self._ready_dir = Path(ready_dir)
        self._start_timeout = start_timeout
        self._clock: Clock = clock if clock is not None else SystemClock()
        self._sleep = sleep if sleep is not None else time.sleep
        self._process: Optional[subprocess.Popen] = None
        self._address: Optional[Tuple[str, int]] = None

    def start(self) -> None:
        """Spawn the subprocess and wait for its ready file."""
        ready = self._ready_dir / f"{self.worker_id}.ready"
        if ready.exists():
            ready.unlink()
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            *self._serve_args,
            "--port",
            "0",
            "--ready-file",
            str(ready),
            "--worker-label",
            self.worker_id,
        ]
        self._process = subprocess.Popen(
            argv,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = self._clock.now() + self._start_timeout
        while True:
            if ready.exists():
                text = ready.read_text().strip()
                if text:
                    host, port = text.split()
                    self._address = (host, int(port))
                    return
            if self._process.poll() is not None:
                raise ServeWorkerError(
                    f"worker {self.worker_id} exited with code "
                    f"{self._process.returncode} before binding"
                )
            if self._clock.now() > deadline:
                self._process.kill()
                raise ServeWorkerError(
                    f"worker {self.worker_id} did not become ready within "
                    f"{self._start_timeout:g}s"
                )
            self._sleep(0.02)

    def stop(self) -> None:
        """Graceful stop: SIGTERM (the server drains), then wait."""
        if self._process is None:
            return
        self._process.terminate()
        try:
            self._process.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            self._process.kill()
            self._process.wait()
        self._process = None

    def kill(self) -> None:
        """SIGKILL — no drain."""
        if self._process is None:
            return
        self._process.kill()
        self._process.wait()
        self._process = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` announced through the ready file."""
        if self._address is None:
            raise ServeWorkerError(
                f"worker {self.worker_id} is not running"
            )
        return self._address


class _WorkerSlot:
    """Supervisor bookkeeping for one worker replica.

    ``index`` is fleet-global (stable across shards), ``replica`` is the
    shard-local position handed to the factory, ``digest`` names the
    shard the replica serves, and ``factory`` is kept so respawns build
    a replica of the *same* shard.
    """

    def __init__(
        self,
        index: int,
        worker: object,
        digest: str,
        replica: int,
        factory: Callable[[int], object],
    ) -> None:
        self.index = index
        self.worker = worker
        self.digest = digest
        self.replica = replica
        self.factory = factory
        self.state = "starting"  # starting | up | down | respawning | ejected
        self.missed = 0
        self.respawns = 0
        self.respawn_times: Deque[float] = deque()
        self.backoff_attempt = 0
        self.latencies: Deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self.inflight = 0
        self.last_error: Optional[str] = None
        #: Selected fields of the worker's last healthy ``/healthz``
        #: reply (restore provenance, batching tallies) — the front's
        #: window into per-worker memory/attach accounting.
        self.last_health: Optional[Dict[str, object]] = None

    @property
    def worker_id(self) -> str:
        return getattr(self.worker, "worker_id", f"w{self.index}")

    def percentile(self, fraction: float) -> Optional[float]:
        """Latency percentile over the recent window (None = no data)."""
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank]

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.worker_id,
            "digest": self.digest,
            "state": self.state,
            "missed": self.missed,
            "respawns": self.respawns,
            "inflight": self.inflight,
            "latency_samples": len(self.latencies),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "last_error": self.last_error,
            "health": self.last_health,
        }


class _ShardAnswer(ServeWorkerError):
    """A non-200 shard answer tunnelled through the front batcher.

    The batcher's dispatch callable can only return totals or raise;
    this carries the exact ``(status, payload)`` the retry path
    produced, so every coalesced request in the flush answers with it.
    """

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        super().__init__(str(payload.get("error", f"status {status}")))
        self.status = status
        self.payload = payload


# ----------------------------------------------------------------------
# the fleet
# ----------------------------------------------------------------------
class PlacementFleet:
    """Routing front + supervisor over replicated, digest-keyed shards.

    Parameters
    ----------
    worker_factory:
        ``worker_factory(index) -> worker`` builds a replica of the
        default shard; it is called again on every respawn, so each
        respawn is a genuinely fresh worker.  Ignored when ``shards``
        is given.
    digest:
        The default shard's scenario digest — the shard that answers
        requests carrying no ``X-Rapflow-Digest`` header.  Every worker
        reply must echo its shard's digest; replies that do not are
        dropped as corrupt and retried.
    config:
        Supervision/admission knobs (:class:`FleetConfig`);
        ``config.workers`` replicas spawn per shard.
    clock:
        Injected time source for heartbeat deadlines and latency
        accounting (RAP002).
    shards:
        Optional full shard map ``{digest: worker_factory}`` for a
        multi-shard front; must contain ``digest``.  Omitted, the fleet
        serves the single shard ``{digest: worker_factory}``.
    """

    def __init__(
        self,
        worker_factory: Optional[Callable[[int], object]],
        digest: str,
        config: Optional[FleetConfig] = None,
        clock: Optional[Clock] = None,
        shards: Optional[Dict[str, Callable[[int], object]]] = None,
    ) -> None:
        if shards:
            self._shards: Dict[str, Callable[[int], object]] = dict(shards)
            if digest not in self._shards:
                raise ServeRequestError(
                    f"default digest {digest[:12]} is not one of the "
                    f"{len(self._shards)} configured shards"
                )
        else:
            if worker_factory is None:
                raise ServeRequestError(
                    "either worker_factory or shards must be given"
                )
            self._shards = {digest: worker_factory}
        self._digest = digest
        self._config = config if config is not None else FleetConfig()
        self._config.validate()
        self._clock: Clock = clock if clock is not None else SystemClock()
        self._rng = random.Random(self._config.seed)
        self._slots: List[_WorkerSlot] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._supervisor: Optional["asyncio.Task[None]"] = None
        self._respawn_tasks: List["asyncio.Task[None]"] = []
        self._front_batchers: Dict[str, MicroBatcher] = {}
        #: Hot-body parse memo: ``(digest, raw body)`` of an already
        #: validated evaluate request → its decoded ``(placements,
        #: utility, backend)``.  Hot workloads re-send identical bodies;
        #: a hit skips JSON parsing, validation, and site decoding on
        #: the front's single loop (a large share of per-request cost at
        #: high concurrency).  Purely a parse cache — answers still flow
        #: through the batcher and workers every time.
        self._parse_cache: "OrderedDict[Tuple[str, bytes], Tuple[List[List[NodeId]], Optional[dict], Optional[str]]]" = (
            OrderedDict()
        )
        self._draining = False
        self._inflight = 0
        self._next_slot = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._swaps = 0
        self._last_swap: Optional[Dict[str, object]] = None
        self._degraded_cache: "OrderedDict[str, Dict[str, object]]" = (
            OrderedDict()
        )
        self.shed: Dict[str, int] = {kind: 0 for kind in SHED_TIERS}
        self.served = 0
        self.retries = 0
        self.hedges = 0
        self.degraded = 0
        self.corrupt_detected = 0
        self.rejected = 0
        self.shard_served: Dict[str, int] = {
            shard: 0 for shard in self._shards
        }
        self._tracer: Optional[obs_trace.TraceRecorder] = None
        if self._config.trace_dir is not None:
            self._tracer = obs_trace.TraceRecorder(
                Path(self._config.trace_dir) / "front.jsonl",
                role="front",
                clock=self._clock,
            )
        #: Monotone per-front request counter feeding the seeded trace
        #: ids (seed + index — deterministic, wall-clock free).
        self._trace_index = 0
        self._metrics = LatencyHistogram()
        self._slo = SLOTracker(self._config.slo, self._clock)

    # -- lifecycle ------------------------------------------------------
    @property
    def digest(self) -> str:
        """The default shard's scenario digest."""
        return self._digest

    @property
    def shard_digests(self) -> List[str]:
        """Every digest this front routes (default shard first)."""
        ordered = [self._digest]
        ordered.extend(
            shard for shard in self._shards if shard != self._digest
        )
        return ordered

    @property
    def config(self) -> FleetConfig:
        """The fleet's configuration."""
        return self._config

    @property
    def port(self) -> int:
        """The front's bound port (valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServeRequestError("fleet front is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def host(self) -> str:
        """The front's bind host."""
        return self._config.host

    async def start(self) -> None:
        """Spawn every worker, bind the front, start the supervisor."""
        from ..devtools import sanitize  # local: opt-in tooling, lazy

        sanitize.install_async_if_enabled()
        loop = asyncio.get_running_loop()
        self._loop = loop
        spawns = []
        index = 0
        for shard in self.shard_digests:
            factory = self._shards[shard]
            for replica in range(self._config.workers):
                slot = _WorkerSlot(
                    index, factory(replica), shard, replica, factory
                )
                index += 1
                self._slots.append(slot)
                spawns.append(loop.run_in_executor(None, slot.worker.start))
        results = await asyncio.gather(*spawns, return_exceptions=True)
        for slot, result in zip(self._slots, results):
            if isinstance(result, BaseException):
                slot.state = "down"
                obs.count("fleet.spawn_failures")
            else:
                slot.state = "up"
        for shard in self.shard_digests:
            if not any(
                slot.state == "up"
                for slot in self._slots
                if slot.digest == shard
            ):
                raise ServeWorkerError(
                    f"no worker came up for shard {shard[:12]} at fleet start"
                )
        if self._config.front_batch_window > 0:
            self._front_batchers = {
                shard: MicroBatcher(
                    dispatch=self._shard_dispatch(shard),
                    window=self._config.front_batch_window,
                    max_batch=self._config.front_max_batch,
                    bypass_threshold=self._config.front_bypass,
                )
                for shard in self.shard_digests
            }
        self._server = await asyncio.start_server(
            self._serve_connection, self._config.host, self._config.port
        )
        self._supervisor = loop.create_task(self._supervise())

    async def shutdown(self) -> None:
        """Stop the supervisor, close the front, stop every worker."""
        self._draining = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
        for task in self._respawn_tasks:
            task.cancel()
        if self._respawn_tasks:
            # CancelledError is not an Exception, so the cancellations we
            # just requested pass the filter; anything else is a respawn
            # path failure that must not vanish into the drain.
            outcomes = await asyncio.gather(
                *self._respawn_tasks, return_exceptions=True
            )
            for outcome in outcomes:
                if isinstance(outcome, Exception):
                    obs.count("fleet.shutdown_errors")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for batcher in self._front_batchers.values():
            await batcher.drain()
        loop = asyncio.get_running_loop()
        stops = [
            loop.run_in_executor(None, slot.worker.stop)
            for slot in self._slots
            if slot.state in ("up", "starting")
        ]
        if stops:
            outcomes = await asyncio.gather(*stops, return_exceptions=True)
            for outcome in outcomes:
                if isinstance(outcome, Exception):
                    obs.count("fleet.shutdown_errors")
        from ..devtools import sanitize  # local: opt-in tooling, lazy

        sanitize.check_loop_shutdown("fleet.shutdown")

    def worker_handle(self, index: int) -> object:
        """The live worker in slot ``index`` (chaos-harness hook).

        Respawns replace the slot's worker object, so callers must not
        cache the handle across failures.
        """
        return self._slots[index].worker

    # -- hot swap -------------------------------------------------------
    async def swap_default_shard(
        self,
        digest: str,
        worker_factory: Optional[Callable[[int], object]] = None,
        *,
        retire_old: bool = True,
        drain_timeout: float = 30.0,
    ) -> Dict[str, object]:
        """Atomically make ``digest`` the default shard, draining the old.

        The sequence is: spawn the new shard's replicas (unless the
        digest already has a shard), wait until at least one is up, flip
        ``self._digest`` — a single assignment on the event loop, so
        every request that has not yet read the default routes to the
        new shard while requests already in flight finish against the
        old one — then, with ``retire_old``, wait for the old shard's
        in-flight requests and batcher to drain and stop its workers.
        No request is ever dropped: each one serves against whichever
        shard it was routed to when it arrived.

        Must run on the fleet's event loop; from another thread use
        :meth:`request_swap`.
        """
        if self._draining:
            raise ServeRequestError("cannot swap shards while draining")
        old = self._digest
        if digest == old:
            return {"from": old, "to": digest, "seconds": 0.0, "spawned": 0}
        started = self._clock.now()
        loop = asyncio.get_running_loop()
        spawned = 0
        with obs.span("fleet.swap", old=old[:12], new=digest[:12]):
            if digest not in self._shards:
                if worker_factory is None:
                    raise ServeRequestError(
                        f"shard {digest[:12]} is unknown and no "
                        "worker_factory was given"
                    )
                new_slots: List[_WorkerSlot] = []
                spawns = []
                base = max(
                    (slot.index for slot in self._slots), default=-1
                ) + 1
                for replica in range(self._config.workers):
                    slot = _WorkerSlot(
                        base + replica,
                        worker_factory(replica),
                        digest,
                        replica,
                        worker_factory,
                    )
                    new_slots.append(slot)
                    spawns.append(
                        loop.run_in_executor(None, slot.worker.start)
                    )
                results = await asyncio.gather(
                    *spawns, return_exceptions=True
                )
                for slot, result in zip(new_slots, results):
                    if isinstance(result, BaseException):
                        slot.state = "down"
                        obs.count("fleet.spawn_failures")
                    else:
                        slot.state = "up"
                        spawned += 1
                if not any(slot.state == "up" for slot in new_slots):
                    # Failed swap leaves the fleet exactly as it was.
                    stops = [
                        loop.run_in_executor(None, slot.worker.stop)
                        for slot in new_slots
                        if slot.state == "up"
                    ]
                    if stops:
                        outcomes = await asyncio.gather(
                            *stops, return_exceptions=True
                        )
                        for outcome in outcomes:
                            if isinstance(outcome, Exception):
                                obs.count("fleet.swap_stop_errors")
                    raise ServeWorkerError(
                        f"no worker came up for incoming shard {digest[:12]}"
                    )
                self._slots.extend(new_slots)
                self._shards[digest] = worker_factory
                self.shard_served.setdefault(digest, 0)
                if self._config.front_batch_window > 0:
                    self._front_batchers[digest] = MicroBatcher(
                        dispatch=self._shard_dispatch(digest),
                        window=self._config.front_batch_window,
                        max_batch=self._config.front_max_batch,
                        bypass_threshold=self._config.front_bypass,
                    )
            # The flip: a single assignment on the event loop.  Requests
            # that resolved their digest before this instant finish on
            # the old shard; everything after routes to the new one.
            self._digest = digest
            obs.count("fleet.swaps")
            if retire_old:
                await self._retire_shard(old, drain_timeout)
        seconds = self._clock.now() - started
        self._swaps += 1
        self._last_swap = {
            "from": old,
            "to": digest,
            "seconds": seconds,
            "spawned": spawned,
            "retired": retire_old,
        }
        return dict(self._last_swap)

    async def _retire_shard(self, digest: str, drain_timeout: float) -> None:
        """Drain and stop one non-default shard's workers.

        Waits for in-flight requests against the shard to finish (the
        flip already diverted new traffic), flushes its front batcher,
        stops its workers, and drops its routing entry — requests still
        addressing the digest explicitly get a clean 404 afterwards.
        """
        if digest == self._digest or digest not in self._shards:
            return
        deadline = self._clock.now() + drain_timeout
        old_slots = [slot for slot in self._slots if slot.digest == digest]
        while any(slot.inflight > 0 for slot in old_slots):
            if self._clock.now() >= deadline:
                obs.count("fleet.swap_drain_timeouts")
                break
            await asyncio.sleep(0.005)
        batcher = self._front_batchers.pop(digest, None)
        if batcher is not None:
            await batcher.drain()
        loop = asyncio.get_running_loop()
        stops = [
            loop.run_in_executor(None, slot.worker.stop)
            for slot in old_slots
            if slot.state in ("up", "starting")
        ]
        if stops:
            outcomes = await asyncio.gather(*stops, return_exceptions=True)
            for outcome in outcomes:
                if isinstance(outcome, Exception):
                    obs.count("fleet.swap_stop_errors")
        self._slots = [
            slot for slot in self._slots if slot.digest != digest
        ]
        del self._shards[digest]
        for key in [
            key for key in self._parse_cache if key[0] == digest
        ]:
            del self._parse_cache[key]
        obs.count("fleet.shards_retired")

    def request_swap(
        self,
        digest: str,
        worker_factory: Optional[Callable[[int], object]] = None,
        *,
        retire_old: bool = True,
        drain_timeout: float = 30.0,
    ) -> "concurrent.futures.Future[Dict[str, object]]":
        """Thread-safe :meth:`swap_default_shard` (refresher entry point).

        Schedules the swap on the fleet's event loop and returns a
        ``concurrent.futures.Future`` resolving to the swap record.
        """
        if self._loop is None:
            raise ServeRequestError("fleet front is not started")
        return asyncio.run_coroutine_threadsafe(
            self.swap_default_shard(
                digest,
                worker_factory,
                retire_old=retire_old,
                drain_timeout=drain_timeout,
            ),
            self._loop,
        )

    # -- supervision ----------------------------------------------------
    async def _supervise(self) -> None:
        while True:
            await asyncio.sleep(self._config.heartbeat_interval)
            probes = [
                self._probe(slot)
                for slot in self._slots
                if slot.state == "up"
            ]
            if probes:
                # _probe handles its own failures; an exception landing
                # here is a supervisor bug, and silently eating it would
                # leave workers unsupervised with no trace.
                outcomes = await asyncio.gather(
                    *probes, return_exceptions=True
                )
                for outcome in outcomes:
                    if isinstance(outcome, Exception):
                        obs.count("fleet.supervisor_errors")

    async def _probe(self, slot: _WorkerSlot) -> None:
        try:
            host, port = slot.worker.address
            status, payload = await asyncio.wait_for(
                _http_exchange(host, port, "GET", "/healthz", None, {}),
                self._config.heartbeat_timeout,
            )
            healthy = status == 200 and payload.get("digest") == slot.digest
            if healthy:
                slot.last_health = {
                    "restore": payload.get("restore"),
                    "batching": payload.get("batching"),
                }
        except (
            OSError,
            asyncio.TimeoutError,
            ServeWorkerError,
            ValueError,
        ) as error:
            healthy = False
            slot.last_error = f"{type(error).__name__}: {error}"
            obs.count(f"fleet.probe_errors.{type(error).__name__}")
        if healthy:
            slot.missed = 0
            return
        slot.missed += 1
        obs.count("fleet.probe_misses")
        if slot.missed >= self._config.max_missed and slot.state == "up":
            self._declare_down(slot)

    def _declare_down(self, slot: _WorkerSlot) -> None:
        slot.state = "down"
        obs.count("fleet.workers_down")
        now = self._clock.now()
        window_start = now - self._config.breaker_window
        while slot.respawn_times and slot.respawn_times[0] < window_start:
            slot.respawn_times.popleft()
        if len(slot.respawn_times) >= self._config.breaker_threshold:
            # Circuit breaker: this worker keeps dying faster than the
            # window allows — stop feeding it respawns.
            slot.state = "ejected"
            obs.count("fleet.workers_ejected")
            return
        slot.state = "respawning"
        task = asyncio.get_running_loop().create_task(self._respawn(slot))
        self._respawn_tasks.append(task)
        self._respawn_tasks = [
            pending for pending in self._respawn_tasks if not pending.done()
        ]

    async def _respawn(self, slot: _WorkerSlot) -> None:
        delay = min(
            self._config.respawn_backoff_cap,
            self._config.respawn_backoff * (2.0 ** slot.backoff_attempt),
        )
        delay *= 0.5 + 0.5 * self._rng.random()  # seeded de-sync jitter
        slot.backoff_attempt += 1
        await asyncio.sleep(delay)
        loop = asyncio.get_running_loop()
        # Reap whatever is left of the old worker before starting anew.
        await loop.run_in_executor(None, slot.worker.kill)
        slot.worker = slot.factory(slot.replica)
        try:
            await loop.run_in_executor(None, slot.worker.start)
        except Exception:  # rapflow: noqa[RAP003] any spawn failure re-enters the down path for another backoff round
            obs.count("fleet.spawn_failures")
            slot.missed = 0
            if not self._draining:
                self._declare_down(slot)
            return
        slot.state = "up"
        slot.missed = 0
        slot.backoff_attempt = 0
        slot.respawns += 1
        slot.respawn_times.append(self._clock.now())
        obs.count("fleet.respawns")

    # -- front HTTP -----------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                parsed = await read_http_request(reader)
                if parsed is None:
                    break
                method, path, headers, body, keep_alive = parsed
                status, payload = await self._dispatch(
                    method, path, headers, body
                )
                extra = None
                if status in (429, 503):
                    extra = {"Retry-After": "0.05"}
                await write_json_response(
                    writer, status, payload, keep_alive, extra
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError) as error:
            obs.count(f"fleet.conn_aborts.{type(error).__name__}")
        finally:
            await close_quietly(writer, where="fleet")

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, self.healthz()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}
            return 200, await self.metrics_doc()
        if path != "/query":
            return 404, {"error": f"unknown path {path!r}"}
        if method != "POST":
            return 405, {"error": "query is POST-only"}
        t_start = self._clock.now()
        if self._tracer is None:
            status, payload = await self._dispatch_query(headers, body)
            duration = self._clock.now() - t_start
        else:
            # Root span: a seeded-deterministic trace id (fleet seed +
            # request counter), activated on the context variable so
            # every forward attempt below parents to it — including
            # the parse-cache fast path and front-batched flushes.
            trace_id = obs_trace.make_trace_id(
                self._config.seed, self._trace_index
            )
            self._trace_index += 1
            span_id = self._tracer.next_span_id()
            token = obs_trace.activate(
                obs_trace.TraceContext(trace_id, span_id, self._tracer)
            )
            try:
                status, payload = await self._dispatch_query(headers, body)
            finally:
                obs_trace.deactivate(token)
            t_end = self._clock.now()
            duration = t_end - t_start
            attrs: Dict[str, object] = {"status": status}
            if payload.get("degraded"):
                attrs["degraded"] = True
            self._tracer.span(
                trace_id, span_id, None, "front.request", t_start, t_end,
                attrs,
            )
            # Clients (and the chaos harness) can map every reply to
            # its merged trace tree.
            payload["trace_id"] = trace_id
        self._metrics.observe(duration)
        # Availability counts servable outcomes: shedding (429) is
        # policy, not failure — only 5xx burns the error budget.
        self._slo.record(ok=status < 500, duration=duration)
        return status, payload

    async def _dispatch_query(
        self, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        if self._draining:
            self.rejected += 1
            return 503, {"error": "fleet is draining", "retryable": True}
        digest = headers.get(DIGEST_HEADER, self._digest)
        if digest not in self._shards:
            obs.count("fleet.unknown_shard")
            return 404, {
                "error": f"this front serves no shard {digest[:16]}"
            }
        parsed = self._parse_cache.get((digest, body))
        if parsed is not None:
            # A previously validated evaluate body, byte-identical:
            # straight to the batcher, no JSON or decode work.
            self._parse_cache.move_to_end((digest, body))
            batcher = self._front_batchers.get(digest)
            if batcher is not None:
                obs.count("fleet.parse_cache.hits")
                shed = self._admit("evaluate")
                if shed is not None:
                    return shed
                self._inflight += 1
                try:
                    return await self._front_evaluate_parsed(
                        batcher, parsed, digest
                    )
                finally:
                    self._inflight -= 1
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"request body is not valid JSON: {error}"}
        if not isinstance(request, dict):
            return 400, {"error": "request body must be a JSON object"}
        kind = str(request.get("kind", ""))
        shed = self._admit(kind)
        if shed is not None:
            return shed
        self._inflight += 1
        try:
            batcher = self._front_batchers.get(digest)
            if batcher is not None and kind == "evaluate":
                return await self._front_evaluate(
                    batcher, request, digest, body
                )
            return await self._answer(kind, request, body, digest)
        finally:
            self._inflight -= 1

    def _admit(
        self, kind: str
    ) -> Optional[Tuple[int, Dict[str, object]]]:
        """Tiered admission: expensive kinds are shed first under load."""
        tier = SHED_TIERS.get(kind, min(SHED_TIERS.values()))
        budget = max(1, int(self._config.max_inflight * tier))
        if self._inflight < budget:
            return None
        self.shed[kind] = self.shed.get(kind, 0) + 1
        self.rejected += 1
        obs.count(f"fleet.shed.{kind or 'unknown'}")
        obs.gauge("fleet.inflight", self._inflight)
        return 429, {
            "error": (
                f"fleet over the {kind or 'unknown'!s} admission budget "
                f"({budget} of {self._config.max_inflight} slots)"
            ),
            "retryable": True,
        }

    # -- request resilience ---------------------------------------------
    async def _answer(
        self,
        kind: str,
        request: Dict[str, object],
        body: bytes,
        digest: str,
    ) -> Tuple[int, Dict[str, object]]:
        idempotent = kind in IDEMPOTENT_KINDS
        attempts = self._config.retry.retries + 1 if idempotent else 1
        deadline_at = self._clock.now() + self._config.timeout
        cache_key = (
            digest + "|" + json.dumps(request, sort_keys=True)
            if idempotent
            else ""
        )
        tried: List[int] = []
        for attempt in range(attempts):
            slot = self._pick_worker(tried, digest)
            if slot is None:
                break
            tried.append(slot.index)
            budget = deadline_at - self._clock.now()
            if budget <= 0:
                break
            responder = slot
            try:
                if self._config.retry.hedge and idempotent:
                    status, payload, responder = await self._forward_hedged(
                        slot, tried, body, budget, attempt
                    )
                else:
                    status, payload = await self._forward(
                        slot, body, budget, attempt=attempt
                    )
            except (OSError, asyncio.TimeoutError, ServeWorkerError) as error:
                obs.count("fleet.forward_errors")
                obs.count(f"fleet.forward_errors.{type(error).__name__}")
                status, payload = 502, {
                    "error": "worker unreachable",
                    "retryable": True,
                }
            if status == 200:
                if payload.get("digest") != digest:
                    # Corrupt reply: wrong shard or garbled bytes —
                    # never surface it; treat as a retryable failure.
                    self.corrupt_detected += 1
                    obs.count("fleet.replies.corrupt_detected")
                else:
                    self.served += 1
                    self.shard_served[digest] = (
                        self.shard_served.get(digest, 0) + 1
                    )
                    payload["served_by"] = responder.worker_id
                    if idempotent:
                        self._remember(cache_key, payload)
                    return 200, payload
            elif status not in (429, 502, 503, 504):
                # Deterministic worker answer (400, 500 with the engine's
                # error text): retrying cannot change it — pass through.
                return status, payload
            if attempt + 1 < attempts:
                self.retries += 1
                obs.count("fleet.retries")
                await asyncio.sleep(self._retry_delay(attempt))
        return self._degrade(kind, cache_key)

    def _pick_worker(
        self, tried: Sequence[int], digest: str
    ) -> Optional[_WorkerSlot]:
        """Round-robin over the shard's live workers, skipping tried ones."""
        alive = [
            slot
            for slot in self._slots
            if slot.state == "up" and slot.digest == digest
        ]
        if not alive:
            return None
        fresh = [slot for slot in alive if slot.index not in tried]
        pool = fresh or alive
        choice = pool[self._next_slot % len(pool)]
        self._next_slot += 1
        return choice

    def _retry_delay(self, attempt: int) -> float:
        policy = self._config.retry
        delay = min(policy.backoff_cap, policy.backoff * (2.0 ** attempt))
        if policy.jitter:
            delay *= (1.0 - policy.jitter) + policy.jitter * self._rng.random()
        return delay

    def _hedge_delay(self) -> float:
        """p95 of recent fleet latency, or the configured floor."""
        samples: List[float] = []
        for slot in self._slots:
            samples.extend(slot.latencies)
        if len(samples) < 8:
            return self._config.retry.hedge_delay
        samples.sort()
        return samples[min(len(samples) - 1, int(0.95 * len(samples)))]

    async def _forward(
        self,
        slot: _WorkerSlot,
        body: bytes,
        budget: float,
        attempt: int = 0,
        hedged: bool = False,
    ) -> Tuple[int, Dict[str, object]]:
        headers = {DEADLINE_HEADER: f"{budget:g}"}
        # Per-attempt span: the worker parents its own span to this
        # one via the propagated header, so a retried request shows
        # one front.attempt per replica it touched (failed, hedged,
        # and cancelled attempts included).  The bracket opens before
        # address resolution: a killed in-process worker fails right
        # there, and that attempt must still leave its hop in the tree.
        ctx = obs_trace.current()
        span_id: Optional[str] = None
        if ctx is not None:
            span_id = ctx.recorder.next_span_id()
            headers[obs_trace.TRACE_HEADER] = obs_trace.format_trace_header(
                ctx.trace_id, span_id
            )
        slot.inflight += 1
        t_start = self._clock.now()
        outcome: object = "error"
        try:
            host, port = slot.worker.address
            status, payload = await asyncio.wait_for(
                _http_exchange(host, port, "POST", "/query", body, headers),
                budget,
            )
            outcome = status
        except asyncio.CancelledError:
            outcome = "cancelled"  # hedge loser — the race was won elsewhere
            raise
        except asyncio.TimeoutError:
            outcome = "timeout"
            raise
        except (OSError, ServeWorkerError) as error:
            outcome = type(error).__name__
            raise
        finally:
            slot.inflight -= 1
            if ctx is not None:
                ctx.recorder.span(
                    ctx.trace_id,
                    span_id,
                    ctx.span_id,
                    "front.attempt",
                    t_start,
                    self._clock.now(),
                    {
                        "worker": slot.worker_id,
                        "shard": slot.digest[:12],
                        "attempt": attempt,
                        "hedge": hedged,
                        "status": outcome,
                        "budget": round(budget, 6),
                    },
                )
        slot.latencies.append(self._clock.now() - t_start)
        return status, payload

    async def _forward_hedged(
        self,
        slot: _WorkerSlot,
        tried: List[int],
        body: bytes,
        budget: float,
        attempt: int = 0,
    ) -> Tuple[int, Dict[str, object], "_WorkerSlot"]:
        """Race a second replica after the hedge delay; first reply wins.

        Returns the winning reply *and the slot that produced it*, so the
        caller attributes ``served_by`` to the replica that actually
        answered, not the primary pick.
        """
        loop = asyncio.get_running_loop()
        primary = loop.create_task(
            self._forward(slot, body, budget, attempt=attempt)
        )
        owners = {primary: slot}
        done, _ = await asyncio.wait({primary}, timeout=self._hedge_delay())
        if primary in done:
            status, payload = primary.result()
            return status, payload, slot
        backup_slot = self._pick_worker(tried, slot.digest)
        if backup_slot is None:
            status, payload = await primary
            return status, payload, slot
        tried.append(backup_slot.index)
        self.hedges += 1
        obs.count("fleet.hedges")
        backup = loop.create_task(
            self._forward(backup_slot, body, budget, attempt=attempt, hedged=True)
        )
        owners[backup] = backup_slot
        pending = {primary, backup}
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    if task.exception() is None:
                        status, payload = task.result()
                        return status, payload, owners[task]
            # Both raised: re-raise one for the caller's handler.
            status, payload = await primary
            return status, payload, slot
        finally:
            for task in pending:  # rapflow: noqa[RAP010] cancellation order is immaterial
                task.cancel()

    def _remember(self, key: str, payload: Dict[str, object]) -> None:
        if self._config.degraded_cache_size <= 0 or payload.get("degraded"):
            return
        cached = {
            name: value
            for name, value in payload.items()
            if name != "served_by"
        }
        self._degraded_cache[key] = cached
        self._degraded_cache.move_to_end(key)
        while len(self._degraded_cache) > self._config.degraded_cache_size:
            self._degraded_cache.popitem(last=False)

    def _degrade(
        self, kind: str, cache_key: str
    ) -> Tuple[int, Dict[str, object]]:
        """Last resort: replay a cached reply marked degraded, or 503."""
        cached = self._degraded_cache.get(cache_key) if cache_key else None
        if cached is not None:
            self.degraded += 1
            obs.count("fleet.degraded")
            self._trace_degrade(kind, "cache-replay", degraded=True)
            stale = dict(cached)
            stale["degraded"] = True
            return 200, stale
        self.rejected += 1
        obs.count("fleet.unavailable")
        self._trace_degrade(kind, "unavailable", degraded=False)
        return 503, {
            "error": f"no worker available for {kind or 'unknown'!s} "
            "and nothing cached",
            "retryable": True,
        }

    def _trace_degrade(
        self, kind: str, outcome: str, degraded: bool
    ) -> None:
        """Record the fallback hop so a degraded trace tree shows *why*."""
        ctx = obs_trace.current()
        if ctx is None:
            return
        now = self._clock.now()
        attrs: Dict[str, object] = {"kind": kind or "unknown", "outcome": outcome}
        if degraded:
            attrs["degraded"] = True
        obs_trace.record("front.degrade", now, now, attrs, context=ctx)

    # -- front-side per-shard batching ----------------------------------
    def _shard_dispatch(
        self, digest: str
    ) -> Callable[..., "asyncio.Future"]:
        """The async evaluate sink one shard's front batcher flushes to.

        Re-encodes the coalesced placements into a single worker
        request and routes it through the normal retry/hedging path, so
        a front-batched flush keeps every resilience property a direct
        forward has.
        """
        async def dispatch(
            placements: List[Tuple[NodeId, ...]],
            utility: Optional[dict],
            backend: Optional[str],
        ) -> List[float]:
            request: Dict[str, object] = {
                "kind": "evaluate",
                "placements": [
                    [encode_site(site) for site in placement]
                    for placement in placements
                ],
            }
            if utility is not None:
                request["utility"] = utility
            if backend is not None:
                request["backend"] = backend
            body = json.dumps(request).encode("utf-8")
            status, payload = await self._answer(
                "evaluate", request, body, digest
            )
            if status != 200:
                raise _ShardAnswer(status, payload)
            totals = payload.get("totals")
            if not isinstance(totals, list) or len(totals) != len(placements):
                raise ServeWorkerError(
                    f"shard {digest[:12]} answered {len(placements)} "
                    "placements with a malformed totals list"
                )
            obs.count("fleet.front_batch.flushes")
            return [float(total) for total in totals]

        return dispatch

    async def _front_evaluate(
        self,
        batcher: MicroBatcher,
        request: Dict[str, object],
        digest: str,
        body: bytes,
    ) -> Tuple[int, Dict[str, object]]:
        """Route one evaluate request through the shard's front batcher."""
        raw = request.get("placements")
        if not isinstance(raw, list) or not raw:
            return 400, {
                "error": "request field 'placements' must be a non-empty "
                "list of site lists"
            }
        try:
            placements = [
                [decode_site(site) for site in entry]
                for entry in raw
                if isinstance(entry, (list, tuple))
            ]
            if len(placements) != len(raw):
                return 400, {"error": "placements must be lists of sites"}
        except ServeRequestError as error:
            return 400, {"error": str(error)}
        backend = request.get("backend")
        if backend is not None and backend not in ("python", "numpy"):
            return 400, {
                "error": f"unknown backend {backend!r}; expected 'python' "
                "or 'numpy'"
            }
        utility = request.get("utility")
        if utility is None or isinstance(utility, dict):
            self._parse_cache[(digest, body)] = (
                placements,
                utility,
                backend,
            )
            if len(self._parse_cache) > PARSE_CACHE_ENTRIES:
                self._parse_cache.popitem(last=False)
        return await self._front_evaluate_parsed(
            batcher, (placements, utility, backend), digest
        )

    async def _front_evaluate_parsed(
        self,
        batcher: MicroBatcher,
        parsed: Tuple[
            List[List[NodeId]], Optional[dict], Optional[str]
        ],
        digest: str,
    ) -> Tuple[int, Dict[str, object]]:
        """Batch an already-validated evaluate request (parse-memo hit)."""
        placements, utility, backend = parsed
        try:
            totals = await batcher.evaluate(
                placements,
                utility=utility,  # type: ignore[arg-type]
                backend=backend,  # type: ignore[arg-type]
                inflight=self._inflight,
            )
        except _ShardAnswer as answer:
            return answer.status, answer.payload
        except ServeWorkerError as error:
            return 502, {"error": str(error), "retryable": True}
        obs.count("fleet.front_batch.requests")
        return 200, {
            "kind": "evaluate",
            "digest": digest,
            "totals": totals,
            "front_batched": True,
        }

    # -- health ---------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """The fleet health document (also ``GET /healthz``)."""
        tiers = {}
        for kind, tier in SHED_TIERS.items():
            budget = max(1, int(self._config.max_inflight * tier))
            tiers[kind] = {"budget": budget, "shed": self.shed.get(kind, 0)}
            obs.gauge(f"fleet.tier.{kind}.shed", self.shed.get(kind, 0))
        for slot in self._slots:
            obs.gauge(f"fleet.worker.{slot.worker_id}.state", slot.state)
            obs.gauge(
                f"fleet.worker.{slot.worker_id}.inflight", slot.inflight
            )
        shards: Dict[str, object] = {}
        for shard in self.shard_digests:
            batcher = self._front_batchers.get(shard)
            shards[shard] = {
                "default": shard == self._digest,
                "served": self.shard_served.get(shard, 0),
                "workers": [
                    slot.to_dict()
                    for slot in self._slots
                    if slot.digest == shard
                ],
                "front_batching": (
                    batcher.stats() if batcher is not None else None
                ),
            }
        return {
            "status": "draining" if self._draining else "ok",
            "digest": self._digest,
            "workers": [slot.to_dict() for slot in self._slots],
            "shards": shards,
            "admission": {
                "inflight": self._inflight,
                "max_inflight": self._config.max_inflight,
                "tiers": tiers,
            },
            "requests": {
                "served": self.served,
                "retries": self.retries,
                "hedges": self.hedges,
                "degraded": self.degraded,
                "corrupt_detected": self.corrupt_detected,
                "rejected": self.rejected,
            },
            "respawns": sum(slot.respawns for slot in self._slots),
            "swap": {"count": self._swaps, "last": self._last_swap},
            "slo": self._slo.snapshot(),
            "trace": {
                "enabled": self._tracer is not None,
                "degraded": (
                    self._tracer.degraded
                    if self._tracer is not None
                    else False
                ),
            },
            "sanitizer": sanitizer_health(),
        }

    # -- metrics --------------------------------------------------------
    async def metrics_doc(self) -> Dict[str, object]:
        """The front's ``GET /metrics`` payload with fleet aggregation.

        The front's own ``/query`` histogram rides next to a bucket-wise
        sum of every live worker's histogram (identical fixed bounds, so
        merging is addition) plus the fleet-wide counters chaos triage
        asks for first: retries, hedges, shed, degraded, respawns, and
        how many workers shm-attached their artifact.
        Unreachable workers are reported as ``null`` rather than
        failing the endpoint.
        """
        live = [slot for slot in self._slots if slot.state == "up"]
        probes = [self._worker_metrics(slot) for slot in live]
        results = await asyncio.gather(*probes, return_exceptions=True)
        workers: Dict[str, object] = {}
        merged = LatencyHistogram()
        workers_reporting = 0
        shm_attached = 0
        for slot, result in zip(live, results):
            if isinstance(result, BaseException) or result is None:
                workers[slot.worker_id] = None
                continue
            workers[slot.worker_id] = result
            workers_reporting += 1
            latency = result.get("latency")
            if isinstance(latency, dict):
                try:
                    merged.merge(LatencyHistogram.from_dict(latency))
                except ObsError:
                    obs.count("fleet.metrics.foreign_buckets")
            counters = result.get("counters")
            if isinstance(counters, dict):
                shm_attached += int(counters.get("shm_attached", 0) or 0)
        return {
            "schema": "rapflow-metrics/1",
            "role": "front",
            "digest": self._digest,
            "latency": self._metrics.to_dict(),
            "workers_latency": merged.to_dict(),
            "workers_reporting": workers_reporting,
            "counters": {
                "served": self.served,
                "retries": self.retries,
                "hedges": self.hedges,
                "degraded": self.degraded,
                "corrupt_detected": self.corrupt_detected,
                "rejected": self.rejected,
                "shed": dict(self.shed),
                "respawns": sum(slot.respawns for slot in self._slots),
                "shm_attached": shm_attached,
            },
            "slo": self._slo.snapshot(),
            "workers": workers,
        }

    async def _worker_metrics(
        self, slot: _WorkerSlot
    ) -> Optional[Dict[str, object]]:
        """One worker's ``/metrics`` doc, or ``None`` when unreachable."""
        try:
            host, port = slot.worker.address
            status, payload = await asyncio.wait_for(
                _http_exchange(host, port, "GET", "/metrics", None, {}),
                self._config.heartbeat_timeout,
            )
        except (
            OSError,
            asyncio.TimeoutError,
            ServeWorkerError,
            ValueError,
        ) as error:
            obs.count(f"fleet.metrics_probe_errors.{type(error).__name__}")
            return None
        return payload if status == 200 else None


# ----------------------------------------------------------------------
# raw async HTTP exchange (front -> worker)
# ----------------------------------------------------------------------
async def _http_exchange(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes],
    headers: Dict[str, str],
) -> Tuple[int, Dict[str, object]]:
    """One HTTP request/response against a worker; returns (status, JSON)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        lines = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}"]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        payload = body or b""
        if payload:
            lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(payload)}")
        lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServeWorkerError(
                f"malformed status line from {host}:{port}: {status_line!r}"
            )
        status = int(parts[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip() or "0")
        raw = await reader.readexactly(length) if length else b""
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeWorkerError(
                f"invalid JSON from {host}:{port}: {error}"
            ) from None
        if not isinstance(decoded, dict):
            raise ServeWorkerError(
                f"non-object payload from {host}:{port}: {decoded!r}"
            )
        return status, decoded
    finally:
        await close_quietly(writer, where="fleet")


# ----------------------------------------------------------------------
# convenience constructors + blocking runner
# ----------------------------------------------------------------------
def local_worker_factory(
    engine_factory: Callable[[], object],
    **server_kwargs: object,
) -> Callable[[int], LocalWorker]:
    """A :class:`PlacementFleet` factory producing in-process workers."""

    def factory(index: int) -> LocalWorker:
        return LocalWorker(f"w{index}", engine_factory, **server_kwargs)

    return factory


def process_worker_factory(
    serve_args: Sequence[str],
    ready_dir: Union[str, Path],
    start_timeout: float = 60.0,
    clock: Optional[Clock] = None,
) -> Callable[[int], ProcessWorker]:
    """A factory producing ``python -m repro serve`` subprocess workers."""

    frozen = list(serve_args)

    def factory(index: int) -> ProcessWorker:
        return ProcessWorker(
            f"w{index}",
            frozen,
            ready_dir,
            start_timeout=start_timeout,
            clock=clock,
        )

    return factory


async def run_fleet(
    fleet: PlacementFleet,
    ready_file: Optional[Union[str, Path]] = None,
    serve_seconds: Optional[float] = None,
) -> None:
    """Start ``fleet``, announce readiness, run until signalled, drain.

    The fleet analogue of :func:`repro.serve.server.run_server`: SIGTERM
    and SIGINT both trigger the same graceful shutdown (front stops
    accepting, workers drain); ``serve_seconds`` bounds scripted runs.
    """
    import signal

    await fleet.start()
    loop = asyncio.get_running_loop()
    if ready_file is not None:
        await loop.run_in_executor(
            None, Path(ready_file).write_text, f"{fleet.host} {fleet.port}\n"
        )
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        if serve_seconds is not None:
            try:
                await asyncio.wait_for(stop.wait(), serve_seconds)
            except asyncio.TimeoutError:
                pass
        else:
            await stop.wait()
    finally:
        await fleet.shutdown()


__all__ = [
    "DIGEST_HEADER",
    "FleetConfig",
    "IDEMPOTENT_KINDS",
    "LocalWorker",
    "PlacementFleet",
    "ProcessWorker",
    "RetryPolicy",
    "SHED_TIERS",
    "local_worker_factory",
    "process_worker_factory",
    "run_fleet",
]
