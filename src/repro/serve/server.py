"""Embeddable JSON-over-HTTP front end for the query engine.

Stdlib-only (``asyncio`` streams + hand-rolled HTTP/1.1 framing — no
web framework), single event loop, single worker: the engine's kernel
calls run on the loop thread, so the whole serving stack inherits the
library's single-threaded determinism guarantees.

Endpoints:

* ``POST /query`` — one engine request (see
  :data:`~repro.serve.engine.REQUEST_KINDS`); ``evaluate`` requests are
  routed through the :class:`~repro.serve.batching.MicroBatcher`.
* ``GET /healthz`` — liveness + request accounting, backed by
  :class:`~repro.reliability.PipelineHealth` (each admitted request is a
  recorded row; each failed one a quarantined row tagged with its error
  class), plus artifact stats, cache occupancy, and batching tallies.
* ``GET /metrics`` — fixed-bucket ``/query`` latency histogram
  (:class:`~repro.obs.metrics.LatencyHistogram`, bounds in the payload)
  plus per-status counters; a fleet front sums worker histograms
  bucket-wise into the fleet view.

Distributed tracing is **opt-in** via ``trace_dir``: a front that sends
``X-Rapflow-Trace: <trace_id>:<parent_span_id>`` gets a
``worker.request`` span appended to this process's JSONL segment, and
the engine/batcher emit child spans through the context variable in
:mod:`repro.obs.trace`.  Without a ``trace_dir`` the header is never
even parsed.

Operational behavior:

* **admission control** — at most ``max_inflight`` requests in flight;
  excess requests are rejected *immediately* with HTTP 429
  (:class:`~repro.errors.ServeOverloadError`) carrying a ``Retry-After``
  hint, never queued blindly, so an overloaded server degrades by
  shedding load instead of by hanging.
* **per-request deadline** — ``timeout`` seconds via
  ``asyncio.wait_for``; expiry answers 504.  A fleet front can tighten
  one request's deadline below the server default with an
  ``X-Rapflow-Deadline: <seconds>`` header (deadline propagation —
  a worker never works longer than its caller is willing to wait).
* **graceful shutdown** — :meth:`PlacementServer.shutdown` stops
  accepting, answers new requests 503 while draining, flushes the
  batcher, and waits for in-flight requests to finish.
* **fault injection** — a :class:`~repro.reliability.FaultInjector` on
  the engine can fail (HTTP 500) or stall admitted requests.

Per-request timing uses the injected :class:`~repro.obs.Clock` and lands
as retroactive obs spans (:func:`repro.obs.record_span` — concurrent
requests cannot nest) and optional JSONL latency records.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from .. import obs
from ..errors import (
    ReproError,
    ServeOverloadError,
    ServeRequestError,
    ServeTimeoutError,
)
from ..obs import trace as obs_trace
from ..obs.clock import Clock, SystemClock
from ..obs.metrics import LatencyHistogram
from ..reliability.health import PipelineHealth
from .batching import MicroBatcher
from .engine import QueryEngine

_MAX_BODY = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Header a routing front uses to tighten a worker's per-request
#: deadline (float seconds of budget remaining at the front).
DEADLINE_HEADER = "x-rapflow-deadline"

#: Header a client uses to address a specific shard (scenario digest)
#: behind a multi-shard fleet front.  Defined here (not in
#: :mod:`repro.serve.fleet`) so the client can import it without a
#: client → fleet → testing → client cycle.
DIGEST_HEADER = "x-rapflow-digest"

#: Sentinel method marking an unreadably large request body.
_TOO_LARGE = "__TOO_LARGE__"


async def read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes, bool]]:
    """Read one HTTP/1.1 request off ``reader``.

    Returns ``(method, path, headers, body, keep_alive)`` with header
    names lowercased, or ``None`` on EOF/garbage (caller drops the
    connection).  Oversized bodies come back with method
    ``"__TOO_LARGE__"`` and the body unread, so the connection cannot be
    reused.  Shared by :class:`PlacementServer` and the fleet front —
    one framing implementation, one set of framing bugs.

    The whole head (request line + headers) is read with a single
    ``readuntil`` and split in memory: at high request rates the
    line-by-line version spent more loop iterations parsing headers
    than answering queries.  CRLF framing only — every HTTP client
    emits it, and a bare-LF peer just looks like garbage.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if error.partial:  # mid-request EOF; clean close arrives empty
            obs.count("serve.conn_aborts.read")
        return None
    except asyncio.LimitOverrunError:  # head larger than the stream limit
        obs.count("serve.conn_aborts.read")
        return None
    except OSError:  # ConnectionError included: peer vanished mid-read
        obs.count("serve.conn_aborts.read")
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        return None
    method, path, _ = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        # The body is unread, so the connection cannot be reused.
        return _TOO_LARGE, path, headers, b"", False
    body = await reader.readexactly(length) if length else b""
    keep_alive = headers.get("connection", "").lower() != "close"
    return method, path, headers, body, keep_alive


async def write_json_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Dict[str, object],
    keep_alive: bool,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Serialize and send one JSON response over ``writer``."""
    body = json.dumps(payload).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


async def close_quietly(
    writer: asyncio.StreamWriter, where: str = "serve"
) -> None:
    """Close ``writer``, tolerating a peer that already vanished.

    ``wait_closed`` raises when the transport died mid-flush; there is
    nothing left to salvage at that point, so the abort is counted
    (``<where>.close_aborts``) rather than propagated.  Shared by the
    server and the fleet front — every connection teardown goes through
    one audited path.
    """
    writer.close()
    try:
        await writer.wait_closed()
    except OSError:  # ConnectionError included: already torn down
        obs.count(f"{where}.close_aborts")


def effective_deadline(headers: Dict[str, str], default: float) -> float:
    """The per-request deadline: header-propagated budget, capped at ``default``.

    A malformed or non-positive header value falls back to the server
    default rather than erroring — deadline propagation is an
    optimization, not a correctness gate.
    """
    raw = headers.get(DEADLINE_HEADER)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    if value <= 0:
        return default
    return min(default, value)


def sanitizer_health() -> Optional[Dict[str, object]]:
    """Async-sanitizer tallies for health payloads (``None`` when off).

    Mirrors the ``lint.sanitize.async_violations`` obs counter so an
    operator curling ``/healthz`` sees slow-callback and leaked-task
    counts without a profiling run.
    """
    from ..devtools import sanitize  # local: opt-in tooling, lazy

    report = sanitize.async_report()
    if report is None:
        return None
    return {
        "async_violations": report.total_violations(),
        "slow_callbacks": report.slow_callbacks,
        "leaked_tasks": report.leaked_tasks,
        "callbacks_timed": report.callbacks_timed,
        "budget": report.budget,
    }


def _garbled(response: Dict[str, object]) -> Dict[str, object]:
    """A corrupted copy of ``response`` (injected corrupt-reply fault).

    The digest is mangled — the exact field a fleet front's integrity
    check verifies against the shard's content address — and numeric
    result fields are perturbed so an unchecked consumer would read
    wrong numbers, not subtly-right ones.
    """
    corrupted: Dict[str, object] = dict(response)
    corrupted["digest"] = "corrupt-" + str(response.get("digest", ""))[:8]
    totals = corrupted.get("totals")
    if isinstance(totals, list):
        corrupted["totals"] = [float(total) + 1.0 for total in totals]
    obs.count("serve.replies.corrupted")
    return corrupted


class PlacementServer:
    """Asyncio HTTP server around one :class:`QueryEngine`.

    Parameters
    ----------
    engine:
        The (already compiled) query engine to expose.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    max_inflight:
        Admission limit — concurrent requests beyond it get HTTP 429.
    timeout:
        Per-request deadline in seconds.
    batch_window, max_batch, bypass_threshold:
        Micro-batcher knobs (see :class:`MicroBatcher`); the default
        threshold of 4 covers the concurrency levels where
        BENCH_serve.json showed the window costing more than the
        coalescing earned (c=2: 0.57x, c=4: 0.71x before).
    restore_info:
        Optional restore provenance surfaced verbatim under
        ``restore`` in ``/healthz`` — the shm attach path records how
        the artifact was restored (``attach`` vs ``load``), the restore
        latency, and the private-memory delta, which the fleet front
        and the bench aggregate into the copy-count proof.
    latency_log:
        Optional JSONL path; one ``{"path", "status", "duration"}``
        record per request.
    clock:
        Injected time source for request timing (RAP002: the serve
        layer never reads the wall clock directly).
    retry_after:
        Seconds advertised in the ``Retry-After`` header of 429/503
        responses, so well-behaved clients back off by the amount the
        server actually wants.
    trace_dir:
        Optional directory for this worker's JSONL trace segment
        (``worker-<label>.jsonl``).  Enables distributed tracing:
        requests carrying ``X-Rapflow-Trace`` get ``worker.request``
        spans with engine/batcher children.  ``None`` (the default)
        disables tracing entirely — the header is not even parsed.
    worker_label:
        Fleet-assigned worker id (``w0``, ...) used in trace segments
        and the ``/metrics`` payload; defaults to ``"solo"`` for a
        standalone server.
    """

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 32,
        timeout: float = 30.0,
        batch_window: float = 0.002,
        max_batch: int = 256,
        bypass_threshold: int = 4,
        restore_info: Optional[Dict[str, object]] = None,
        latency_log: Optional[Union[str, Path]] = None,
        clock: Optional[Clock] = None,
        retry_after: float = 0.05,
        trace_dir: Optional[Union[str, Path]] = None,
        worker_label: Optional[str] = None,
    ) -> None:
        if max_inflight < 1:
            raise ServeRequestError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if timeout <= 0:
            raise ServeRequestError(f"timeout must be > 0, got {timeout}")
        if retry_after < 0:
            raise ServeRequestError(
                f"retry_after must be >= 0, got {retry_after}"
            )
        self._engine = engine
        self._host = host
        self._requested_port = port
        self._max_inflight = max_inflight
        self._timeout = timeout
        self._batcher = MicroBatcher(
            engine,
            window=batch_window,
            max_batch=max_batch,
            bypass_threshold=bypass_threshold,
        )
        self._restore_info = restore_info
        self._latency_log = Path(latency_log) if latency_log else None
        self._latency_log_degraded = False
        self._clock: Clock = clock if clock is not None else SystemClock()
        self._retry_after = retry_after
        self._worker_label = worker_label if worker_label else "solo"
        self._tracer: Optional[obs_trace.TraceRecorder] = None
        if trace_dir is not None:
            self._tracer = obs_trace.TraceRecorder(
                Path(trace_dir) / f"worker-{self._worker_label}.jsonl",
                role="worker",
                worker_id=self._worker_label,
                clock=self._clock,
            )
        self._metrics = LatencyHistogram()
        self._query_statuses: Dict[int, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight = 0
        self._draining = False
        # Created in start(): asyncio primitives bind the running loop
        # on construction under Python 3.9.
        self._idle: Optional[asyncio.Event] = None
        self.health = PipelineHealth(source="serve")
        self.rejected = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The configured bind host."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServeRequestError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def draining(self) -> bool:
        """Whether the server is refusing new work while shutting down."""
        return self._draining

    @property
    def inflight(self) -> int:
        """Requests currently admitted and not yet answered."""
        return self._inflight

    async def start(self) -> None:
        """Bind and start accepting connections."""
        from ..devtools import sanitize  # local: opt-in tooling, lazy

        sanitize.install_async_if_enabled()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._requested_port
        )

    async def shutdown(self, drain_timeout: float = 10.0) -> None:
        """Graceful stop: refuse new work, drain in-flight, close.

        New requests arriving during the drain are answered 503; the
        batcher's open windows are flushed so queued evaluations finish
        rather than being abandoned.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        await self._batcher.drain()
        if self._idle is not None:
            try:
                await asyncio.wait_for(self._idle.wait(), drain_timeout)
            except asyncio.TimeoutError:
                obs.count("serve.drain_timeouts")
        if self._server is not None:
            await self._server.wait_closed()
        if self._tracer is not None:
            self._tracer.close()
        from ..devtools import sanitize  # local: opt-in tooling, lazy

        sanitize.check_loop_shutdown("server.shutdown")

    def abort(self) -> None:
        """Abrupt stop (crash simulation): close the socket, drop work.

        Unlike :meth:`shutdown` this neither flushes the batcher nor
        waits for in-flight requests — the chaos harness uses it to make
        a worker die the way a SIGKILL'd process dies.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()

    async def serve_forever(self) -> None:
        """Block until cancelled (pair with :meth:`start`)."""
        if self._server is None:
            raise ServeRequestError("server is not started")
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                parsed = await read_http_request(reader)
                if parsed is None:
                    break
                method, path, headers, body, keep_alive = parsed
                status, payload = await self._dispatch(
                    method, path, headers, body
                )
                extra = None
                if status in (429, 503):
                    extra = {"Retry-After": f"{self._retry_after:g}"}
                await write_json_response(
                    writer, status, payload, keep_alive, extra
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError) as error:
            obs.count(f"serve.conn_aborts.{type(error).__name__}")
        finally:
            await close_quietly(writer, where="serve")

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        # Parse the trace header only when this worker records traces —
        # the disabled hot path adds a single attribute check.
        parsed_trace = None
        if self._tracer is not None:
            raw_trace = headers.get(obs_trace.TRACE_HEADER)
            if raw_trace is not None:
                parsed_trace = obs_trace.parse_trace_header(raw_trace)
        t_start = self._clock.now()
        if parsed_trace is None:
            status, payload = await self._route(method, path, headers, body)
            t_end = self._clock.now()
        else:
            trace_id, parent_id = parsed_trace
            span_id = self._tracer.next_span_id()
            token = obs_trace.activate(
                obs_trace.TraceContext(trace_id, span_id, self._tracer)
            )
            try:
                status, payload = await self._route(
                    method, path, headers, body
                )
            finally:
                obs_trace.deactivate(token)
            t_end = self._clock.now()
            self._tracer.span(
                trace_id,
                span_id,
                parent_id,
                "worker.request",
                t_start,
                t_end,
                {
                    "path": path,
                    "status": status,
                    "digest": self._engine.artifact.digest[:12],
                },
            )
        duration = t_end - t_start
        obs.record_span(
            "serve.request", duration, path=path, status=status
        )
        obs.count(f"serve.http.{status}")
        if path == "/query":
            self._metrics.observe(duration)
            self._query_statuses[status] = (
                self._query_statuses.get(status, 0) + 1
            )
        self._log_latency(path, status, duration)
        return status, payload

    def _log_latency(self, path: str, status: int, duration: float) -> None:
        if self._latency_log is None:
            return
        try:
            with open(self._latency_log, "a") as handle:
                handle.write(
                    json.dumps(
                        {
                            "path": path,
                            "status": status,
                            "duration": duration,
                        }
                    )
                    + "\n"
                )
        except OSError:
            self._latency_log = None  # degrade: stop logging, keep serving
            self._latency_log_degraded = True  # ... but say so in /healthz
            obs.count("serve.latency_log_errors")

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        if method == _TOO_LARGE:
            return 413, {"error": f"request body exceeds {_MAX_BODY} bytes"}
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, self._healthz()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}
            return 200, self.metrics_doc()
        if path != "/query":
            return 404, {"error": f"unknown path {path!r}"}
        if method != "POST":
            return 405, {"error": "query is POST-only"}
        if self._draining:
            self.rejected += 1
            return 503, {"error": "server is draining", "retryable": True}
        if self._inflight >= self._max_inflight:
            self.rejected += 1
            obs.count("serve.rejected.overload")
            error = ServeOverloadError(
                f"admission queue full ({self._max_inflight} in flight)"
            )
            return 429, {"error": str(error), "retryable": True}
        deadline = effective_deadline(headers, self._timeout)
        self._inflight += 1
        self._idle.clear()
        try:
            return await asyncio.wait_for(
                self._answer_query(body), deadline
            )
        except asyncio.TimeoutError:
            timeout_error = ServeTimeoutError(
                f"request exceeded the {deadline:g}s deadline"
            )
            return 504, {"error": str(timeout_error), "retryable": True}
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _answer_query(
        self, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"request body is not valid JSON: {error}"}
        try:
            delay = self._engine.check_fault()
            corrupt = self._engine.corrupt_reply()
            if delay > 0:
                await asyncio.sleep(delay)
            if request.get("kind") == "evaluate" and isinstance(
                request.get("placements"), list
            ):
                response = await self._batched_evaluate(request)
            else:
                # Single-worker design: the kernel deliberately runs on
                # the loop thread (see the module docstring).
                response = self._engine.handle(request)  # rapflow: noqa[RAP006] kernel-on-loop by design
        except ServeRequestError as error:
            self.health.quarantine_row(0, "bad-request", str(error))
            return 400, {"error": str(error)}
        except ReproError as error:
            self.health.quarantine_row(0, type(error).__name__, str(error))
            return 500, {"error": str(error)}
        self.health.record_row()
        if corrupt:
            return 200, _garbled(response)
        return 200, response

    async def _batched_evaluate(
        self, request: Dict[str, object]
    ) -> Dict[str, object]:
        from .engine import decode_site  # local: avoid import cycle noise

        raw = request.get("placements")
        if not isinstance(raw, list) or not raw:
            raise ServeRequestError(
                "request field 'placements' must be a non-empty list of "
                "site lists"
            )
        placements = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, (list, tuple)):
                raise ServeRequestError(
                    f"placements[{index}] must be a list of sites"
                )
            placements.append([decode_site(site) for site in entry])
        backend = request.get("backend")
        if backend is not None and backend not in ("python", "numpy"):
            raise ServeRequestError(
                f"unknown backend {backend!r}; expected 'python' or 'numpy'"
            )
        totals = await self._batcher.evaluate(
            placements,
            utility=request.get("utility"),  # type: ignore[arg-type]
            backend=backend,  # type: ignore[arg-type]
            # The admission counter is the concurrency signal the batcher
            # itself cannot see (kernel calls are synchronous): below the
            # bypass threshold the window would cost more latency than
            # the coalescing earns.
            inflight=self._inflight,
        )
        obs.count("serve.requests.evaluate")
        return {
            "kind": "evaluate",
            "digest": self._engine.artifact.digest,
            "totals": totals,
        }

    # ------------------------------------------------------------------
    # health + metrics
    # ------------------------------------------------------------------
    def _latency_log_status(self) -> str:
        """``ok`` / ``disabled`` / ``degraded`` (write failed, log dead)."""
        if self._latency_log_degraded:
            return "degraded"
        return "ok" if self._latency_log is not None else "disabled"

    def _healthz(self) -> Dict[str, object]:
        return {
            "status": "draining" if self._draining else "ok",
            "inflight": self._inflight,
            "max_inflight": self._max_inflight,
            "rejected": self.rejected,
            "digest": self._engine.artifact.digest,
            "artifact": dict(self._engine.artifact.stats),
            "cache": self._engine.cache_info(),
            "batching": self._batcher.stats(),
            "restore": self._restore_info,
            "latency_log": self._latency_log_status(),
            "trace": {
                "enabled": self._tracer is not None,
                "degraded": (
                    self._tracer.degraded
                    if self._tracer is not None
                    else False
                ),
            },
            "pipeline": self.health.to_dict(),
            "sanitizer": sanitizer_health(),
        }

    def metrics_doc(self) -> Dict[str, object]:
        """The ``GET /metrics`` payload: histogram + counters.

        The histogram covers ``/query`` requests only (health probes
        would otherwise drown the percentiles in sub-millisecond
        samples) and carries its bucket bounds, so the fleet front can
        sum worker histograms bucket-wise without negotiation.
        """
        shm_attached = (
            1
            if (self._restore_info or {}).get("mode") == "shm-attach"
            else 0
        )
        return {
            "schema": "rapflow-metrics/1",
            "role": "worker",
            "worker": self._worker_label,
            "digest": self._engine.artifact.digest,
            "latency": self._metrics.to_dict(),
            "counters": {
                "served": self._query_statuses.get(200, 0),
                "rejected": self.rejected,
                "shm_attached": shm_attached,
                "statuses": {
                    str(status): count
                    for status, count in sorted(
                        self._query_statuses.items()
                    )
                },
            },
            "latency_log": self._latency_log_status(),
        }


async def run_server(
    server: PlacementServer,
    ready_file: Optional[Union[str, Path]] = None,
    serve_seconds: Optional[float] = None,
) -> None:
    """Start ``server``, optionally announce readiness, run, drain.

    ``ready_file`` (written after binding, containing ``host port``)
    lets test harnesses and CI smoke jobs wait for the ephemeral port
    without polling; ``serve_seconds`` bounds the run (graceful drain at
    expiry) so scripted runs terminate deterministically.  SIGTERM and
    SIGINT both trigger the same graceful drain.
    """
    await server.start()
    loop = asyncio.get_running_loop()
    if ready_file is not None:
        await loop.run_in_executor(
            None, Path(ready_file).write_text, f"{server.host} {server.port}\n"
        )
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without loop signal support
    try:
        if serve_seconds is not None:
            try:
                await asyncio.wait_for(stop.wait(), serve_seconds)
            except asyncio.TimeoutError:
                pass
        else:
            await stop.wait()
    finally:
        await server.shutdown()


__all__ = [
    "DEADLINE_HEADER",
    "DIGEST_HEADER",
    "PlacementServer",
    "close_quietly",
    "effective_deadline",
    "read_http_request",
    "run_server",
    "sanitizer_health",
    "write_json_response",
]
