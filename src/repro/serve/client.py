"""Typed synchronous client for the placement-query server.

Stdlib-only (``http.client``); one :class:`ServeClient` wraps one
``host:port`` and exposes a method per request kind, returning the
server's decoded JSON payload.  Non-2xx responses raise
:class:`~repro.errors.ServeClientError` with the HTTP status attached
(429/503 responses additionally mark themselves retryable and carry the
server's ``Retry-After`` hint), and transport failures raise the same
error with ``status=None`` — callers handle exactly one exception type.

Retry is **opt-in**: with ``retries > 0`` the client re-sends a request
after a retryable failure (transport error, 429, 503), sleeping the
server's ``Retry-After`` hint when one was sent and otherwise an
exponentially growing, jittered backoff.  The jitter RNG is seeded and
the sleeper injectable, so tests can assert the exact backoff schedule
without waiting for it.

The client is deliberately synchronous: benchmark and CI drivers spread
instances across threads to generate concurrency, while the server
stays a single asyncio loop.

Connections are **reused** (HTTP keep-alive): one client holds one TCP
connection open across requests and only reconnects when the server
closes it or a transport error surfaces.  At high concurrency this is
the difference between measuring the serving plane and measuring TCP
handshakes.  A request that fails on a *reused* connection is silently
retried once on a fresh connection — the failure mode is almost always
a keep-alive connection the server closed while idle, and every request
kind the server exposes is a pure read.  Connections are **per thread**
(thread-local), so one client instance can be shared across a thread
pool — each thread keeps its own connection and reply framing never
interleaves.
"""

from __future__ import annotations

import json
import random
import threading
import time
from http.client import HTTPConnection, HTTPException
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from ..errors import ServeClientError, ServeRequestError
from ..graphs import NodeId
from .engine import encode_site
from .server import DIGEST_HEADER


class ServeClient:
    """HTTP client for one :class:`~repro.serve.server.PlacementServer`.

    Parameters
    ----------
    host, port:
        The server address.
    timeout:
        Socket timeout in seconds for each request attempt.
    retries:
        Extra attempts after a retryable failure (0 = fail fast, the
        default).  Only transport errors and 429/503 responses are
        retried — statuses that mean the server did *not* process the
        request — so retrying is safe even for non-idempotent kinds.
    backoff, backoff_cap:
        Exponential backoff base and ceiling in seconds: attempt ``i``
        sleeps ``min(cap, backoff * 2**i)`` (before jitter), unless the
        server sent a ``Retry-After`` hint, which is honored verbatim.
    jitter:
        Fraction of each backoff randomized away (0 = deterministic
        full backoff, 0.5 = sleep 50-100% of it) to de-synchronize
        retrying clients.
    retry_seed:
        Seed for the jitter RNG (seeded so overload tests replay).
    sleep:
        Injected sleeper (defaults to ``time.sleep``); tests pass a
        recorder to assert the schedule without real waiting.
    digest:
        Scenario digest to address when the server is a multi-shard
        fleet front: every request carries it in the
        ``X-Rapflow-Digest`` header and the front routes to that
        shard's worker group.  ``None`` (the default) hits the front's
        default shard; single-artifact servers ignore the header.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        jitter: float = 0.5,
        retry_seed: int = 0,
        sleep: Optional[Callable[[float], None]] = None,
        digest: Optional[str] = None,
    ) -> None:
        if retries < 0:
            raise ServeRequestError(f"retries must be >= 0, got {retries}")
        if not (0.0 <= jitter <= 1.0):
            raise ServeRequestError(
                f"jitter must be in [0, 1], got {jitter}"
            )
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = retries
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._jitter = jitter
        self._rng = random.Random(retry_seed)
        self._sleep = sleep if sleep is not None else time.sleep
        self._digest = digest
        self._local = threading.local()
        self._connections: List[HTTPConnection] = []
        self._connections_lock = threading.Lock()

    def close(self) -> None:
        """Drop every kept-alive connection (idempotent, all threads)."""
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()
        self._local.connection = None

    def _drop_connection(self) -> None:
        """Drop the calling thread's kept-alive connection."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            return
        self._local.connection = None
        connection.close()
        with self._connections_lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Dict[str, object]:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServeClientError as error:
                if attempt >= self._retries or not error.retryable:
                    raise
                self._sleep(self._retry_delay(attempt, error.retry_after))
                obs.count("serve.client.retries")
                attempt += 1

    def _retry_delay(
        self, attempt: int, retry_after: Optional[float]
    ) -> float:
        """Sleep before retry ``attempt``: server hint, else backoff+jitter."""
        if retry_after is not None and retry_after >= 0:
            return retry_after
        delay = min(self._backoff_cap, self._backoff * (2.0 ** attempt))
        if self._jitter:
            delay *= (1.0 - self._jitter) + self._jitter * self._rng.random()
        return delay

    def _request_once(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Dict[str, object]:
        payload = json.dumps(body).encode("utf-8") if body else None
        headers = {"Content-Type": "application/json"} if payload else {}
        if self._digest is not None:
            headers[DIGEST_HEADER] = self._digest
        reused = getattr(self._local, "connection", None) is not None
        retry_after: Optional[float] = None
        try:
            try:
                response = self._exchange(method, path, payload, headers)
            except (OSError, HTTPException):
                if not reused:
                    raise
                # A reused keep-alive connection the server has since
                # closed: reconnect and re-send once.  Every request
                # kind is a pure read, so the re-send cannot double any
                # effect.
                self._drop_connection()
                obs.count("serve.client.reconnects")
                response = self._exchange(method, path, payload, headers)
            raw = response.read()
            status = response.status
            hint = response.getheader("Retry-After")
            if hint is not None:
                try:
                    retry_after = float(hint)
                except ValueError:
                    retry_after = None
            if response.will_close:
                self._drop_connection()
        except (OSError, HTTPException) as error:
            self._drop_connection()
            raise ServeClientError(
                f"cannot reach {self._host}:{self._port}: {error}"
            ) from error
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._drop_connection()
            raise ServeClientError(
                f"server returned invalid JSON (status {status}): {error}",
                status=status,
            ) from None
        if status >= 300:
            message = (
                decoded.get("error", raw.decode("utf-8", "replace"))
                if isinstance(decoded, dict)
                else raw.decode("utf-8", "replace")
            )
            raise ServeClientError(
                f"HTTP {status}: {message}",
                status=status,
                retry_after=retry_after,
            )
        if not isinstance(decoded, dict):
            raise ServeClientError(
                f"server returned a non-object payload: {decoded!r}",
                status=status,
            )
        return decoded

    def _exchange(
        self,
        method: str,
        path: str,
        payload: Optional[bytes],
        headers: Dict[str, str],
    ):
        """Send one request on this thread's kept-alive connection;
        returns the (unread) response."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._local.connection = connection
            with self._connections_lock:
                self._connections.append(connection)
        connection.request(method, path, body=payload, headers=headers)
        return connection.getresponse()

    # ------------------------------------------------------------------
    # typed queries
    # ------------------------------------------------------------------
    def query(self, request: Dict[str, object]) -> Dict[str, object]:
        """Send a raw request dict to ``POST /query``."""
        return self._request("POST", "/query", request)

    def healthz(self) -> Dict[str, object]:
        """The server's health document (``GET /healthz``)."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        """The metrics document (``GET /metrics``): histograms + counters."""
        return self._request("GET", "/metrics")

    def place(
        self,
        k: int,
        algorithm: str = "composite-greedy",
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> Dict[str, object]:
        """Run a placement algorithm server-side."""
        request: Dict[str, object] = {
            "kind": "place",
            "algorithm": algorithm,
            "k": k,
        }
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        if seed is not None:
            request["seed"] = seed
        return self.query(request)

    def evaluate(
        self,
        placements: Sequence[Sequence[NodeId]],
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
    ) -> List[float]:
        """Score placements; returns attracted-customer totals in order."""
        request: Dict[str, object] = {
            "kind": "evaluate",
            "placements": [
                [encode_site(site) for site in placement]
                for placement in placements
            ],
        }
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        response = self.query(request)
        totals = response.get("totals")
        if not isinstance(totals, list):
            raise ServeClientError(
                f"evaluate response has no totals: {response!r}"
            )
        return [float(total) for total in totals]

    def what_if(
        self,
        placement: Sequence[NodeId],
        add: Optional[NodeId] = None,
        remove: Optional[NodeId] = None,
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
    ) -> Dict[str, object]:
        """Marginal effect of one add/remove on a placement."""
        request: Dict[str, object] = {
            "kind": "what_if",
            "placement": [encode_site(site) for site in placement],
        }
        if add is not None:
            request["add"] = encode_site(add)
        if remove is not None:
            request["remove"] = encode_site(remove)
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        return self.query(request)

    def top_gains(
        self,
        placement: Sequence[NodeId] = (),
        limit: int = 10,
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
    ) -> Dict[str, object]:
        """Best next intersections given a committed placement."""
        request: Dict[str, object] = {
            "kind": "top_gains",
            "placement": [encode_site(site) for site in placement],
            "limit": limit,
        }
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        return self.query(request)


__all__ = ["ServeClient"]
