"""Typed synchronous client for the placement-query server.

Stdlib-only (``http.client``); one :class:`ServeClient` wraps one
``host:port`` and exposes a method per request kind, returning the
server's decoded JSON payload.  Non-2xx responses raise
:class:`~repro.errors.ServeClientError` with the HTTP status attached
(429/503 responses additionally mark themselves retryable and carry the
server's ``Retry-After`` hint), and transport failures raise the same
error with ``status=None`` — callers handle exactly one exception type.

Retry is **opt-in**: with ``retries > 0`` the client re-sends a request
after a retryable failure (transport error, 429, 503), sleeping the
server's ``Retry-After`` hint when one was sent and otherwise an
exponentially growing, jittered backoff.  The jitter RNG is seeded and
the sleeper injectable, so tests can assert the exact backoff schedule
without waiting for it.

The client is deliberately synchronous: benchmark and CI drivers spread
instances across threads to generate concurrency, while the server
stays a single asyncio loop.
"""

from __future__ import annotations

import json
import random
import time
from http.client import HTTPConnection, HTTPException
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from ..errors import ServeClientError, ServeRequestError
from ..graphs import NodeId
from .engine import encode_site


class ServeClient:
    """HTTP client for one :class:`~repro.serve.server.PlacementServer`.

    Parameters
    ----------
    host, port:
        The server address.
    timeout:
        Socket timeout in seconds for each request attempt.
    retries:
        Extra attempts after a retryable failure (0 = fail fast, the
        default).  Only transport errors and 429/503 responses are
        retried — statuses that mean the server did *not* process the
        request — so retrying is safe even for non-idempotent kinds.
    backoff, backoff_cap:
        Exponential backoff base and ceiling in seconds: attempt ``i``
        sleeps ``min(cap, backoff * 2**i)`` (before jitter), unless the
        server sent a ``Retry-After`` hint, which is honored verbatim.
    jitter:
        Fraction of each backoff randomized away (0 = deterministic
        full backoff, 0.5 = sleep 50-100% of it) to de-synchronize
        retrying clients.
    retry_seed:
        Seed for the jitter RNG (seeded so overload tests replay).
    sleep:
        Injected sleeper (defaults to ``time.sleep``); tests pass a
        recorder to assert the schedule without real waiting.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        jitter: float = 0.5,
        retry_seed: int = 0,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        if retries < 0:
            raise ServeRequestError(f"retries must be >= 0, got {retries}")
        if not (0.0 <= jitter <= 1.0):
            raise ServeRequestError(
                f"jitter must be in [0, 1], got {jitter}"
            )
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = retries
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._jitter = jitter
        self._rng = random.Random(retry_seed)
        self._sleep = sleep if sleep is not None else time.sleep

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Dict[str, object]:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServeClientError as error:
                if attempt >= self._retries or not error.retryable:
                    raise
                self._sleep(self._retry_delay(attempt, error.retry_after))
                obs.count("serve.client.retries")
                attempt += 1

    def _retry_delay(
        self, attempt: int, retry_after: Optional[float]
    ) -> float:
        """Sleep before retry ``attempt``: server hint, else backoff+jitter."""
        if retry_after is not None and retry_after >= 0:
            return retry_after
        delay = min(self._backoff_cap, self._backoff * (2.0 ** attempt))
        if self._jitter:
            delay *= (1.0 - self._jitter) + self._jitter * self._rng.random()
        return delay

    def _request_once(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Dict[str, object]:
        connection = HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        retry_after: Optional[float] = None
        try:
            payload = json.dumps(body).encode("utf-8") if body else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
            hint = response.getheader("Retry-After")
            if hint is not None:
                try:
                    retry_after = float(hint)
                except ValueError:
                    retry_after = None
        except (OSError, HTTPException) as error:
            raise ServeClientError(
                f"cannot reach {self._host}:{self._port}: {error}"
            ) from error
        finally:
            connection.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeClientError(
                f"server returned invalid JSON (status {status}): {error}",
                status=status,
            ) from None
        if status >= 300:
            message = (
                decoded.get("error", raw.decode("utf-8", "replace"))
                if isinstance(decoded, dict)
                else raw.decode("utf-8", "replace")
            )
            raise ServeClientError(
                f"HTTP {status}: {message}",
                status=status,
                retry_after=retry_after,
            )
        if not isinstance(decoded, dict):
            raise ServeClientError(
                f"server returned a non-object payload: {decoded!r}",
                status=status,
            )
        return decoded

    # ------------------------------------------------------------------
    # typed queries
    # ------------------------------------------------------------------
    def query(self, request: Dict[str, object]) -> Dict[str, object]:
        """Send a raw request dict to ``POST /query``."""
        return self._request("POST", "/query", request)

    def healthz(self) -> Dict[str, object]:
        """The server's health document (``GET /healthz``)."""
        return self._request("GET", "/healthz")

    def place(
        self,
        k: int,
        algorithm: str = "composite-greedy",
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> Dict[str, object]:
        """Run a placement algorithm server-side."""
        request: Dict[str, object] = {
            "kind": "place",
            "algorithm": algorithm,
            "k": k,
        }
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        if seed is not None:
            request["seed"] = seed
        return self.query(request)

    def evaluate(
        self,
        placements: Sequence[Sequence[NodeId]],
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
    ) -> List[float]:
        """Score placements; returns attracted-customer totals in order."""
        request: Dict[str, object] = {
            "kind": "evaluate",
            "placements": [
                [encode_site(site) for site in placement]
                for placement in placements
            ],
        }
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        response = self.query(request)
        totals = response.get("totals")
        if not isinstance(totals, list):
            raise ServeClientError(
                f"evaluate response has no totals: {response!r}"
            )
        return [float(total) for total in totals]

    def what_if(
        self,
        placement: Sequence[NodeId],
        add: Optional[NodeId] = None,
        remove: Optional[NodeId] = None,
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
    ) -> Dict[str, object]:
        """Marginal effect of one add/remove on a placement."""
        request: Dict[str, object] = {
            "kind": "what_if",
            "placement": [encode_site(site) for site in placement],
        }
        if add is not None:
            request["add"] = encode_site(add)
        if remove is not None:
            request["remove"] = encode_site(remove)
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        return self.query(request)

    def top_gains(
        self,
        placement: Sequence[NodeId] = (),
        limit: int = 10,
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
    ) -> Dict[str, object]:
        """Best next intersections given a committed placement."""
        request: Dict[str, object] = {
            "kind": "top_gains",
            "placement": [encode_site(site) for site in placement],
            "limit": limit,
        }
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        return self.query(request)


__all__ = ["ServeClient"]
