"""Typed synchronous client for the placement-query server.

Stdlib-only (``http.client``); one :class:`ServeClient` wraps one
``host:port`` and exposes a method per request kind, returning the
server's decoded JSON payload.  Non-2xx responses raise
:class:`~repro.errors.ServeClientError` with the HTTP status attached
(429/503 responses additionally mark themselves retryable), and
transport failures raise the same error with ``status=None`` — callers
handle exactly one exception type.

The client is deliberately synchronous: benchmark and CI drivers spread
instances across threads to generate concurrency, while the server
stays a single asyncio loop.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from typing import Dict, List, Optional, Sequence

from ..errors import ServeClientError
from ..graphs import NodeId
from .engine import encode_site


class ServeClient:
    """HTTP client for one :class:`~repro.serve.server.PlacementServer`.

    Parameters
    ----------
    host, port:
        The server address.
    timeout:
        Socket timeout in seconds for each request.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Dict[str, object]:
        connection = HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        except (OSError, HTTPException) as error:
            raise ServeClientError(
                f"cannot reach {self._host}:{self._port}: {error}"
            ) from error
        finally:
            connection.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeClientError(
                f"server returned invalid JSON (status {status}): {error}",
                status=status,
            ) from None
        if status >= 300:
            message = (
                decoded.get("error", raw.decode("utf-8", "replace"))
                if isinstance(decoded, dict)
                else raw.decode("utf-8", "replace")
            )
            raise ServeClientError(
                f"HTTP {status}: {message}", status=status
            )
        if not isinstance(decoded, dict):
            raise ServeClientError(
                f"server returned a non-object payload: {decoded!r}",
                status=status,
            )
        return decoded

    # ------------------------------------------------------------------
    # typed queries
    # ------------------------------------------------------------------
    def query(self, request: Dict[str, object]) -> Dict[str, object]:
        """Send a raw request dict to ``POST /query``."""
        return self._request("POST", "/query", request)

    def healthz(self) -> Dict[str, object]:
        """The server's health document (``GET /healthz``)."""
        return self._request("GET", "/healthz")

    def place(
        self,
        k: int,
        algorithm: str = "composite-greedy",
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> Dict[str, object]:
        """Run a placement algorithm server-side."""
        request: Dict[str, object] = {
            "kind": "place",
            "algorithm": algorithm,
            "k": k,
        }
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        if seed is not None:
            request["seed"] = seed
        return self.query(request)

    def evaluate(
        self,
        placements: Sequence[Sequence[NodeId]],
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
    ) -> List[float]:
        """Score placements; returns attracted-customer totals in order."""
        request: Dict[str, object] = {
            "kind": "evaluate",
            "placements": [
                [encode_site(site) for site in placement]
                for placement in placements
            ],
        }
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        response = self.query(request)
        totals = response.get("totals")
        if not isinstance(totals, list):
            raise ServeClientError(
                f"evaluate response has no totals: {response!r}"
            )
        return [float(total) for total in totals]

    def what_if(
        self,
        placement: Sequence[NodeId],
        add: Optional[NodeId] = None,
        remove: Optional[NodeId] = None,
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
    ) -> Dict[str, object]:
        """Marginal effect of one add/remove on a placement."""
        request: Dict[str, object] = {
            "kind": "what_if",
            "placement": [encode_site(site) for site in placement],
        }
        if add is not None:
            request["add"] = encode_site(add)
        if remove is not None:
            request["remove"] = encode_site(remove)
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        return self.query(request)

    def top_gains(
        self,
        placement: Sequence[NodeId] = (),
        limit: int = 10,
        utility: Optional[dict] = None,
        backend: Optional[str] = None,
    ) -> Dict[str, object]:
        """Best next intersections given a committed placement."""
        request: Dict[str, object] = {
            "kind": "top_gains",
            "placement": [encode_site(site) for site in placement],
            "limit": limit,
        }
        if utility is not None:
            request["utility"] = utility
        if backend is not None:
            request["backend"] = backend
        return self.query(request)


__all__ = ["ServeClient"]
