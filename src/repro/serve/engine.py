"""Placement-query engine: typed requests against one compiled artifact.

:class:`QueryEngine` answers four request kinds against a
:class:`~repro.serve.artifacts.ScenarioArtifact`:

* ``place`` — run a registered placement algorithm for a budget ``k``;
* ``evaluate`` — score one or more explicit placements
  (:func:`~repro.core.kernel.evaluate_placement_many`);
* ``what_if`` — marginal effect of adding/removing one site to/from a
  placement (one batched evaluation of base + variant);
* ``top_gains`` — the best next intersections given a committed
  placement, ranked by marginal gain.

The engine is deliberately a **thin veneer**: every number it returns
comes from the same library calls a direct user would make
(``algorithm.place``, ``evaluate_placement_many``, evaluator gain
scans), so served results are bit-identical to library results on both
backends — the differential tests in ``tests/serve`` pin exactly that.

Requests may override the artifact's utility (``{"utility": {"name",
"threshold"}}``); the engine caches one
:meth:`~repro.core.scenario.Scenario.with_utility` clone per distinct
utility so the kernel's per-scenario static cache is reused across
requests.  Responses for identical requests are served from a bounded
LRU keyed by the canonical request JSON, with hit/miss counters wired
into :mod:`repro.obs`.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..obs import trace as obs_trace
from ..algorithms import algorithm_by_name, registered_algorithms
from ..core.kernel import (
    ArrayEvaluator,
    evaluate_placement_many,
    make_evaluator,
)
from ..core.scenario import Scenario
from ..errors import ReproError, ServeFaultError, ServeRequestError
from ..graphs import NodeId
from ..graphs.io import _decode_id, _encode_id
from ..reliability.faults import FaultInjector
from .artifacts import ScenarioArtifact, utility_from_spec, utility_to_spec

#: Request kinds the engine understands.
REQUEST_KINDS = ("place", "evaluate", "what_if", "top_gains")

#: Algorithms with a stochastic or exponential-time select are still
#: callable, but ``place`` requests must opt in explicitly.
_DEFAULT_ALGORITHM = "composite-greedy"


def decode_site(raw: object) -> NodeId:
    """Decode one JSON-carried intersection id (lists become tuples)."""
    return _decode_id(raw)


def encode_site(site: NodeId) -> object:
    """Encode one intersection id for a JSON response."""
    return _encode_id(site)


def _decode_placement(raw: object, field: str) -> List[NodeId]:
    if not isinstance(raw, (list, tuple)):
        raise ServeRequestError(
            f"request field {field!r} must be a list of sites, got "
            f"{type(raw).__name__}"
        )
    return [_decode_id(site) for site in raw]


class QueryEngine:
    """Synchronous query dispatcher over one compiled scenario artifact.

    Parameters
    ----------
    artifact:
        The compiled scenario to serve.
    cache_size:
        Maximum retained responses in the per-engine LRU (0 disables
        result caching).
    fault_injector:
        Optional :class:`~repro.reliability.FaultInjector`; its
        request-level rates drive :meth:`check_fault`.
    """

    def __init__(
        self,
        artifact: ScenarioArtifact,
        cache_size: int = 256,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if cache_size < 0:
            raise ServeRequestError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        self._artifact = artifact
        self._cache_size = cache_size
        self._cache: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._injector = fault_injector
        self._request_index = 0
        self._last_fault_index = -1
        self._utilities: Dict[Tuple[str, float], Scenario] = {}

    @property
    def artifact(self) -> ScenarioArtifact:
        """The artifact this engine serves."""
        return self._artifact

    @property
    def scenario(self) -> Scenario:
        """The artifact's scenario (default utility)."""
        return self._artifact.scenario

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def check_fault(self) -> float:
        """Fault decision for the next admitted request.

        Returns the injected stall in seconds (0.0 normally); raises
        :class:`~repro.errors.ServeFaultError` when the injector decides
        this request fails.  The caller (the HTTP server) applies the
        stall asynchronously before dispatching to :meth:`handle`.
        """
        index = self._request_index
        self._request_index += 1
        self._last_fault_index = index
        if self._injector is None:
            return 0.0
        fail, delay = self._injector.request_fault(index)
        if fail:
            raise ServeFaultError(
                f"injected fault on request #{index}"
            )
        return delay

    def corrupt_reply(self) -> bool:
        """Whether the reply to the last :meth:`check_fault` request is garbled.

        Consulted by the HTTP server *after* the handler ran, so the
        corruption models a reply mangled in flight (the engine's own
        result stays correct); keyed to the same request index as
        :meth:`check_fault`, so a replayed request replays its fate.
        """
        if self._injector is None or self._last_fault_index < 0:
            return False
        return self._injector.request_corrupt(self._last_fault_index)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one request dict (the JSON body of ``POST /query``).

        When a distributed trace is active (the serving layer set the
        context in :mod:`repro.obs.trace`), the call is timed on the
        trace recorder's injected clock and lands as an
        ``engine.handle`` span under the worker's request span; the
        untraced path pays a single context-variable check.
        """
        ctx = obs_trace.current()
        if ctx is None:
            return self._handle(request)
        clock = ctx.recorder.clock
        t_start = clock.now()
        status = "ok"
        try:
            response = self._handle(request)
        except ReproError as error:
            status = type(error).__name__
            raise
        finally:
            obs_trace.record(
                "engine.handle",
                t_start,
                clock.now(),
                {"kind": str(request.get("kind")), "status": status}
                if isinstance(request, dict)
                else {"status": status},
                context=ctx,
            )
        return response

    def _handle(self, request: Dict[str, object]) -> Dict[str, object]:
        if not isinstance(request, dict):
            raise ServeRequestError("request body must be a JSON object")
        kind = request.get("kind")
        if kind not in REQUEST_KINDS:
            raise ServeRequestError(
                f"unknown request kind {kind!r}; expected one of "
                f"{REQUEST_KINDS}"
            )
        obs.count(f"serve.requests.{kind}")
        key = self._cache_key(request)
        if key is not None:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                obs.count("serve.cache.hits")
                return dict(cached)
            obs.count("serve.cache.misses")
        handler = getattr(self, f"_handle_{kind}")
        response: Dict[str, object] = handler(request)
        response["kind"] = kind
        response["digest"] = self._artifact.digest
        if key is not None:
            self._cache[key] = dict(response)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return response

    def _cache_key(self, request: Dict[str, object]) -> Optional[str]:
        if self._cache_size == 0:
            return None
        try:
            return json.dumps(
                request, sort_keys=True, separators=(",", ":")
            )
        except (TypeError, ValueError):
            raise ServeRequestError(
                "request is not JSON-serializable"
            ) from None

    # ------------------------------------------------------------------
    # per-request scenario (utility overrides)
    # ------------------------------------------------------------------
    def scenario_for(self, request: Dict[str, object]) -> Scenario:
        """The scenario a request runs against (utility override aware)."""
        raw = request.get("utility")
        if raw is None:
            return self._artifact.scenario
        if not isinstance(raw, dict):
            raise ServeRequestError(
                f"request field 'utility' must be an object, got "
                f"{type(raw).__name__}"
            )
        try:
            utility = utility_from_spec(raw)
        except ReproError as error:
            raise ServeRequestError(str(error)) from None
        key = (type(utility).__name__, utility.threshold)
        clone = self._utilities.get(key)
        if clone is None:
            clone = self._artifact.scenario.with_utility(utility)
            self._utilities[key] = clone
            obs.count("serve.utility_clones")
        return clone

    def _backend(self, request: Dict[str, object]) -> Optional[str]:
        backend = request.get("backend")
        if backend is None:
            return None
        if backend not in ("python", "numpy"):
            raise ServeRequestError(
                f"unknown backend {backend!r}; expected 'python' or 'numpy'"
            )
        return str(backend)

    # ------------------------------------------------------------------
    # request kinds
    # ------------------------------------------------------------------
    def _handle_place(self, request: Dict[str, object]) -> Dict[str, object]:
        scenario = self.scenario_for(request)
        backend = self._backend(request)
        name = request.get("algorithm", _DEFAULT_ALGORITHM)
        if not isinstance(name, str):
            raise ServeRequestError("request field 'algorithm' must be a string")
        k = request.get("k")
        if not isinstance(k, int) or isinstance(k, bool) or k < 0:
            raise ServeRequestError(
                f"request field 'k' must be a non-negative integer, got {k!r}"
            )
        kwargs: Dict[str, object] = {}
        if backend is not None:
            kwargs["backend"] = backend
        seed = request.get("seed")
        if seed is not None:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ServeRequestError("request field 'seed' must be an integer")
            kwargs["seed"] = seed
        try:
            algorithm = algorithm_by_name(name, **kwargs)
        except TypeError as error:
            raise ServeRequestError(
                f"algorithm {name!r} does not accept "
                f"{sorted(kwargs)}: {error}"
            ) from None
        except ReproError as error:
            raise ServeRequestError(
                f"{error}; known algorithms: {list(registered_algorithms())}"
            ) from None
        try:
            placement = algorithm.place(scenario, k)
        except ReproError as error:
            raise ServeRequestError(str(error)) from None
        return {
            "raps": [encode_site(site) for site in placement.raps],
            "attracted": placement.attracted,
            "algorithm": placement.algorithm,
            "utility": utility_to_spec(scenario.utility),
        }

    def evaluate_totals(
        self,
        placements: Sequence[Sequence[NodeId]],
        utility: Optional[Dict[str, object]] = None,
        backend: Optional[str] = None,
    ) -> List[float]:
        """Score placements verbatim via ``evaluate_placement_many``.

        The shared entry point for the ``evaluate`` request kind and the
        micro-batcher: one packed-index batch call, no result caching,
        no reordering-sensitive state, so batched and direct calls agree
        bit-for-bit.
        """
        request: Dict[str, object] = {"kind": "evaluate"}
        if utility is not None:
            request["utility"] = utility
        scenario = self.scenario_for(request)
        try:
            return evaluate_placement_many(scenario, placements, backend)
        except ReproError as error:
            raise ServeRequestError(str(error)) from None

    def _handle_evaluate(
        self, request: Dict[str, object]
    ) -> Dict[str, object]:
        raw = request.get("placements")
        if not isinstance(raw, list) or not raw:
            raise ServeRequestError(
                "request field 'placements' must be a non-empty list of "
                "site lists"
            )
        placements = [
            _decode_placement(entry, f"placements[{index}]")
            for index, entry in enumerate(raw)
        ]
        totals = self.evaluate_totals(
            placements,
            utility=request.get("utility"),  # type: ignore[arg-type]
            backend=self._backend(request),
        )
        return {"totals": totals}

    def _handle_what_if(
        self, request: Dict[str, object]
    ) -> Dict[str, object]:
        base = _decode_placement(request.get("placement"), "placement")
        add = request.get("add")
        remove = request.get("remove")
        if (add is None) == (remove is None):
            raise ServeRequestError(
                "what_if needs exactly one of 'add' or 'remove'"
            )
        if add is not None:
            site = decode_site(add)
            if site in base:
                raise ServeRequestError(
                    f"site {site!r} is already in the placement"
                )
            variant = base + [site]
        else:
            site = decode_site(remove)
            if site not in base:
                raise ServeRequestError(
                    f"site {site!r} is not in the placement"
                )
            variant = [node for node in base if node != site]
        totals = self.evaluate_totals(
            [base, variant],
            utility=request.get("utility"),  # type: ignore[arg-type]
            backend=self._backend(request),
        )
        return {
            "site": encode_site(site),
            "action": "add" if add is not None else "remove",
            "base": totals[0],
            "variant": totals[1],
            "delta": totals[1] - totals[0],
        }

    def _handle_top_gains(
        self, request: Dict[str, object]
    ) -> Dict[str, object]:
        scenario = self.scenario_for(request)
        backend = self._backend(request)
        placed = _decode_placement(request.get("placement", []), "placement")
        limit = request.get("limit", 10)
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise ServeRequestError(
                f"request field 'limit' must be a positive integer, got "
                f"{limit!r}"
            )
        evaluator = make_evaluator(scenario, backend)
        try:
            for site in placed:
                evaluator.place(site)
        except ReproError as error:
            raise ServeRequestError(str(error)) from None
        sites = scenario.candidate_sites
        if isinstance(evaluator, ArrayEvaluator):
            gains = evaluator.gains(sites).tolist()
        else:
            gains = [evaluator.gain(site) for site in sites]
        ranked = sorted(
            (
                (order, site, gain)
                for order, (site, gain) in enumerate(zip(sites, gains))
                if gain > 0.0 and not evaluator.is_placed(site)
            ),
            # Candidate-site order breaks gain ties, matching the greedy
            # scans' deterministic argmax.
            key=lambda item: (-item[2], item[0]),
        )
        return {
            "gains": [
                {"site": encode_site(site), "gain": gain}
                for _, site, gain in ranked[:limit]
            ],
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Current LRU occupancy (for ``/healthz`` and tests)."""
        return {"entries": len(self._cache), "capacity": self._cache_size}


__all__ = [
    "QueryEngine",
    "REQUEST_KINDS",
    "decode_site",
    "encode_site",
]
