"""Partial-enumeration greedy — a dial between greedy and exact.

Classic result (Khuller-Moss-Naor / Nemhauser et al.): enumerate every
subset of size ``enumerate_size`` as a seed, complete each greedily to
``k`` sites, and return the best completion.  For monotone submodular
objectives the guarantee strengthens with the seed size (seed 3 gives
the clean `1 − 1/e` bound for the budgeted variant); in practice even
seed 2 repairs most greedy pathologies — including the paper's Fig. 4
example, where plain greedy locks onto V3 and never recovers.

Cost: ``C(n, enumerate_size)`` greedy completions, so this sits between
:class:`MarginalGainGreedy` (seed 0) and exact search.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional, Tuple

from ..core import IncrementalEvaluator, Scenario
from ..errors import InfeasiblePlacementError, PlacementError
from ..graphs import NodeId
from .base import PlacementAlgorithm, register

DEFAULT_WORK_LIMIT = 250_000


@register("partial-enumeration")
class PartialEnumerationGreedy(PlacementAlgorithm):
    """Greedy completions over all small seed subsets."""

    name = "partial-enumeration"

    def __init__(
        self, enumerate_size: int = 2, work_limit: int = DEFAULT_WORK_LIMIT
    ) -> None:
        if enumerate_size < 1:
            raise InfeasiblePlacementError(
                f"enumerate_size must be >= 1, got {enumerate_size}"
            )
        self._enumerate_size = enumerate_size
        self._work_limit = work_limit

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Greedy completions over all seed subsets; return the best."""
        useful = [
            site
            for site in scenario.candidate_sites
            if scenario.coverage.covering(site)
        ]
        if k == 0 or not useful:
            return []
        seed_size = min(self._enumerate_size, k, len(useful))
        seeds = math.comb(len(useful), seed_size)
        if seeds > self._work_limit:
            raise InfeasiblePlacementError(
                f"partial enumeration over C({len(useful)}, {seed_size}) = "
                f"{seeds} seeds exceeds the work limit {self._work_limit}"
            )
        best_sites: Optional[List[NodeId]] = None
        best_value = -1.0
        for seed in itertools.combinations(useful, seed_size):
            sites, value = self._complete(scenario, list(seed), k)
            if value > best_value:
                best_sites, best_value = sites, value
        if best_sites is None:  # unreachable: seeds is >= 1 combination
            raise PlacementError(
                "partial enumeration evaluated no seed subset"
            )
        return best_sites

    def _complete(
        self, scenario: Scenario, seed: List[NodeId], k: int
    ) -> Tuple[List[NodeId], float]:
        evaluator = IncrementalEvaluator(scenario)
        for site in seed:
            evaluator.place(site)
        chosen = list(seed)
        while len(chosen) < k:
            best_site: Optional[NodeId] = None
            best_gain = 0.0
            for site in scenario.candidate_sites:
                if evaluator.is_placed(site):
                    continue
                gain = evaluator.gain(site)
                if gain > best_gain:
                    best_site, best_gain = site, gain
            if best_site is None:
                break
            evaluator.place(best_site)
            chosen.append(best_site)
        return chosen, evaluator.attracted
