"""Placement algorithms: the paper's Algorithms 1-2, baselines, and
engineering extensions (marginal/lazy greedy, exhaustive optimal).

The Manhattan-grid Algorithms 3-4 live in :mod:`repro.manhattan` because
they depend on the grid scenario semantics.
"""

from .base import (
    PlacementAlgorithm,
    algorithm_by_name,
    register,
    registered_algorithms,
    validate_budget,
)
from .baselines import MaxCardinality, MaxCustomers, MaxVehicles, RandomPlacement
from .branch_and_bound import BranchAndBoundOptimal
from .composite_greedy import CompositeGreedy
from .exhaustive import ExhaustiveOptimal
from .greedy_coverage import GreedyCoverage
from .lazy_greedy import LazyGreedy
from .local_search import SwapLocalSearch
from .marginal_greedy import MarginalGainGreedy
from .partial_enumeration import PartialEnumerationGreedy
from .sieve_stream import SieveStreamState, SieveStreaming

__all__ = [
    "BranchAndBoundOptimal",
    "CompositeGreedy",
    "ExhaustiveOptimal",
    "GreedyCoverage",
    "LazyGreedy",
    "MarginalGainGreedy",
    "SwapLocalSearch",
    "MaxCardinality",
    "MaxCustomers",
    "PartialEnumerationGreedy",
    "MaxVehicles",
    "PlacementAlgorithm",
    "RandomPlacement",
    "SieveStreamState",
    "SieveStreaming",
    "algorithm_by_name",
    "register",
    "registered_algorithms",
    "validate_budget",
]
