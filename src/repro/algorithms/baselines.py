"""The paper's four comparison baselines (Section V-B).

* :class:`MaxCardinality` — top-``k`` intersections by number of passing
  traffic flows;
* :class:`MaxVehicles` — top-``k`` intersections by passing traffic
  volume (the paper counts buses; volumes are proportional);
* :class:`MaxCustomers` — top-``k`` intersections by customers a *single*
  RAP there would attract (equivalent to the optimal solution at k = 1,
  as the paper notes — but it ignores interactions between RAPs);
* :class:`RandomPlacement` — uniform-random intersections within the
  ``D x D`` square centered on the shop.

All ranking baselines break ties by candidate-site order; the random
baseline takes an explicit seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core import Scenario
from ..graphs import BoundingBox, NodeId
from .base import PlacementAlgorithm, register


def _top_k(scenario: Scenario, k: int, score) -> List[NodeId]:
    """Top-k candidate sites by ``score`` (desc), site order on ties."""
    ranked = sorted(
        range(len(scenario.candidate_sites)),
        key=lambda i: (-score(scenario.candidate_sites[i]), i),
    )
    return [scenario.candidate_sites[i] for i in ranked[:k]]


@register("max-cardinality")
class MaxCardinality(PlacementAlgorithm):
    """Rank intersections by the number of passing traffic flows."""

    name = "max-cardinality"

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Top-k intersections by passing traffic-flow count."""
        flows = scenario.flows

        def passing_flows(site: NodeId) -> int:
            return sum(1 for flow in flows if flow.passes(site))

        return _top_k(scenario, k, passing_flows)


@register("max-vehicles")
class MaxVehicles(PlacementAlgorithm):
    """Rank intersections by passing traffic volume (vehicles/buses)."""

    name = "max-vehicles"

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Top-k intersections by passing traffic volume."""
        flows = scenario.flows

        def passing_volume(site: NodeId) -> float:
            return sum(flow.volume for flow in flows if flow.passes(site))

        return _top_k(scenario, k, passing_volume)


@register("max-customers")
class MaxCustomers(PlacementAlgorithm):
    """Rank intersections by single-RAP attracted customers.

    The score of a site is the number of customers a lone RAP there would
    attract; unlike the greedy algorithms the scores are *not* updated as
    RAPs are placed, so overlapping sites waste budget.
    """

    name = "max-customers"

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Top-k intersections by static single-RAP customer count."""
        utility = scenario.utility
        coverage = scenario.coverage
        flows = scenario.flows

        def single_rap_customers(site: NodeId) -> float:
            total = 0.0
            for entry in coverage.covering(site):
                flow = flows[entry.flow_index]
                total += (
                    utility.probability(entry.detour, flow.attractiveness)
                    * flow.volume
                )
            return total

        return _top_k(scenario, k, single_rap_customers)


@register("random")
class RandomPlacement(PlacementAlgorithm):
    """Uniform-random placement within the ``D x D`` square at the shop.

    When the square contains fewer than ``k`` candidate sites the
    remainder is drawn uniformly from the sites outside it, so the
    baseline always spends its full budget (mirroring how the paper's
    plots keep all algorithms at equal k).
    """

    name = "random"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Uniform-random sites inside the D x D square (fallback outside)."""
        shop_position = scenario.network.position(scenario.shop)
        box = BoundingBox.square_around(shop_position, scenario.utility.threshold)
        inside = scenario.sites_within(box)
        if len(inside) >= k:
            return self._rng.sample(inside, k)
        outside = [
            site for site in scenario.candidate_sites if site not in set(inside)
        ]
        extra = self._rng.sample(outside, k - len(inside))
        return inside + extra
