"""Algorithm 2 — the composite greedy solution (paper Section III-C).

Decreasing utilities break plain coverage greedy because RAPs *overlap*:
a later RAP can serve an already-covered flow better by offering a
smaller detour (paper Theorem 1: the detour distance grows along the
travel path, so the first RAP encountered always wins).  Algorithm 2
therefore evaluates two candidate intersections per step —

* **candidate i** — maximizes drivers attracted from *uncovered* flows;
* **candidate ii** — maximizes *additional* drivers from covered flows,
  by providing them smaller detour distances;

and places a RAP at whichever candidate attracts more drivers.  Theorem 2
proves a ``1 - 1/sqrt(e)`` approximation ratio for any non-increasing
utility.  Under the threshold utility candidate ii's gain is always zero,
so Algorithm 2 reduces to Algorithm 1, as the paper notes.

Backends: ``"python"`` is the per-entry reference scan.  ``"numpy"``
(default) evaluates both candidate factors for *every* site in one
batched segment reduction per step (:meth:`ArrayEvaluator.gain_splits`).
A CELF lazy scan is deliberately not used for candidate ii: the
covered-flow gain can *grow* as flows become covered, so a stale bound
on it is not an upper bound (candidate i alone would qualify — the
batched scan already prices both factors in one pass).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import obs
from ..core import IncrementalEvaluator, Scenario
from ..core.kernel import ArrayEvaluator, first_unplaced, resolve_backend
from ..graphs import NodeId
from .base import PlacementAlgorithm, register


@register("composite-greedy")
class CompositeGreedy(PlacementAlgorithm):
    """Paper Algorithm 2.

    ``stop_when_saturated`` mirrors
    :class:`~repro.algorithms.greedy_coverage.GreedyCoverage`;
    ``backend`` picks the evaluation kernel (both produce identical
    placements).
    """

    name = "composite-greedy"

    def __init__(
        self,
        stop_when_saturated: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        self._stop_when_saturated = stop_when_saturated
        self._backend = backend

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Paper Algorithm 2: best of candidate-i / candidate-ii per step."""
        backend = resolve_backend(self._backend, scenario)
        with obs.span("select", algorithm=self.name, backend=backend, k=k):
            if backend == "numpy":
                return self._select_numpy(scenario, k)
            return self._select_python(scenario, k)

    def _select_numpy(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Batched full scan: both Algorithm 2 factors in one reduction."""
        evaluator = ArrayEvaluator(scenario)
        sites = scenario.candidate_sites
        chosen: List[NodeId] = []
        rounds = 0
        for _ in range(k):
            rounds += 1
            uncovered, covered = evaluator.gain_splits(sites)
            # np.argmax returns the first maximum, matching the reference
            # scan's strictly-greater-replaces tie-breaking.
            i_index = int(np.argmax(uncovered))
            ii_index = int(np.argmax(covered))
            i_gain = float(uncovered[i_index])
            ii_gain = float(covered[ii_index])
            site: Optional[NodeId] = None
            if ii_gain > i_gain:
                site = sites[ii_index]
            elif i_gain > 0.0:
                site = sites[i_index]
            if site is None:
                if self._stop_when_saturated:
                    break
                site = first_unplaced(sites, evaluator)
                if site is None:
                    break
            evaluator.place(site)
            chosen.append(site)
        if obs.active() is not None:
            obs.count_many(
                {
                    "algorithm.iterations": len(chosen),
                    "gain.evaluations": rounds * len(sites),
                    "scan.batched_rounds": rounds,
                }
            )
        return chosen

    def _select_python(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Reference implementation: per-entry scan of both factors."""
        evaluator = IncrementalEvaluator(scenario)
        sites = scenario.candidate_sites
        chosen: List[NodeId] = []
        evaluations = 0
        for _ in range(k):
            site = self._best_candidate(scenario, evaluator)
            # The reference scan prices every unplaced candidate's two
            # factors each round.
            evaluations += len(sites) - len(chosen)
            if site is None:
                if self._stop_when_saturated:
                    break
                site = first_unplaced(sites, evaluator)
                if site is None:
                    break
            evaluator.place(site)
            chosen.append(site)
        if obs.active() is not None:
            obs.count_many(
                {
                    "algorithm.iterations": len(chosen),
                    "gain.evaluations": evaluations,
                }
            )
        return chosen

    @staticmethod
    def _best_candidate(
        scenario: Scenario, evaluator: IncrementalEvaluator
    ) -> Optional[NodeId]:
        """The better of the paper's two candidate intersections.

        Ties between the candidates favour candidate i (covering new
        flows), matching the paper's presentation order; ties among
        intersections favour candidate-site order, keeping the algorithm
        deterministic.
        """
        candidate_i: Tuple[Optional[NodeId], float] = (None, 0.0)
        candidate_ii: Tuple[Optional[NodeId], float] = (None, 0.0)
        for site in scenario.candidate_sites:
            if evaluator.is_placed(site):
                continue
            uncovered_gain, covered_gain = evaluator.gain_split(site)
            if uncovered_gain > candidate_i[1]:
                candidate_i = (site, uncovered_gain)
            if covered_gain > candidate_ii[1]:
                candidate_ii = (site, covered_gain)
        if candidate_i[0] is None and candidate_ii[0] is None:
            return None
        if candidate_ii[1] > candidate_i[1]:
            return candidate_ii[0]
        return candidate_i[0]
