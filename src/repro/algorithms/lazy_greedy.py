"""Lazy (CELF) marginal-gain greedy — same output, far fewer evaluations.

The placement objective is monotone submodular, so a candidate's marginal
gain can only shrink as RAPs are placed.  CELF (Leskovec et al., 2007)
exploits this: keep candidates in a max-heap keyed by a possibly *stale*
gain; on pop, if the entry is stale, recompute and push back.  The first
fresh pop is provably the true argmax.

Tie-breaking matches :class:`MarginalGainGreedy` (candidate-site order),
so the two produce identical placements — a property the test suite
checks — while CELF typically recomputes a small fraction of gains per
step on realistic instances.

Under ``backend="numpy"`` (default) the lazy scan runs on the array
kernel: the initial heap is one batched gain reduction and every
recompute is a masked slice, compounding CELF's savings with
vectorization.  ``backend="python"`` keeps the loop-based reference.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from .. import obs
from ..core import IncrementalEvaluator, Scenario
from ..core.kernel import ArrayEvaluator, flush_celf_counters, resolve_backend
from ..graphs import NodeId
from .base import PlacementAlgorithm, register


@register("lazy-greedy")
class LazyGreedy(PlacementAlgorithm):
    """CELF-accelerated marginal-gain greedy."""

    name = "lazy-greedy"

    def __init__(self, backend: Optional[str] = None) -> None:
        #: Gain evaluations performed during the last :meth:`select` call;
        #: exposed for the ablation benchmark.
        self.evaluations = 0
        self._backend = backend

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """CELF: stale-gain max-heap, recompute on pop; same output as plain greedy."""
        backend = resolve_backend(self._backend, scenario)
        with obs.span("select", algorithm=self.name, backend=backend, k=k):
            if backend == "numpy":
                return self._select_numpy(scenario, k)
            return self._select_python(scenario, k)

    def _select_numpy(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Array-kernel CELF: batched initial scan, sliced recomputes."""
        evaluator = ArrayEvaluator(scenario)
        sites = scenario.candidate_sites
        queue = evaluator.celf_queue(sites)
        chosen: List[NodeId] = []
        round_number = 0
        while len(chosen) < k:
            popped = queue.pop_best(evaluator.gain, round_number)
            if popped is None:
                break
            evaluator.place(popped[0])
            chosen.append(popped[0])
            round_number += 1
        self.evaluations = queue.evaluations
        flush_celf_counters(queue, len(chosen))
        return chosen

    def _select_python(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Reference implementation over the pure-Python evaluator."""
        evaluator = IncrementalEvaluator(scenario)
        self.evaluations = 0
        # Heap entries: (-gain, site_order, site, round_computed).
        heap: List[Tuple[float, int, NodeId, int]] = []
        for order, site in enumerate(scenario.candidate_sites):
            gain = evaluator.gain(site)
            self.evaluations += 1
            if gain > 0:
                heapq.heappush(heap, (-gain, order, site, 0))
        chosen: List[NodeId] = []
        round_number = 0
        while heap and len(chosen) < k:
            neg_gain, order, site, computed_round = heapq.heappop(heap)
            if computed_round != round_number:
                gain = evaluator.gain(site)
                self.evaluations += 1
                if gain > 0:
                    heapq.heappush(heap, (-gain, order, site, round_number))
                continue
            if -neg_gain <= 0:
                break
            evaluator.place(site)
            chosen.append(site)
            round_number += 1
        if obs.active() is not None:
            obs.count_many(
                {
                    "algorithm.iterations": len(chosen),
                    "gain.evaluations": self.evaluations,
                }
            )
        return chosen
