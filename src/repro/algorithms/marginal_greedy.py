"""Unified marginal-gain greedy (engineering extension).

This is the "natural idea" the paper discusses before Algorithm 2: at
every step, place a RAP at the intersection with the maximum *total*
marginal gain, counting both newly covered flows and detour improvements
for covered flows in one number.

The paper's Fig. 4 walkthrough shows this policy reaching 7 attracted
drivers where the optimum is 8 — but the objective is monotone
submodular (the per-flow contribution is ``f(min detour)`` with ``f``
non-increasing), so this greedy actually carries the classic ``1 - 1/e``
guarantee, *stronger* than Algorithm 2's ``1 - 1/sqrt(e)``.  We ship it
both as a strong practical default and as an ablation partner for
Algorithm 2 (see ``benchmarks/bench_ablations.py``).

Two backends produce identical placements: ``"python"`` scans every
candidate with the pure-Python :class:`IncrementalEvaluator` (the
differential-testing reference), while ``"numpy"`` (default) runs a
CELF lazy scan over the array kernel (:mod:`repro.core.kernel`).
"""

from __future__ import annotations

from typing import List, Optional

from .. import obs
from ..core import IncrementalEvaluator, Scenario
from ..core.kernel import (
    ArrayEvaluator,
    first_unplaced,
    flush_celf_counters,
    resolve_backend,
)
from ..graphs import NodeId
from .base import PlacementAlgorithm, register


@register("marginal-greedy")
class MarginalGainGreedy(PlacementAlgorithm):
    """Greedy on total marginal gain (newly covered + improvements)."""

    name = "marginal-greedy"

    def __init__(
        self,
        stop_when_saturated: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        self._stop_when_saturated = stop_when_saturated
        self._backend = backend

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Greedy on total marginal gain (newly covered + detour improvements)."""
        backend = resolve_backend(self._backend, scenario)
        with obs.span("select", algorithm=self.name, backend=backend, k=k):
            if backend == "numpy":
                return self._select_numpy(scenario, k)
            return self._select_python(scenario, k)

    def _select_numpy(self, scenario: Scenario, k: int) -> List[NodeId]:
        """CELF lazy scan over the array kernel — same output, fewer scans."""
        evaluator = ArrayEvaluator(scenario)
        sites = scenario.candidate_sites
        queue = evaluator.celf_queue(sites)
        chosen: List[NodeId] = []
        for round_number in range(k):
            popped = queue.pop_best(evaluator.gain, round_number)
            if popped is None:
                if self._stop_when_saturated:
                    break
                fallback = first_unplaced(sites, evaluator)
                if fallback is None:
                    break
                site: NodeId = fallback
            else:
                site = popped[0]
            evaluator.place(site)
            chosen.append(site)
        flush_celf_counters(queue, len(chosen))
        return chosen

    def _select_python(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Reference implementation: exhaustive scan per step."""
        evaluator = IncrementalEvaluator(scenario)
        chosen: List[NodeId] = []
        evaluations = 0
        for _ in range(k):
            best_site: Optional[NodeId] = None
            best_gain = 0.0
            for site in scenario.candidate_sites:
                if evaluator.is_placed(site):
                    continue
                gain = evaluator.gain(site)
                evaluations += 1
                if gain > best_gain:
                    best_site, best_gain = site, gain
            if best_site is None:
                if self._stop_when_saturated:
                    break
                best_site = first_unplaced(scenario.candidate_sites, evaluator)
                if best_site is None:
                    break
            evaluator.place(best_site)
            chosen.append(best_site)
        if obs.active() is not None:
            obs.count_many(
                {
                    "algorithm.iterations": len(chosen),
                    "gain.evaluations": evaluations,
                }
            )
        return chosen
