"""Algorithm interface and registry.

Every placement algorithm turns a :class:`~repro.core.scenario.Scenario`
and a RAP budget ``k`` into an evaluated
:class:`~repro.core.placement.Placement`.  Algorithms are stateless and
reusable across scenarios; anything stochastic takes an explicit seed.

The registry maps stable string names (used by the experiment harness,
the CLI, and result tables) to factories.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Sequence

from ..core import Placement, Scenario, evaluate_placement
from ..errors import InfeasiblePlacementError, PlacementError
from ..graphs import NodeId


class PlacementAlgorithm(ABC):
    """Base class for RAP placement algorithms."""

    #: Stable identifier used in result tables and the registry.
    name: str = "abstract"

    @abstractmethod
    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Choose up to ``k`` distinct intersections for RAPs.

        Implementations may return fewer than ``k`` sites when additional
        RAPs cannot help (e.g. every flow already optimally served).
        """

    def place(self, scenario: Scenario, k: int) -> Placement:
        """Select sites and return the evaluated placement."""
        validate_budget(scenario, k)
        sites = self.select(scenario, k)
        if len(sites) > k:
            raise PlacementError(
                f"{self.name} returned {len(sites)} sites for budget k={k}"
            )
        return evaluate_placement(scenario, sites, algorithm=self.name)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def validate_budget(scenario: Scenario, k: int) -> None:
    """Shared budget sanity checks."""
    if k < 0:
        raise InfeasiblePlacementError(f"k must be non-negative, got {k}")
    if k > len(scenario.candidate_sites):
        raise InfeasiblePlacementError(
            f"k={k} exceeds the {len(scenario.candidate_sites)} candidate sites"
        )


AlgorithmFactory = Callable[..., PlacementAlgorithm]

_REGISTRY: Dict[str, AlgorithmFactory] = {}


def register(name: str) -> Callable[[AlgorithmFactory], AlgorithmFactory]:
    """Class decorator registering an algorithm factory under ``name``."""

    def decorator(factory: AlgorithmFactory) -> AlgorithmFactory:
        if name in _REGISTRY:
            raise PlacementError(f"algorithm {name!r} registered twice")
        _REGISTRY[name] = factory
        return factory

    return decorator


def algorithm_by_name(name: str, **kwargs) -> PlacementAlgorithm:
    """Instantiate a registered algorithm (kwargs go to its constructor)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise PlacementError(
            f"unknown algorithm {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def registered_algorithms() -> Sequence[str]:
    """Names of all registered algorithms, sorted."""
    return sorted(_REGISTRY)
