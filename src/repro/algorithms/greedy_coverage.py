"""Algorithm 1 — greedy weighted maximum coverage (paper Section III-B).

At each of ``k`` steps, place a RAP at the intersection attracting the
maximum drivers from *uncovered* traffic flows, then mark the flows it
reaches as covered.  Under the threshold utility this is exactly the
classic greedy for weighted maximum coverage and inherits its
``1 - 1/e`` approximation ratio (Khuller, Moss & Naor 1999).

The implementation is utility-agnostic: with a decreasing utility it
degenerates into "coverage-only" greedy (the paper's Fig. 4 discussion
shows why that is insufficient there), which makes it a useful ablation
against Algorithm 2.

The uncovered-flow gain is itself non-increasing as RAPs are placed
(placing a RAP can only cover flows or shrink best detours, both of
which remove terms), so the ``"numpy"`` backend (default) runs a CELF
lazy scan over it; ``"python"`` keeps the exhaustive reference scan.
"""

from __future__ import annotations

from typing import List, Optional

from .. import obs
from ..core import IncrementalEvaluator, Scenario
from ..core.kernel import (
    ArrayEvaluator,
    first_unplaced,
    flush_celf_counters,
    resolve_backend,
)
from ..graphs import NodeId
from .base import PlacementAlgorithm, register


@register("greedy-coverage")
class GreedyCoverage(PlacementAlgorithm):
    """Paper Algorithm 1.

    Parameters
    ----------
    stop_when_saturated:
        When True (default, matching the paper's example where "the
        algorithm terminates since all the traffic flows are covered"),
        stop early once no intersection yields positive gain.  When
        False, keep placing zero-gain RAPs until ``k`` are down
        (deterministically, in candidate order).
    backend:
        ``"numpy"`` (default) or ``"python"`` — see
        :mod:`repro.core.kernel`.  Both produce identical placements.
    """

    name = "greedy-coverage"

    def __init__(
        self,
        stop_when_saturated: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        self._stop_when_saturated = stop_when_saturated
        self._backend = backend

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Paper Algorithm 1: greedily cover uncovered flows."""
        backend = resolve_backend(self._backend, scenario)
        with obs.span("select", algorithm=self.name, backend=backend, k=k):
            if backend == "numpy":
                return self._select_numpy(scenario, k)
            return self._select_python(scenario, k)

    def _select_numpy(self, scenario: Scenario, k: int) -> List[NodeId]:
        """CELF lazy scan on the (non-increasing) uncovered-flow gain."""
        evaluator = ArrayEvaluator(scenario)
        sites = scenario.candidate_sites
        # At the empty state nothing is covered, so the uncovered-flow
        # gain equals the total gain and the precompiled seed applies.
        queue = evaluator.celf_queue(sites)

        def uncovered_gain(site: NodeId) -> float:
            return evaluator.gain_split(site)[0]

        chosen: List[NodeId] = []
        for round_number in range(k):
            popped = queue.pop_best(uncovered_gain, round_number)
            if popped is None:
                if self._stop_when_saturated:
                    break
                fallback = first_unplaced(sites, evaluator)
                if fallback is None:
                    break
                site: NodeId = fallback
            else:
                site = popped[0]
            evaluator.place(site)
            chosen.append(site)
        flush_celf_counters(queue, len(chosen))
        return chosen

    def _select_python(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Reference implementation: exhaustive scan per step."""
        evaluator = IncrementalEvaluator(scenario)
        chosen: List[NodeId] = []
        evaluations = 0
        for _ in range(k):
            best_site: Optional[NodeId] = None
            best_gain = 0.0
            for site in scenario.candidate_sites:
                if evaluator.is_placed(site):
                    continue
                uncovered_gain, _ = evaluator.gain_split(site)
                evaluations += 1
                if uncovered_gain > best_gain:
                    best_site, best_gain = site, uncovered_gain
            if best_site is None:
                if self._stop_when_saturated:
                    break
                best_site = first_unplaced(scenario.candidate_sites, evaluator)
                if best_site is None:
                    break
            evaluator.place(best_site)
            chosen.append(best_site)
        if obs.active() is not None:
            obs.count_many(
                {
                    "algorithm.iterations": len(chosen),
                    "gain.evaluations": evaluations,
                }
            )
        return chosen
