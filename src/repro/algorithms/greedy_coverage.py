"""Algorithm 1 — greedy weighted maximum coverage (paper Section III-B).

At each of ``k`` steps, place a RAP at the intersection attracting the
maximum drivers from *uncovered* traffic flows, then mark the flows it
reaches as covered.  Under the threshold utility this is exactly the
classic greedy for weighted maximum coverage and inherits its
``1 - 1/e`` approximation ratio (Khuller, Moss & Naor 1999).

The implementation is utility-agnostic: with a decreasing utility it
degenerates into "coverage-only" greedy (the paper's Fig. 4 discussion
shows why that is insufficient there), which makes it a useful ablation
against Algorithm 2.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import IncrementalEvaluator, Scenario
from ..graphs import NodeId
from .base import PlacementAlgorithm, register


@register("greedy-coverage")
class GreedyCoverage(PlacementAlgorithm):
    """Paper Algorithm 1.

    Parameters
    ----------
    stop_when_saturated:
        When True (default, matching the paper's example where "the
        algorithm terminates since all the traffic flows are covered"),
        stop early once no intersection yields positive gain.  When
        False, keep placing zero-gain RAPs until ``k`` are down
        (deterministically, in candidate order).
    """

    name = "greedy-coverage"

    def __init__(self, stop_when_saturated: bool = True) -> None:
        self._stop_when_saturated = stop_when_saturated

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Paper Algorithm 1: greedily cover uncovered flows."""
        evaluator = IncrementalEvaluator(scenario)
        chosen: List[NodeId] = []
        for _ in range(k):
            best_site: Optional[NodeId] = None
            best_gain = 0.0
            for site in scenario.candidate_sites:
                if evaluator.is_placed(site):
                    continue
                uncovered_gain, _ = evaluator.gain_split(site)
                if uncovered_gain > best_gain:
                    best_site, best_gain = site, uncovered_gain
            if best_site is None:
                if self._stop_when_saturated:
                    break
                best_site = self._first_unplaced(scenario, evaluator)
                if best_site is None:
                    break
            evaluator.place(best_site)
            chosen.append(best_site)
        return chosen

    @staticmethod
    def _first_unplaced(
        scenario: Scenario, evaluator: IncrementalEvaluator
    ) -> Optional[NodeId]:
        for site in scenario.candidate_sites:
            if not evaluator.is_placed(site):
                return site
        return None
