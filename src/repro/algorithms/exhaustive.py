"""Exhaustive optimal placement — the baseline for ratio tests.

The RAP placement problem is NP-hard (the threshold case embeds weighted
maximum coverage), so this solver only handles small instances; it
enumerates ``C(n, k)`` candidate subsets with two safeguards:

* candidates that cover no flow are discarded up front (placing there is
  never strictly better);
* an explicit work limit aborts instead of hanging on oversized inputs.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional, Sequence, Tuple

from ..core import Scenario
from ..errors import InfeasiblePlacementError, PlacementError
from ..graphs import NodeId
from .base import PlacementAlgorithm, register

DEFAULT_WORK_LIMIT = 2_000_000


@register("exhaustive")
class ExhaustiveOptimal(PlacementAlgorithm):
    """Brute-force optimal placement (for small instances and tests)."""

    name = "exhaustive"

    def __init__(self, work_limit: int = DEFAULT_WORK_LIMIT) -> None:
        self._work_limit = work_limit

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Evaluate every candidate subset of size k; return the best.

        Uses the monotonicity identity ``f(min detour over sites) = max
        over sites of f(detour)`` (the utility is non-increasing) to
        score each subset as a per-flow maximum over a precomputed
        site x flow contribution table — no per-subset evaluation
        machinery, which makes the randomized ratio tests cheap.
        """
        useful = [
            site
            for site in scenario.candidate_sites
            if scenario.coverage.covering(site)
        ]
        budget = min(k, len(useful))
        if budget == 0:
            return []
        subsets = math.comb(len(useful), budget)
        if subsets > self._work_limit:
            raise InfeasiblePlacementError(
                f"exhaustive search over C({len(useful)}, {budget}) = "
                f"{subsets} subsets exceeds the work limit {self._work_limit}"
            )
        utility = scenario.utility
        flows = scenario.flows
        coverage = scenario.coverage
        flow_count = len(flows)
        contribution: List[List[float]] = []
        for site in useful:
            row = [0.0] * flow_count
            for entry in coverage.covering(site):
                flow = flows[entry.flow_index]
                row[entry.flow_index] = (
                    utility.probability(entry.detour, flow.attractiveness)
                    * flow.volume
                )
            contribution.append(row)
        flow_range = range(flow_count)
        best: Tuple[float, Optional[Sequence[int]]] = (-1.0, None)
        for subset in itertools.combinations(range(len(useful)), budget):
            rows = [contribution[i] for i in subset]
            attracted = sum(max(row[j] for row in rows) for j in flow_range)
            if attracted > best[0]:
                best = (attracted, subset)
        if best[1] is None:  # unreachable: at least one subset is evaluated
            raise PlacementError("exhaustive search evaluated no subset")
        return [useful[i] for i in best[1]]
