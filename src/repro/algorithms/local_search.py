"""Swap local search — a polishing pass over any base placement.

Greedy placements can be improved by 1-swaps: exchange one placed RAP
for one unplaced candidate whenever that raises the attracted total.
The paper's Fig. 4 example is exactly such a case — greedy reaches
{V3, V2} (7 drivers) while the optimum {V2, V4} (8 drivers) is one swap
away.  Local search closes that gap.

For monotone submodular maximization, 1-swap-optimal solutions are
guaranteed at least half the optimum; seeded with a greedy solution the
result keeps greedy's ``1 − 1/e`` floor too (local search never makes
the seed worse).
"""

from __future__ import annotations

from typing import List, Optional

from ..core import Scenario, evaluate_placement
from ..graphs import NodeId
from .base import PlacementAlgorithm, register
from .marginal_greedy import MarginalGainGreedy


@register("local-search")
class SwapLocalSearch(PlacementAlgorithm):
    """1-swap hill climbing from a base algorithm's placement.

    Parameters
    ----------
    base:
        Algorithm producing the starting placement (default: marginal
        greedy).
    max_rounds:
        Cap on full improvement sweeps, guarding pathological instances;
        each sweep is ``O(k * |candidates| * eval)``.
    min_relative_gain:
        A swap must improve the objective by at least this relative
        margin to be taken (filters float-noise "improvements" that
        could cycle forever).
    """

    name = "local-search"

    def __init__(
        self,
        base: Optional[PlacementAlgorithm] = None,
        max_rounds: int = 20,
        min_relative_gain: float = 1e-9,
    ) -> None:
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self._base = base or MarginalGainGreedy()
        self._max_rounds = max_rounds
        self._min_relative_gain = min_relative_gain

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Base selection followed by 1-swap hill climbing to a local optimum."""
        current = list(self._base.select(scenario, k))
        # Top up with arbitrary candidates if the base saturated early —
        # extra sites cannot hurt and widen the swap neighbourhood.
        if len(current) < k:
            for site in scenario.candidate_sites:
                if len(current) >= k:
                    break
                if site not in current:
                    current.append(site)
        if not current:
            return current

        value = evaluate_placement(scenario, current).attracted
        for _ in range(self._max_rounds):
            improved = False
            for index in range(len(current)):
                best_site = current[index]
                best_value = value
                for candidate in scenario.candidate_sites:
                    if candidate in current:
                        continue
                    trial = current[:index] + [candidate] + current[index + 1:]
                    trial_value = evaluate_placement(scenario, trial).attracted
                    threshold = best_value * (1 + self._min_relative_gain)
                    if trial_value > max(threshold, best_value + 1e-12):
                        best_site = candidate
                        best_value = trial_value
                if best_site != current[index]:
                    current[index] = best_site
                    value = best_value
                    improved = True
            if not improved:
                break
        return current
