"""Sieve-streaming placement: one pass over candidates, online updates.

The offline algorithms scan every candidate site per selection round.
A streaming deployment cannot: candidate sites (and, online, traffic
flows) arrive over time, and the placement must be maintained without
rescanning the full candidate set.  :class:`SieveStreaming` implements
the sieve-streaming algorithm of Badanidiyuru et al. (*Streaming
submodular maximization: massive data summarization on the fly*, KDD
2014): maintain a geometric grid of guesses ``v = (1+eps)^i`` for the
optimum, one candidate set per guess, and admit an arriving site into
set ``S_v`` when its marginal gain clears the sieve threshold

    gain(site | S_v) >= (v/2 - f(S_v)) / (k - |S_v|).

By Theorem 6 of that paper the best sieve is a ``(1/2 - eps)``
approximation of the optimal ``k``-placement — each site is examined
exactly once, in arrival order.  At answer time a greedy *polish* over
the memory-bounded pool of ever-admitted sites closes most of the
practical gap to offline CELF without touching unseen candidates, and
can only improve on the best sieve, so the worst-case floor stands.

The objective here (expected attracted customers) is the paper's
monotone submodular coverage objective, so the guarantee transfers
directly; both evaluation backends
(:func:`~repro.core.kernel.make_evaluator`) drive the sieves, and the
test suite pins sieve quality against offline CELF at paper scale.

:class:`SieveStreamState` exposes the online form used by the streaming
pipeline: sites are offered as they arrive, and when traffic deltas
change flow volumes (:meth:`SieveStreamState.arrive`) only the sites
covering the changed flows are re-offered — replaying each sieve's
chosen sites costs ``O(k)`` per sieve, never a full candidate rescan.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..core import Scenario
from ..core.kernel import Evaluator, make_evaluator, resolve_backend
from ..errors import PlacementError
from ..graphs import NodeId
from .base import PlacementAlgorithm, register


class _Sieve:
    """One threshold's candidate set and its incremental evaluator."""

    __slots__ = ("threshold", "evaluator", "sites")

    def __init__(self, threshold: float, evaluator: Evaluator) -> None:
        self.threshold = threshold
        self.evaluator = evaluator
        self.sites: List[NodeId] = []

    @property
    def value(self) -> float:
        return self.evaluator.attracted

    def offer(self, site: NodeId, k: int) -> bool:
        """Admit ``site`` if its marginal gain clears the sieve bar."""
        if len(self.sites) >= k or site in self.sites:
            return False
        gain = self.evaluator.gain(site)
        bar = (self.threshold / 2.0 - self.value) / (k - len(self.sites))
        if gain <= 0 or gain < bar:
            return False
        self.evaluator.place(site)
        self.sites.append(site)
        return True


class SieveStreamState:
    """Online sieve-streaming state over one scenario.

    Offer sites with :meth:`offer` as they arrive; read the current
    best placement any time with :meth:`best_sites`.  When the scenario
    is replaced by a volume-patched successor, :meth:`arrive` migrates
    every sieve onto the new scenario and re-offers only the sites
    covering the changed flows.
    """

    def __init__(
        self,
        scenario: Scenario,
        k: int,
        *,
        epsilon: float = 0.1,
        backend: Optional[str] = None,
    ) -> None:
        if k < 1:
            raise PlacementError(f"sieve-streaming needs k >= 1, got {k}")
        if not 0 < epsilon < 1:
            raise PlacementError(
                f"epsilon must be in (0, 1), got {epsilon}"
            )
        self._scenario = scenario
        self._k = k
        self._epsilon = epsilon
        self._backend = resolve_backend(backend, scenario)
        self._log_base = math.log1p(epsilon)
        # Max singleton gain seen so far (the "m" of the paper).
        self._m = 0.0
        self._sieves: Dict[int, _Sieve] = {}
        # A pristine evaluator measures singleton gains (gain() does not
        # mutate, so one shared empty evaluator serves every arrival).
        self._singleton = make_evaluator(scenario, self._backend)
        self._seen: Set[NodeId] = set()
        # Every site any sieve ever admitted: the memory-bounded pool
        # (O(k / eps * log k) sites) the final greedy polish draws from.
        self._admitted: Set[NodeId] = set()
        self.offers = 0
        self.admissions = 0

    @property
    def k(self) -> int:
        return self._k

    @property
    def sieve_count(self) -> int:
        return len(self._sieves)

    def _threshold(self, index: int) -> float:
        return (1.0 + self._epsilon) ** index

    def _refresh_grid(self) -> None:
        """Keep one sieve per ``(1+eps)^i`` in ``[m, 2km]`` (lazy)."""
        if self._m <= 0:
            return
        low = int(math.ceil(math.log(self._m) / self._log_base - 1e-12))
        high = int(
            math.floor(
                math.log(2.0 * self._k * self._m) / self._log_base + 1e-12
            )
        )
        for index in list(self._sieves):
            if index < low or index > high:
                del self._sieves[index]
        for index in range(low, high + 1):
            if index not in self._sieves:
                self._sieves[index] = _Sieve(
                    self._threshold(index),
                    make_evaluator(self._scenario, self._backend),
                )

    def offer(self, site: NodeId) -> int:
        """Process one arriving site; returns how many sieves admitted it."""
        self.offers += 1
        self._seen.add(site)
        singleton = self._singleton.gain(site)
        if singleton > self._m:
            self._m = singleton
            self._refresh_grid()
        admitted = 0
        for index in sorted(self._sieves):
            if self._sieves[index].offer(site, self._k):
                admitted += 1
        if admitted:
            self._admitted.add(site)
        self.admissions += admitted
        return admitted

    def offer_many(self, sites: Iterable[NodeId]) -> None:
        for site in sites:
            self.offer(site)

    def arrive(
        self, scenario: Scenario, changed_flows: Sequence[int]
    ) -> int:
        """Migrate onto a volume-patched scenario; re-offer affected sites.

        Every sieve's chosen set replays on the new scenario (``O(k)``
        per sieve — placements are kept, their values re-measured), and
        only sites covering a changed flow are offered again, so an
        update never rescans the candidate set.  Returns the number of
        sites re-offered.
        """
        self._scenario = scenario
        self._singleton = make_evaluator(scenario, self._backend)
        for sieve in self._sieves.values():
            replayed = make_evaluator(scenario, self._backend)
            for site in sieve.sites:
                replayed.place(site)
            sieve.evaluator = replayed
        affected: List[NodeId] = []
        seen_sites: Set[NodeId] = set()
        coverage = scenario.coverage
        for flow_index in changed_flows:
            for node, _ in coverage.options_for(int(flow_index)):
                if node in self._seen and node not in seen_sites:
                    seen_sites.add(node)
                    affected.append(node)
        for site in affected:
            self.offer(site)
        obs.count_many(
            {
                "sieve.arrivals": 1,
                "sieve.reoffered_sites": len(affected),
            }
        )
        return len(affected)

    def _best_sieve(self) -> Optional[_Sieve]:
        best: Optional[_Sieve] = None
        for index in sorted(self._sieves):
            sieve = self._sieves[index]
            if best is None or sieve.value > best.value:
                best = sieve
        return best

    def _polished(self) -> "Tuple[List[NodeId], float]":
        """Greedy over the admitted pool — the answer-time polish.

        The pool holds every site any sieve ever admitted, so its size
        is bounded by the sieve count times ``k`` regardless of stream
        length.  Running plain greedy over it costs ``O(|pool| * k)``
        marginal-gain evaluations and never touches unseen candidates,
        so the streaming property is intact; the result can only match
        or beat the best sieve (which is itself a subset of the pool),
        keeping the ``(1/2 - eps)`` floor while closing most of the
        practical gap to offline CELF.
        """
        evaluator = make_evaluator(self._scenario, self._backend)
        chosen: List[NodeId] = []
        remaining = sorted(self._admitted)
        while len(chosen) < self._k and remaining:
            best_site: Optional[NodeId] = None
            best_gain = 0.0
            for site in remaining:
                gain = evaluator.gain(site)
                if gain > best_gain:
                    best_gain = gain
                    best_site = site
            if best_site is None:
                break
            evaluator.place(best_site)
            chosen.append(best_site)
            remaining.remove(best_site)
        return chosen, evaluator.attracted

    def best_sites(self) -> List[NodeId]:
        """The current best placement.

        The better of (a) the best sieve's set (ties break toward the
        lower threshold) and (b) a greedy re-selection over the pool of
        ever-admitted sites — see :meth:`_polished`.
        """
        best = self._best_sieve()
        sieve_sites = list(best.sites) if best is not None else []
        sieve_value = best.value if best is not None else 0.0
        polished, polished_value = self._polished()
        if polished_value > sieve_value:
            return polished
        return sieve_sites

    def best_value(self) -> float:
        sieve_value = max(
            (sieve.value for sieve in self._sieves.values()), default=0.0
        )
        return max(sieve_value, self._polished()[1])


@register("sieve-stream")
class SieveStreaming(PlacementAlgorithm):
    """One-pass ``(1/2 - eps)``-approximate streaming placement."""

    name = "sieve-stream"

    def __init__(
        self, epsilon: float = 0.1, backend: Optional[str] = None
    ) -> None:
        self._epsilon = epsilon
        self._backend = backend
        #: Sites offered / sieve admissions during the last select call.
        self.offers = 0
        self.admissions = 0

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Stream the candidate sites once, in candidate order."""
        if k == 0:
            return []
        backend = resolve_backend(self._backend, scenario)
        with obs.span(
            "select", algorithm=self.name, backend=backend, k=k
        ):
            state = SieveStreamState(
                scenario, k, epsilon=self._epsilon, backend=backend
            )
            state.offer_many(scenario.candidate_sites)
            self.offers = state.offers
            self.admissions = state.admissions
            if obs.active() is not None:
                obs.count_many(
                    {
                        "sieve.offers": state.offers,
                        "sieve.admissions": state.admissions,
                        "sieve.thresholds": state.sieve_count,
                    }
                )
            return state.best_sites()


__all__ = ["SieveStreamState", "SieveStreaming"]
