"""Exact placement via branch and bound with a submodular upper bound.

:class:`ExhaustiveOptimal` enumerates all ``C(n, k)`` subsets; this
solver prunes that tree and typically solves instances an order of
magnitude larger:

* **branching** — candidates are ordered by single-site value; each node
  either takes or skips the next candidate;
* **bounding** — by submodularity, the marginal gain of any site never
  grows as the partial placement extends, so

      value(S) + sum of the (k − |S|) largest current gains

  over the remaining candidates upper-bounds every completion of ``S``;
* **seeding** — the incumbent starts at the greedy solution, so the
  solver proves optimality (or improves on greedy) rather than starting
  cold.

Output matches :class:`ExhaustiveOptimal` exactly (the test suite checks
this on randomized instances); use it when the exhaustive work limit
trips.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core import IncrementalEvaluator, Scenario
from ..errors import InfeasiblePlacementError
from ..graphs import NodeId
from .base import PlacementAlgorithm, register
from .marginal_greedy import MarginalGainGreedy


@register("branch-and-bound")
class BranchAndBoundOptimal(PlacementAlgorithm):
    """Exact solver; ``node_limit`` bounds the search-tree size."""

    name = "branch-and-bound"

    def __init__(self, node_limit: int = 5_000_000) -> None:
        self._node_limit = node_limit
        #: Search-tree nodes expanded by the last :meth:`select` call.
        self.nodes_expanded = 0

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Exact optimum via bounded DFS (greedy incumbent, submodular bound)."""
        useful = [
            site
            for site in scenario.candidate_sites
            if scenario.coverage.covering(site)
        ]
        budget = min(k, len(useful))
        if budget == 0:
            return []

        # Order candidates by single-site value (descending) — better
        # incumbents early, tighter bounds.
        base = IncrementalEvaluator(scenario)
        singles = sorted(
            useful, key=lambda site: -base.gain(site)
        )

        # Greedy incumbent.
        incumbent_sites = MarginalGainGreedy().select(scenario, budget)
        incumbent_value = self._value_of(scenario, incumbent_sites)

        self.nodes_expanded = 0
        best = self._search(
            scenario,
            singles,
            budget,
            incumbent_sites,
            incumbent_value,
        )
        return best

    # ------------------------------------------------------------------
    def _value_of(self, scenario: Scenario, sites: List[NodeId]) -> float:
        evaluator = IncrementalEvaluator(scenario)
        for site in sites:
            evaluator.place(site)
        return evaluator.attracted

    def _search(
        self,
        scenario: Scenario,
        order: List[NodeId],
        budget: int,
        incumbent_sites: List[NodeId],
        incumbent_value: float,
    ) -> List[NodeId]:
        """Iterative DFS over take/skip decisions."""
        best_sites = list(incumbent_sites)
        best_value = incumbent_value

        # Stack entries: (depth, evaluator, chosen) — evaluators are
        # rebuilt by replay to keep memory flat (placements are tiny).
        stack: List[Tuple[int, List[NodeId]]] = [(0, [])]
        while stack:
            depth, chosen = stack.pop()
            self.nodes_expanded += 1
            if self.nodes_expanded > self._node_limit:
                raise InfeasiblePlacementError(
                    f"branch-and-bound exceeded {self._node_limit} nodes; "
                    "loosen the limit or use a greedy algorithm"
                )
            evaluator = IncrementalEvaluator(scenario)
            for site in chosen:
                evaluator.place(site)
            value = evaluator.attracted
            remaining_budget = budget - len(chosen)
            if remaining_budget == 0 or depth >= len(order):
                if value > best_value:
                    best_sites, best_value = list(chosen), value
                continue

            # Submodular bound: top remaining gains at the current state.
            gains = sorted(
                (
                    evaluator.gain(site)
                    for site in order[depth:]
                    if not evaluator.is_placed(site)
                ),
                reverse=True,
            )
            bound = value + sum(gains[:remaining_budget])
            if bound <= best_value + 1e-12:
                continue
            if value > best_value:
                best_sites, best_value = list(chosen), value

            site = order[depth]
            # Explore "take" after "skip" pops (LIFO): push skip first.
            stack.append((depth + 1, chosen))
            stack.append((depth + 1, chosen + [site]))
        return best_sites
