"""Windowed traffic estimation: fold closed journeys into flow deltas.

The offline pipeline counts whole-trace route matches and scales by
passengers-per-bus (:func:`repro.traces.flows.flows_from_matches`).  The
streaming pipeline cannot wait for the whole trace: it folds the
segmenter's :class:`~repro.stream.segmenter.ClosedJourney` events into
per-route counts over event-time windows and emits
:class:`TrafficDelta` objects — the *signed change* in each route's
journey count versus the previous window.  Downstream,
:class:`~repro.stream.refresh.StreamRefresher` converts deltas into
flow-volume patches.

Windows are tumbling by default (``slide`` omitted) or sliding
(``slide`` < ``window``).  Everything is event-time driven off journey
end timestamps — windows complete when a later journey's end time
proves the window can receive no more members, never when a wall clock
says so (RAP002).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .. import obs
from ..errors import StreamConfigError
from .segmenter import ClosedJourney


@dataclass(frozen=True)
class TrafficDelta:
    """Signed change in one route's journey count over one window."""

    route: str
    """The feed route id (maps to a flow label downstream)."""
    count: int
    """Journeys this window minus journeys the previous window."""
    window_start: float
    window_end: float

    def __post_init__(self) -> None:
        if self.window_end <= self.window_start:
            raise StreamConfigError(
                f"delta window [{self.window_start}, {self.window_end}) "
                "is empty"
            )


class WindowedEstimator:
    """Fold closed journeys into per-window, per-route count deltas.

    Parameters
    ----------
    window:
        Window length in seconds.
    slide:
        Hop between window starts; omitted or equal to ``window`` gives
        tumbling windows, smaller gives overlapping sliding windows.
    origin:
        Event time at which window 0 starts (default 0).
    """

    def __init__(
        self,
        window: float,
        *,
        slide: Optional[float] = None,
        origin: float = 0.0,
    ) -> None:
        if window <= 0:
            raise StreamConfigError(f"window must be positive, got {window}")
        if slide is None:
            slide = window
        if slide <= 0 or slide > window:
            raise StreamConfigError(
                f"slide must be in (0, window], got {slide} (window {window})"
            )
        self._window = float(window)
        self._slide = float(slide)
        self._origin = float(origin)
        # Per window-start-index: route -> journeys counted.
        self._counts: Dict[int, Dict[str, int]] = {}
        # Counts of the last *emitted* window, the delta baseline.
        self._previous: Dict[str, int] = {}
        self._emitted_through = -1
        self._max_seen = -1
        self.journeys = 0

    @property
    def window(self) -> float:
        return self._window

    @property
    def slide(self) -> float:
        return self._slide

    def _window_indices(self, end_time: float) -> Iterable[int]:
        """Start indices of every window containing ``end_time``."""
        offset = end_time - self._origin
        if offset < 0:
            raise StreamConfigError(
                f"journey end time {end_time} precedes window origin "
                f"{self._origin}"
            )
        last = int(math.floor(offset / self._slide))
        # Walk back while the window starting at index i still spans t.
        first = last
        while first > 0 and (
            offset - (first - 1) * self._slide < self._window
        ):
            first -= 1
        return range(first, last + 1)

    def _bounds(self, index: int) -> Tuple[float, float]:
        start = self._origin + index * self._slide
        return start, start + self._window

    def observe(self, closed: ClosedJourney) -> List[TrafficDelta]:
        """Fold one closed journey; returns deltas for completed windows.

        A window completes when a journey ends at or beyond the window's
        end — event time has provably moved past it.
        """
        self.journeys += 1
        obs.count("stream.estimate.journeys")
        for index in self._window_indices(closed.end_time):
            bucket = self._counts.setdefault(index, {})
            bucket[closed.route] = bucket.get(closed.route, 0) + 1
            if index > self._max_seen:
                self._max_seen = index
        # Windows whose end precedes the newest end time are complete.
        ripe: List[TrafficDelta] = []
        index = self._emitted_through + 1
        while self._bounds(index)[1] <= closed.end_time:
            ripe.extend(self._emit(index))
            index += 1
        return ripe

    def drain(self) -> List[TrafficDelta]:
        """Emit every window still open (end of stream)."""
        ripe: List[TrafficDelta] = []
        for index in range(self._emitted_through + 1, self._max_seen + 1):
            ripe.extend(self._emit(index))
        return ripe

    def _emit(self, index: int) -> List[TrafficDelta]:
        counts = self._counts.pop(index, {})
        start, end = self._bounds(index)
        deltas: List[TrafficDelta] = []
        for route in sorted(set(counts) | set(self._previous)):
            change = counts.get(route, 0) - self._previous.get(route, 0)
            if change != 0:
                deltas.append(
                    TrafficDelta(
                        route=route,
                        count=change,
                        window_start=start,
                        window_end=end,
                    )
                )
        self._previous = counts
        self._emitted_through = index
        if deltas:
            obs.count_many(
                {
                    "stream.estimate.windows": 1,
                    "stream.estimate.deltas": len(deltas),
                }
            )
        else:
            obs.count("stream.estimate.windows")
        return deltas


__all__ = ["TrafficDelta", "WindowedEstimator"]
