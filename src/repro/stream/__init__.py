"""Streaming pipeline: live trace ingestion to hot-swapped serving.

The offline pipeline (``traces`` → ``core`` → ``serve``) compiles one
scenario snapshot and serves it forever.  This subpackage makes the
loop live, in four connected pieces:

* :mod:`repro.stream.journal` — an append-only journey log: JSONL
  segments with WAL-style rotation and torn-tail recovery, so a feed
  can be durably ingested and exactly replayed;
* :mod:`repro.stream.segmenter` — idle/resume journey segmentation
  over the raw GPS stream, with a bounded-skew reorder buffer for
  out-of-order samples;
* :mod:`repro.stream.estimator` — event-time windows folding closed
  journeys into per-route :class:`TrafficDelta` counts;
* :mod:`repro.stream.refresh` — :class:`StreamRefresher`, which patches
  the served artifact incrementally
  (:meth:`~repro.serve.artifacts.ScenarioArtifact.patched` — bit-identical
  to a full recompile), publishes it to shared memory, and hot-swaps
  the fleet's default shard with zero dropped requests.

Everything is deterministic and event-time driven: no wall-clock reads
(RAP002) and no unseeded randomness (RAP001) anywhere in the package.
"""

from .estimator import TrafficDelta, WindowedEstimator
from .journal import (
    JourneyJournal,
    SEGMENT_PATTERN,
    WAL_NAME,
    record_from_line,
    record_to_line,
)
from .refresh import (
    REFRESH_MODES,
    RefreshResult,
    StreamRefresher,
    patched_spec,
)
from .segmenter import (
    ClosedJourney,
    IDLE_THRESHOLD,
    JOURNEY_END_THRESHOLD,
    JourneySegmenter,
    RESUME_DISTANCE_FEET,
    STOP_THRESHOLD,
    SegmenterConfig,
)

__all__ = [
    "ClosedJourney",
    "IDLE_THRESHOLD",
    "JOURNEY_END_THRESHOLD",
    "JourneyJournal",
    "JourneySegmenter",
    "REFRESH_MODES",
    "RESUME_DISTANCE_FEET",
    "RefreshResult",
    "SEGMENT_PATTERN",
    "STOP_THRESHOLD",
    "SegmenterConfig",
    "StreamRefresher",
    "TrafficDelta",
    "WAL_NAME",
    "WindowedEstimator",
    "patched_spec",
    "record_from_line",
    "record_to_line",
]
