"""Live journey segmentation: idle/resume detection on a GPS stream.

A live feed has no journey boundaries — a bus reports samples all day
under one route id.  :class:`JourneySegmenter` splits each bus's sample
stream into *journey segments* the way fleet trackers do (the exemplar
is the WAL-backed fleet tracker in SNIPPETS.md): a bus that stops
moving is *idle* after :data:`IDLE_THRESHOLD` seconds; if it then moves
at least :data:`RESUME_DISTANCE_FEET` before
:data:`JOURNEY_END_THRESHOLD` elapses, the same journey *resumes*; if
the idle period reaches the end threshold, the journey is closed and
the next movement opens a new segment.

Real feeds also deliver samples out of order (multi-path uplinks,
store-and-forward gaps).  The segmenter holds a small per-bus reorder
buffer bounded by ``max_skew`` seconds: samples are released in event
time once the buffer spans the skew window, arrival inversions inside
the window are repaired (and counted in observability), and samples
older than the already-released watermark are dropped rather than
corrupting a closed segment.

Everything is event-time driven and deterministic — no wall clock, no
randomness (lint rules RAP001/RAP002 cover ``stream/``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..errors import StreamConfigError
from ..graphs import Point
from ..traces.records import GpsRecord

#: Seconds without movement before a bus counts as stopped (exemplar: 2 min).
STOP_THRESHOLD = 120.0

#: Idle seconds after which the journey is closed (exemplar: 1 hour).
JOURNEY_END_THRESHOLD = 3600.0

#: Seconds idle before the bus enters the idle state (exemplar: 2 min).
IDLE_THRESHOLD = 120.0

#: Feet a bus must move to count as resuming (exemplar: 0.3 km ~ 984 ft).
RESUME_DISTANCE_FEET = 984.0


@dataclass(frozen=True)
class SegmenterConfig:
    """Segmentation thresholds (seconds and feet; see module docstring)."""

    idle_threshold: float = IDLE_THRESHOLD
    journey_end_threshold: float = JOURNEY_END_THRESHOLD
    resume_distance: float = RESUME_DISTANCE_FEET
    max_skew: float = 0.0
    """Reorder-buffer span in seconds (0 = strict in-order release)."""

    def __post_init__(self) -> None:
        if self.idle_threshold <= 0:
            raise StreamConfigError(
                f"idle_threshold must be positive, got {self.idle_threshold}"
            )
        if self.journey_end_threshold < self.idle_threshold:
            raise StreamConfigError(
                "journey_end_threshold must be >= idle_threshold "
                f"({self.journey_end_threshold} < {self.idle_threshold})"
            )
        if self.resume_distance <= 0:
            raise StreamConfigError(
                f"resume_distance must be positive, got {self.resume_distance}"
            )
        if self.max_skew < 0:
            raise StreamConfigError(
                f"max_skew must be >= 0, got {self.max_skew}"
            )


@dataclass(frozen=True)
class ClosedJourney:
    """One completed journey segment (the estimator's input unit)."""

    bus_id: str
    route: str
    """The feed's journey/route id, before segmentation."""
    segment_id: str
    """The segmented journey id (``<route>#<n>``)."""
    start_time: float
    end_time: float
    samples: int


@dataclass
class _BusState:
    segment: int = 0
    opened: bool = False
    start_time: float = 0.0
    last: Optional[GpsRecord] = None
    idle_since: Optional[float] = None
    anchor: Optional[Tuple[float, float]] = None
    samples: int = 0
    watermark: float = float("-inf")
    buffer: List[Tuple[float, int, GpsRecord]] = field(default_factory=list)
    arrivals: int = 0


class JourneySegmenter:
    """Split per-bus GPS streams into idle/resume-delimited journeys.

    ``observe`` accepts samples in arrival order and returns the samples
    *released* by the reorder buffer, re-tagged with their segmented
    journey id; completed segments accumulate until :meth:`poll_closed`.
    Call :meth:`flush` at end of stream to drain buffers and close every
    open segment.
    """

    def __init__(self, config: SegmenterConfig = SegmenterConfig()) -> None:
        self._config = config
        self._buses: Dict[Tuple[str, str], _BusState] = {}
        self._closed: List[ClosedJourney] = []
        self.reorders = 0
        self.reorder_drops = 0
        self.resumes = 0

    # ------------------------------------------------------------------
    # arrival side (reorder buffer)
    # ------------------------------------------------------------------
    def observe(self, record: GpsRecord) -> List[GpsRecord]:
        """Feed one arriving sample; returns released, re-tagged samples."""
        key = (record.bus_id, record.journey_id)
        state = self._buses.get(key)
        if state is None:
            state = _BusState()
            self._buses[key] = state
        if record.timestamp < state.watermark:
            # Arrived later than the skew window allows: the segment it
            # belongs to may already be closed, so drop it loudly.
            self.reorder_drops += 1
            obs.count("stream.segment.reorder_drops")
            return []
        if state.buffer and record.timestamp < state.buffer[-1][2].timestamp:
            # Out of arrival order but inside the window: the heap
            # repairs the order; count the inversion.
            self.reorders += 1
            obs.count("stream.segment.reorders")
        state.arrivals += 1
        heapq.heappush(
            state.buffer, (record.timestamp, state.arrivals, record)
        )
        released: List[GpsRecord] = []
        newest = max(item[2].timestamp for item in state.buffer)
        while state.buffer and (
            newest - state.buffer[0][0] >= self._config.max_skew
        ):
            _, _, ready = heapq.heappop(state.buffer)
            state.watermark = ready.timestamp
            released.append(self._advance(key, state, ready))
        return released

    def flush(self) -> List[GpsRecord]:
        """Drain every reorder buffer and close every open segment."""
        released: List[GpsRecord] = []
        for key in sorted(self._buses):
            state = self._buses[key]
            while state.buffer:
                _, _, ready = heapq.heappop(state.buffer)
                state.watermark = ready.timestamp
                released.append(self._advance(key, state, ready))
            if state.opened:
                self._close(key, state)
        return released

    def poll_closed(self) -> List[ClosedJourney]:
        """Completed segments since the last poll (append order)."""
        closed = self._closed
        self._closed = []
        return closed

    # ------------------------------------------------------------------
    # event-time side (segmentation proper)
    # ------------------------------------------------------------------
    def _segment_id(self, key: Tuple[str, str], state: _BusState) -> str:
        return f"{key[1]}#{state.segment:03d}"

    def _close(self, key: Tuple[str, str], state: _BusState) -> None:
        assert state.last is not None
        self._closed.append(
            ClosedJourney(
                bus_id=key[0],
                route=key[1],
                segment_id=self._segment_id(key, state),
                start_time=state.start_time,
                end_time=state.last.timestamp,
                samples=state.samples,
            )
        )
        obs.count("stream.segment.closed")
        state.opened = False
        state.segment += 1
        state.samples = 0
        state.idle_since = None
        state.anchor = None

    def _advance(
        self, key: Tuple[str, str], state: _BusState, record: GpsRecord
    ) -> GpsRecord:
        config = self._config
        last = state.last
        if last is not None and state.opened:
            gap = record.timestamp - last.timestamp
            if gap >= config.journey_end_threshold:
                # Silent for a journey-ending while: close at the last
                # sample and open a fresh segment at this one.
                self._close(key, state)
            else:
                anchor = state.anchor or (last.x, last.y)
                moved = record.position.distance_to(Point(anchor[0], anchor[1]))
                if moved < config.resume_distance:
                    # Still within the idle radius of the anchor.
                    if state.idle_since is None:
                        state.idle_since = last.timestamp
                        state.anchor = anchor
                    idle_for = record.timestamp - state.idle_since
                    if idle_for >= config.journey_end_threshold:
                        self._close(key, state)
                else:
                    if state.idle_since is not None:
                        idle_for = record.timestamp - state.idle_since
                        if idle_for >= config.idle_threshold:
                            # Moved >= the resume distance after a real
                            # stop: same journey, resumed.
                            self.resumes += 1
                            obs.count("stream.segment.resumes")
                    state.idle_since = None
                    state.anchor = None
        if not state.opened:
            state.opened = True
            state.start_time = record.timestamp
            state.samples = 0
            state.idle_since = None
            state.anchor = None
        state.last = record
        state.samples += 1
        return GpsRecord(
            bus_id=record.bus_id,
            journey_id=self._segment_id(key, state),
            timestamp=record.timestamp,
            x=record.x,
            y=record.y,
        )


__all__ = [
    "ClosedJourney",
    "IDLE_THRESHOLD",
    "JOURNEY_END_THRESHOLD",
    "JourneySegmenter",
    "RESUME_DISTANCE_FEET",
    "STOP_THRESHOLD",
    "SegmenterConfig",
]
