"""Append-only journey journal: JSONL segments with WAL-style rotation.

The ingestion side of the streaming pipeline persists GPS samples the
way sqlite persists pages: every append goes to a live write-ahead
segment (``wal.jsonl``), and once the segment reaches its record budget
it is *checkpointed* — atomically renamed to the next sealed
``segment-NNNNNN.jsonl`` — so readers always see either a fully sealed
segment or the single live tail.  Replay walks sealed segments in
sequence order and then the live tail, reproducing the exact append
order.

Recovery follows WAL semantics too: a process killed mid-append leaves
at most one torn trailing line, which :class:`JourneyJournal` truncates
away on open (the record was never acknowledged, so dropping it is
correct) and counts in observability.

Everything here is driven by *event time* carried in the records — the
journal itself never reads a wall clock (lint rule RAP002 covers
``stream/``).  An injectable :class:`~repro.obs.clock.Clock` may be
supplied purely to stamp seal bookkeeping for humans; replay and
rotation never consult it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from .. import obs
from ..errors import JournalError, StreamConfigError, TraceFormatError
from ..obs.clock import Clock
from ..traces.records import GpsRecord

PathLike = Union[str, Path]

#: Live write-ahead segment name (renamed into place when sealed).
WAL_NAME = "wal.jsonl"

#: Sealed segment name pattern.
SEGMENT_PATTERN = "segment-{index:06d}.jsonl"


def record_to_line(record: GpsRecord) -> str:
    """Canonical one-line JSON encoding of one GPS sample."""
    return json.dumps(
        {
            "bus": record.bus_id,
            "journey": record.journey_id,
            "t": float(record.timestamp),
            "x": float(record.x),
            "y": float(record.y),
        },
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def record_from_line(line: str) -> GpsRecord:
    """Inverse of :func:`record_to_line` (raises on malformed lines)."""
    try:
        document = json.loads(line)
        return GpsRecord(
            bus_id=str(document["bus"]),
            journey_id=str(document["journey"]),
            timestamp=float(document["t"]),
            x=float(document["x"]),
            y=float(document["y"]),
        )
    except TraceFormatError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise JournalError(f"malformed journal line {line!r}: {error}") from None


class JourneyJournal:
    """Append-only GPS journal over JSONL segments.

    Parameters
    ----------
    directory:
        Journal root; created if missing.  Sealed segments and the live
        WAL live directly inside it.
    segment_records:
        Records per sealed segment — the rotation (checkpoint) budget.
    clock:
        Optional :class:`~repro.obs.clock.Clock` used only to stamp the
        human-facing ``sealed`` bookkeeping in :meth:`status`; rotation
        and replay are pure functions of the appended records.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        segment_records: int = 4096,
        clock: Optional[Clock] = None,
    ) -> None:
        if segment_records < 1:
            raise StreamConfigError(
                f"segment_records must be >= 1, got {segment_records}"
            )
        self._directory = Path(directory)
        self._segment_records = segment_records
        self._clock = clock
        self._last_seal_at: Optional[float] = None
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise JournalError(
                f"cannot create journal directory {self._directory}: {error}"
            ) from error
        self._sealed = self._scan_sealed()
        self._wal_records = self._recover_wal()
        self._appends = 0

    # ------------------------------------------------------------------
    # open / recovery
    # ------------------------------------------------------------------
    def _scan_sealed(self) -> List[Path]:
        sealed = sorted(
            entry
            for entry in self._directory.iterdir()
            if entry.name.startswith("segment-")
            and entry.name.endswith(".jsonl")
        )
        return sealed

    def _recover_wal(self) -> int:
        """Count WAL records, truncating a torn trailing line if present."""
        wal = self._directory / WAL_NAME
        if not wal.is_file():
            return 0
        try:
            raw = wal.read_bytes()
        except OSError as error:
            raise JournalError(f"cannot read {wal}: {error}") from error
        if not raw:
            return 0
        keep = len(raw)
        torn = 0
        if not raw.endswith(b"\n"):
            # Torn append: drop the unterminated tail (never acknowledged).
            keep = raw.rfind(b"\n") + 1
            torn = 1
        else:
            # A terminated but unparsable last line is equally torn
            # (e.g. the process died inside a buffered flush).
            lines = raw[:keep].splitlines()
            if lines:
                try:
                    record_from_line(lines[-1].decode("utf-8"))
                except (JournalError, UnicodeDecodeError):
                    keep = raw.rfind(b"\n", 0, keep - 1) + 1
                    torn = 1
        if torn:
            try:
                with open(wal, "r+b") as handle:
                    handle.truncate(keep)
            except OSError as error:
                raise JournalError(
                    f"cannot truncate torn tail of {wal}: {error}"
                ) from error
            obs.count("stream.journal.torn_lines")
        return raw[:keep].count(b"\n")

    # ------------------------------------------------------------------
    # append / rotate
    # ------------------------------------------------------------------
    def append(self, record: GpsRecord) -> None:
        """Durably append one sample, rotating the WAL when full."""
        line = record_to_line(record)
        wal = self._directory / WAL_NAME
        try:
            with open(wal, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError as error:
            raise JournalError(f"cannot append to {wal}: {error}") from error
        self._wal_records += 1
        self._appends += 1
        obs.count("stream.journal.appends")
        if self._wal_records >= self._segment_records:
            self._seal()

    def extend(self, records: "Iterator[GpsRecord] | List[GpsRecord]") -> int:
        """Append many samples; returns the number appended."""
        count = 0
        for record in records:
            self.append(record)
            count += 1
        return count

    def _seal(self) -> None:
        """Checkpoint the live WAL into the next sealed segment."""
        wal = self._directory / WAL_NAME
        target = self._directory / SEGMENT_PATTERN.format(
            index=len(self._sealed)
        )
        try:
            os.replace(wal, target)
        except OSError as error:
            raise JournalError(
                f"cannot seal {wal} as {target}: {error}"
            ) from error
        self._sealed.append(target)
        self._wal_records = 0
        if self._clock is not None:
            self._last_seal_at = self._clock.now()
        obs.count("stream.journal.seals")

    def seal(self) -> Optional[Path]:
        """Force a checkpoint of a non-empty WAL (e.g. on shutdown)."""
        if self._wal_records == 0:
            return None
        self._seal()
        return self._sealed[-1]

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def segments(self) -> List[Path]:
        """Sealed segments, in append order."""
        return list(self._sealed)

    @property
    def record_count(self) -> int:
        """Records currently replayable (sealed + live WAL)."""
        return self._count_sealed() + self._wal_records

    def _count_sealed(self) -> int:
        total = 0
        for segment in self._sealed:
            try:
                with open(segment, "rb") as handle:
                    total += handle.read().count(b"\n")
            except OSError as error:
                raise JournalError(
                    f"cannot read sealed segment {segment}: {error}"
                ) from error
        return total

    def replay(self) -> Iterator[GpsRecord]:
        """Every record in exact append order (sealed, then live WAL)."""
        paths = list(self._sealed)
        wal = self._directory / WAL_NAME
        if wal.is_file():
            paths.append(wal)
        for path in paths:
            try:
                with open(path, encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if line:
                            yield record_from_line(line)
            except OSError as error:
                raise JournalError(
                    f"cannot replay journal file {path}: {error}"
                ) from error

    def status(self) -> Dict[str, object]:
        """Bookkeeping snapshot (segment counts, live tail, seal stamp)."""
        return {
            "directory": str(self._directory),
            "sealed_segments": len(self._sealed),
            "wal_records": self._wal_records,
            "segment_records": self._segment_records,
            "appends_this_session": self._appends,
            "last_seal_at": self._last_seal_at,
        }


__all__ = [
    "JourneyJournal",
    "SEGMENT_PATTERN",
    "WAL_NAME",
    "record_from_line",
    "record_to_line",
]
