"""Hot-swap refresh: fold traffic deltas into a live serving fleet.

:class:`StreamRefresher` closes the streaming loop.  It owns the fleet's
current :class:`~repro.serve.artifacts.ScenarioArtifact` and, on each
batch of :class:`~repro.stream.estimator.TrafficDelta` objects:

1. maps routes onto flow indices (by flow label) and scales journey
   counts by passengers-per-bus into volume deltas;
2. produces the updated artifact — either the incremental *patch* path
   (:meth:`ScenarioArtifact.patched`, no Dijkstra, no utility re-eval)
   or a full *recompile* (the differential baseline; both produce
   bit-identical artifacts and digests);
3. registers the artifact with the :class:`~repro.serve.artifacts.ArtifactStore`
   and publishes its columns to the
   :class:`~repro.serve.shm.ShmArtifactPool`;
4. asks the :class:`~repro.serve.fleet.PlacementFleet` to hot-swap its
   default shard to the new digest (old shard drains, new serves — zero
   dropped requests), then optionally unlinks the old digest's shared
   memory.

Every step is traced and counted; timings come from the injectable
clock (RAP002 — ``stream/`` never reads the wall clock directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from .. import obs
from ..errors import StreamConfigError, StreamDeltaError
from ..obs.clock import Clock, SystemClock
from ..serve.artifacts import (
    ArtifactStore,
    ScenarioArtifact,
    scenario_from_spec,
    spec_digest,
)
from .estimator import TrafficDelta

REFRESH_MODES = ("patch", "recompile")


@dataclass(frozen=True)
class RefreshResult:
    """Outcome of one :meth:`StreamRefresher.refresh` call."""

    old_digest: str
    new_digest: str
    mode: str
    seconds: float
    flows_changed: int
    unmatched_routes: int
    swap: Optional[Dict[str, object]]
    """The fleet's swap record, or ``None`` without a fleet / no-op."""

    @property
    def changed(self) -> bool:
        return self.new_digest != self.old_digest


def patched_spec(
    spec: Dict[str, object], volume_deltas: Dict[int, float]
) -> Dict[str, object]:
    """A scenario spec with flow-volume deltas applied (pure function)."""
    flows = [dict(entry) for entry in spec["flows"]]  # type: ignore[union-attr]
    for raw_index, raw_delta in volume_deltas.items():
        index = int(raw_index)
        if not 0 <= index < len(flows):
            raise StreamDeltaError(
                f"volume delta targets flow {index}, but the spec has "
                f"{len(flows)} flows"
            )
        updated = float(flows[index]["volume"]) + float(raw_delta)
        if not updated > 0:
            raise StreamDeltaError(
                f"volume delta {raw_delta} drives flow {index} to "
                f"non-positive volume {updated}"
            )
        flows[index]["volume"] = updated
    new_spec = dict(spec)
    new_spec["flows"] = flows
    return new_spec


class StreamRefresher:
    """Fold traffic deltas into artifacts and hot-swap a serving fleet.

    Parameters
    ----------
    artifact:
        The currently-served artifact; each successful refresh replaces
        it, so refreshes chain.
    store:
        Optional artifact store; refreshed artifacts are registered
        (and persisted, when the store has a disk root).
    pool:
        Optional shared-memory pool; refreshed artifacts are published
        before the fleet swap so incoming workers can attach.
    fleet:
        Optional live fleet whose default shard follows the digest.
    worker_factory_for:
        ``worker_factory_for(artifact) -> (replica -> worker)`` builds
        the incoming shard's replica factory; required when ``fleet``
        is given.
    passengers_per_bus:
        Volume carried by one journey-count unit (paper: 100 Dublin,
        200 Seattle).
    clock:
        Injectable time source for refresh timings (RAP002).
    """

    def __init__(
        self,
        artifact: ScenarioArtifact,
        *,
        store: Optional[ArtifactStore] = None,
        pool: Optional[object] = None,
        fleet: Optional[object] = None,
        worker_factory_for: Optional[
            Callable[[ScenarioArtifact], Callable[[int], object]]
        ] = None,
        passengers_per_bus: float = 100.0,
        clock: Optional[Clock] = None,
    ) -> None:
        if passengers_per_bus <= 0:
            raise StreamConfigError(
                f"passengers_per_bus must be positive, got "
                f"{passengers_per_bus}"
            )
        if fleet is not None and worker_factory_for is None:
            raise StreamConfigError(
                "a fleet-connected refresher needs worker_factory_for"
            )
        self._artifact = artifact
        self._store = store
        self._pool = pool
        self._fleet = fleet
        self._worker_factory_for = worker_factory_for
        self._passengers = float(passengers_per_bus)
        self._clock: Clock = clock if clock is not None else SystemClock()
        self.refreshes = 0
        self.unmatched_routes = 0

    @property
    def artifact(self) -> ScenarioArtifact:
        """The artifact currently considered live."""
        return self._artifact

    @property
    def digest(self) -> str:
        return self._artifact.digest

    # ------------------------------------------------------------------
    # delta mapping
    # ------------------------------------------------------------------
    def volume_deltas(
        self, deltas: Sequence[TrafficDelta]
    ) -> Tuple[Dict[int, float], int]:
        """Map route deltas to ``{flow index: volume delta}``.

        Routes resolve against flow labels (the trace pipeline labels
        each flow with its route/pattern id).  Routes with no matching
        flow are counted and skipped — a live feed sees routes the
        offline snapshot never mapped.  Opposite-signed deltas for one
        route cancel; a net delta that would drive a flow's volume to
        zero or below raises :class:`~repro.errors.StreamDeltaError`.
        """
        by_label: Dict[str, int] = {}
        for index, flow in enumerate(self._artifact.scenario.flows):
            if flow.label is not None and flow.label not in by_label:
                by_label[flow.label] = index
        merged: Dict[int, float] = {}
        unmatched = 0
        for delta in deltas:
            index = by_label.get(delta.route)
            if index is None:
                unmatched += 1
                continue
            merged[index] = (
                merged.get(index, 0.0) + delta.count * self._passengers
            )
        merged = {
            index: change for index, change in merged.items() if change != 0.0
        }
        for index, change in merged.items():
            updated = self._artifact.scenario.flows[index].volume + change
            if not updated > 0:
                raise StreamDeltaError(
                    f"net delta {change} drives flow {index} "
                    f"({self._artifact.scenario.flows[index].label!r}) to "
                    f"non-positive volume {updated}"
                )
        if unmatched:
            obs.count("stream.refresh.unmatched_routes", unmatched)
        return merged, unmatched

    # ------------------------------------------------------------------
    # refresh
    # ------------------------------------------------------------------
    def refresh(
        self,
        deltas: Sequence[TrafficDelta],
        *,
        mode: str = "patch",
        unlink_old: bool = True,
    ) -> RefreshResult:
        """Apply ``deltas`` and roll the serving plane onto the result.

        ``mode="patch"`` takes the incremental path; ``"recompile"``
        rebuilds the artifact from the patched spec — the slow path the
        differential tests (and the bench's patch-vs-recompile tier)
        compare against.  Both yield bit-identical artifacts.
        """
        if mode not in REFRESH_MODES:
            raise StreamConfigError(
                f"unknown refresh mode {mode!r}; expected one of "
                f"{REFRESH_MODES}"
            )
        started = self._clock.now()
        changes, unmatched = self.volume_deltas(deltas)
        self.unmatched_routes += unmatched
        old_digest = self._artifact.digest
        if not changes:
            return RefreshResult(
                old_digest=old_digest,
                new_digest=old_digest,
                mode=mode,
                seconds=self._clock.now() - started,
                flows_changed=0,
                unmatched_routes=unmatched,
                swap=None,
            )
        with obs.span(
            "stream.refresh", mode=mode, flows_changed=len(changes)
        ):
            if mode == "patch":
                artifact = self._artifact.patched(changes)
            else:
                new_spec = patched_spec(self._artifact.spec, changes)
                artifact = ScenarioArtifact.compile(
                    scenario_from_spec(new_spec)
                )
                if artifact.digest != spec_digest(new_spec):
                    raise StreamDeltaError(
                        "recompiled artifact digest diverged from the "
                        "patched spec digest"
                    )
            if self._store is not None:
                self._store.put(artifact)
            if self._pool is not None:
                self._pool.publish(artifact)
            swap: Optional[Dict[str, object]] = None
            if self._fleet is not None:
                assert self._worker_factory_for is not None
                factory = self._worker_factory_for(artifact)
                swap = self._fleet.request_swap(
                    artifact.digest, factory
                ).result()
            if (
                unlink_old
                and self._pool is not None
                and old_digest != artifact.digest
            ):
                self._pool.unlink(old_digest)
        self._artifact = artifact
        self.refreshes += 1
        obs.count(f"stream.refresh.{mode}")
        return RefreshResult(
            old_digest=old_digest,
            new_digest=artifact.digest,
            mode=mode,
            seconds=self._clock.now() - started,
            flows_changed=len(changes),
            unmatched_routes=unmatched,
            swap=swap,
        )

__all__ = [
    "REFRESH_MODES",
    "RefreshResult",
    "StreamRefresher",
    "patched_spec",
]
