"""Failure-aware RAP placement: optimize *expected* attracted customers.

Physical RAPs fail — hardware dies, power is cut, a duty cycle turns the
unit off (the paper's reference [20]; see also Hu et al.'s
probabilistic-coverage formulation in PAPERS.md).  The standard
objective assumes every placed RAP survives; here each site ``v`` fails
independently with probability ``p_v`` and we optimize the expectation.

Closed form.  Fix a flow and sort the placed RAPs on its path by the
paper's serving preference — ascending detour, ties to the RAP reached
first in travel order (Theorem 1).  The flow is served by its ``i``-th
preference exactly when that RAP survives and every better-preferred RAP
failed, so

.. math::

   E[\\text{customers}] = \\text{vol} \\cdot \\sum_i
       \\Big(\\prod_{j<i} p_j\\Big) (1 - p_i) \\, f(d_i)

which is computable in one pass per flow — no enumeration over the
``2^k`` failure patterns.  With all ``p_v = 0`` the sum collapses to
``f(d_1)``: the standard (failure-free) objective.

The objective remains monotone submodular in the site set (it is a
nonnegative mixture over failure patterns of the standard coverage
objective, itself monotone submodular), so :class:`FailureAwareGreedy`
keeps the ``1 - 1/e`` guarantee.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..algorithms.base import PlacementAlgorithm, register
from ..core import Scenario
from ..errors import InvalidScenarioError, ReliabilityError
from ..graphs import NodeId


@dataclass(frozen=True)
class FailureModel:
    """Independent per-RAP failure probabilities ``p_v``.

    Sites absent from ``probabilities`` use ``default``.
    """

    probabilities: Mapping[NodeId, float] = field(default_factory=dict)
    default: float = 0.0

    def __post_init__(self) -> None:
        for node, p in self.probabilities.items():
            if not (0.0 <= p <= 1.0):
                raise ReliabilityError(
                    f"failure probability for {node!r} must be in [0, 1], "
                    f"got {p}"
                )
        if not (0.0 <= self.default <= 1.0):
            raise ReliabilityError(
                f"default failure probability must be in [0, 1], got "
                f"{self.default}"
            )

    @classmethod
    def uniform(cls, p: float) -> "FailureModel":
        """Every site fails with the same probability ``p``."""
        return cls(probabilities={}, default=p)

    @classmethod
    def reliable(cls) -> "FailureModel":
        """No failures (the standard objective)."""
        return cls.uniform(0.0)

    def probability(self, node: NodeId) -> float:
        """``p_v`` for one site."""
        return self.probabilities.get(node, self.default)


def _flow_expected(
    preferences: Sequence[Tuple[float, int, NodeId]],
    model: FailureModel,
    utility,
    attractiveness: float,
) -> float:
    """Expected attraction probability for one flow.

    ``preferences`` is sorted by ``(detour, travel rank)`` — the serving
    order among survivors.
    """
    survival_of_better_failing = 1.0
    expected = 0.0
    for detour, _, node in preferences:
        p = model.probability(node)
        expected += (
            survival_of_better_failing
            * (1.0 - p)
            * utility.probability(detour, attractiveness)
        )
        survival_of_better_failing *= p
        if survival_of_better_failing == 0.0:
            break
    return expected


def expected_attracted(
    scenario: Scenario,
    raps: Sequence[NodeId],
    model: FailureModel,
) -> float:
    """Expected attracted customers of ``raps`` under ``model``.

    Exact (closed form, polynomial); with ``model.reliable()`` it equals
    ``evaluate_placement(scenario, raps).attracted``.
    """
    rap_list = list(raps)
    if len(set(rap_list)) != len(rap_list):
        raise InvalidScenarioError(f"duplicate RAP sites in {rap_list!r}")
    for rap in rap_list:
        if rap not in scenario.network:
            raise InvalidScenarioError(
                f"RAP site {rap!r} is not an intersection"
            )
    rap_set = set(rap_list)
    coverage = scenario.coverage
    total = 0.0
    for flow_index, flow in enumerate(scenario.flows):
        preferences = [
            (detour, rank, node)
            for rank, (node, detour) in enumerate(
                coverage.options_for(flow_index)
            )
            if node in rap_set
        ]
        preferences.sort()
        total += flow.volume * _flow_expected(
            preferences, model, scenario.utility, flow.attractiveness
        )
    return total


@register("failure-aware-greedy")
class FailureAwareGreedy(PlacementAlgorithm):
    """Greedy on marginal *expected* gain under a :class:`FailureModel`.

    With the default (reliable) model this optimizes the standard
    objective; with failures it prefers redundancy where it pays — e.g.
    backing up a high-volume corridor's RAP once the expected loss there
    exceeds the marginal value of a new low-volume site.
    """

    name = "failure-aware-greedy"

    def __init__(self, model: Optional[FailureModel] = None) -> None:
        self.model = model if model is not None else FailureModel.reliable()

    def select(self, scenario: Scenario, k: int) -> List[NodeId]:
        """Pick up to ``k`` sites greedily on expected marginal gain."""
        coverage = scenario.coverage
        utility = scenario.utility
        model = self.model
        flows = scenario.flows
        # Travel rank of each node on each flow (for Theorem 1 ties).
        ranks: List[Dict[NodeId, int]] = [
            {node: rank for rank, (node, _) in enumerate(
                coverage.options_for(i))}
            for i in range(len(flows))
        ]
        # Per-flow preference lists of chosen sites and cached expectation.
        chosen_prefs: List[List[Tuple[float, int, NodeId]]] = [
            [] for _ in flows
        ]
        flow_expected = [0.0] * len(flows)

        selected: List[NodeId] = []
        selected_set = set()
        for _ in range(min(k, len(scenario.candidate_sites))):
            best_site: Optional[NodeId] = None
            best_gain = 0.0
            for site in scenario.candidate_sites:
                if site in selected_set:
                    continue
                gain = 0.0
                for entry in coverage.covering(site):
                    i = entry.flow_index
                    trial = list(chosen_prefs[i])
                    insort(trial, (entry.detour, ranks[i][site], site))
                    new = _flow_expected(
                        trial, model, utility, flows[i].attractiveness
                    )
                    gain += (new - flow_expected[i]) * flows[i].volume
                if gain > best_gain:
                    best_gain = gain
                    best_site = site
            if best_site is None:
                break  # no site adds expected value
            selected.append(best_site)
            selected_set.add(best_site)
            for entry in coverage.covering(best_site):
                i = entry.flow_index
                insort(
                    chosen_prefs[i],
                    (entry.detour, ranks[i][best_site], best_site),
                )
                flow_expected[i] = _flow_expected(
                    chosen_prefs[i], model, utility, flows[i].attractiveness
                )
        return selected


def exhaustive_expected_optimum(
    scenario: Scenario,
    k: int,
    model: FailureModel,
) -> Tuple[Tuple[NodeId, ...], float]:
    """Brute-force optimum of the expected-value objective (tests only).

    Enumerates all size-``k`` candidate subsets — exponential; keep
    instances tiny.
    """
    best_sites: Tuple[NodeId, ...] = ()
    best_value = 0.0
    for sites in combinations(scenario.candidate_sites, k):
        value = expected_attracted(scenario, list(sites), model)
        if value > best_value:
            best_sites, best_value = sites, value
    return best_sites, best_value
