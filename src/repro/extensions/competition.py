"""Competitive RAP placement between rival shops.

The paper sidesteps competition: "For simplicity, we do not consider the
commercial competition among different shops."  This extension models
it.  Rival shops place their own RAP fleets; a driver who received
advertisements from several shops patronizes the one offering the
*smallest detour* (the same rationality principle as Theorem 1, applied
across shops), detouring with probability ``f(that detour)``.

Formally, for competitors ``c`` with RAP sets ``S_c``:

    ``d_c(flow) = min over v in S_c on path(flow) of detour_c(v, flow)``
    the flow's customers go to ``argmin_c d_c(flow)`` (ties: earlier
    competitor in registration order), with probability ``f(d_min)``.

Provided tooling:

* :class:`CompetitiveScenario` — the shared market;
* :func:`evaluate_competition` — payoff of every competitor for fixed
  placements;
* :func:`best_response` — one competitor's greedy best response holding
  rivals fixed;
* :func:`alternating_play` — iterated best responses until no
  competitor moves (a pure-strategy equilibrium of the placement game)
  or a round limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import Scenario, TrafficFlow, UtilityFunction
from ..errors import InvalidScenarioError
from ..graphs import INFINITY, NodeId, RoadNetwork


@dataclass(frozen=True)
class Competitor:
    """One shop in the market."""

    name: str
    shop: NodeId

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidScenarioError("competitor needs a name")


class CompetitiveScenario:
    """Shared network/flows/utility; one scenario per competitor."""

    def __init__(
        self,
        network: RoadNetwork,
        flows: Sequence[TrafficFlow],
        competitors: Sequence[Competitor],
        utility: UtilityFunction,
        candidate_sites: Optional[Sequence[NodeId]] = None,
    ) -> None:
        if not competitors:
            raise InvalidScenarioError("need at least one competitor")
        names = [competitor.name for competitor in competitors]
        if len(set(names)) != len(names):
            raise InvalidScenarioError(f"duplicate competitor names: {names}")
        self.network = network
        self.flows = tuple(flows)
        self.competitors = tuple(competitors)
        self.utility = utility
        self.scenarios: Dict[str, Scenario] = {
            competitor.name: Scenario(
                network,
                flows,
                competitor.shop,
                utility,
                candidate_sites=candidate_sites,
            )
            for competitor in competitors
        }

    def candidate_sites(self) -> Tuple[NodeId, ...]:
        """Sites every competitor may rent (shared market)."""
        return self.scenarios[self.competitors[0].name].candidate_sites


def _flow_detours(
    scenario: CompetitiveScenario,
    placements: Dict[str, Sequence[NodeId]],
) -> Dict[str, List[float]]:
    """Per competitor, per flow: min detour among its on-path RAPs."""
    detours: Dict[str, List[float]] = {}
    for competitor in scenario.competitors:
        calculator = scenario.scenarios[competitor.name].detour_calculator
        sites = set(placements.get(competitor.name, ()))
        per_flow: List[float] = []
        for flow in scenario.flows:
            best = INFINITY
            for node, detour in calculator.detours_along(flow):
                if node in sites and detour < best:
                    best = detour
            per_flow.append(best)
        detours[competitor.name] = per_flow
    return detours


def evaluate_competition(
    scenario: CompetitiveScenario,
    placements: Dict[str, Sequence[NodeId]],
) -> Dict[str, float]:
    """Expected customers per competitor under competitive choice."""
    detours = _flow_detours(scenario, placements)
    payoffs = {competitor.name: 0.0 for competitor in scenario.competitors}
    for index, flow in enumerate(scenario.flows):
        winner: Optional[str] = None
        best = INFINITY
        for competitor in scenario.competitors:
            detour = detours[competitor.name][index]
            if detour < best:
                best = detour
                winner = competitor.name
        if winner is None:
            continue
        probability = scenario.utility.probability(best, flow.attractiveness)
        payoffs[winner] += probability * flow.volume
    return payoffs


def best_response(
    scenario: CompetitiveScenario,
    player: str,
    placements: Dict[str, Sequence[NodeId]],
    k: int,
) -> List[NodeId]:
    """Greedy best response of ``player`` holding every rival fixed.

    Greedy on the *competitive* marginal gain: a flow only pays the
    player if the player's detour beats every rival's current detour
    (ties go to the earlier-registered competitor, matching
    :func:`evaluate_competition`).
    """
    if player not in scenario.scenarios:
        raise InvalidScenarioError(f"unknown competitor {player!r}")
    rival_placements = {
        name: sites for name, sites in placements.items() if name != player
    }
    rival_detours = _flow_detours(scenario, rival_placements)
    player_order = [c.name for c in scenario.competitors].index(player)

    # Per flow: the bar to beat, and whether a tie suffices.
    bars: List[Tuple[float, bool]] = []
    for index, flow in enumerate(scenario.flows):
        best_rival = INFINITY
        rival_index = -1
        for order, competitor in enumerate(scenario.competitors):
            if competitor.name == player:
                continue
            detour = rival_detours[competitor.name][index]
            if detour < best_rival:
                best_rival = detour
                rival_index = order
        tie_wins = player_order < rival_index if rival_index >= 0 else True
        bars.append((best_rival, tie_wins))

    own = scenario.scenarios[player]
    calculator = own.detour_calculator
    utility = scenario.utility
    flows = scenario.flows

    chosen: List[NodeId] = []
    current: List[float] = [INFINITY] * len(flows)

    def payoff(detour_list: List[float]) -> float:
        total = 0.0
        for index, flow in enumerate(flows):
            detour = detour_list[index]
            bar, tie_wins = bars[index]
            if detour < bar or (detour == bar and detour < INFINITY and tie_wins):
                total += utility.probability(detour, flow.attractiveness) * flow.volume
        return total

    base_value = 0.0
    for _ in range(k):
        best_site: Optional[NodeId] = None
        best_value = base_value
        for site in own.candidate_sites:
            if site in chosen:
                continue
            trial = list(current)
            for entry in own.coverage.covering(site):
                if entry.detour < trial[entry.flow_index]:
                    trial[entry.flow_index] = entry.detour
            value = payoff(trial)
            if value > best_value:
                best_site, best_value = site, value
        if best_site is None:
            break
        chosen.append(best_site)
        for entry in own.coverage.covering(best_site):
            if entry.detour < current[entry.flow_index]:
                current[entry.flow_index] = entry.detour
        base_value = best_value
    return chosen


@dataclass
class PlayResult:
    """Outcome of :func:`alternating_play`."""

    placements: Dict[str, Tuple[NodeId, ...]]
    payoffs: Dict[str, float]
    rounds: int
    converged: bool


def alternating_play(
    scenario: CompetitiveScenario,
    k: int,
    max_rounds: int = 10,
) -> PlayResult:
    """Iterated greedy best responses in registration order.

    Stops when a full round changes nobody's placement (a pure-strategy
    equilibrium of the greedy-best-response dynamic) or after
    ``max_rounds`` rounds.
    """
    if max_rounds < 1:
        raise InvalidScenarioError(f"max_rounds must be >= 1, got {max_rounds}")
    placements: Dict[str, Sequence[NodeId]] = {
        competitor.name: () for competitor in scenario.competitors
    }
    converged = False
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        changed = False
        for competitor in scenario.competitors:
            response = best_response(scenario, competitor.name, placements, k)
            if tuple(response) != tuple(placements[competitor.name]):
                placements[competitor.name] = tuple(response)
                changed = True
        if not changed:
            converged = True
            break
    return PlayResult(
        placements={name: tuple(sites) for name, sites in placements.items()},
        payoffs=evaluate_competition(scenario, placements),
        rounds=rounds,
        converged=converged,
    )


def price_of_anarchy(
    scenario: CompetitiveScenario,
    k: int,
    max_rounds: int = 10,
) -> Tuple[float, PlayResult]:
    """Cooperative-vs-competitive demand ratio (>= 1).

    Plays the alternating-best-response game, then compares the total
    competitive demand against a merged chain (one owner of every shop)
    jointly optimizing the same total RAP budget.  A ratio of 1.05 reads
    "competition burns ~5% of the attainable demand" — the placement
    game's empirical price of anarchy.
    """
    from ..algorithms import MarginalGainGreedy
    from .multi_shop import MultiShopScenario

    play = alternating_play(scenario, k, max_rounds=max_rounds)
    competitive_total = sum(play.payoffs.values())

    merged = MultiShopScenario(
        scenario.network,
        scenario.flows,
        shops=[competitor.shop for competitor in scenario.competitors],
        utility=scenario.utility,
    )
    budget = min(
        k * len(scenario.competitors), len(merged.candidate_sites)
    )
    cooperative = MarginalGainGreedy().place(merged, budget)
    if competitive_total <= 0:
        ratio = float("inf") if cooperative.attracted > 0 else 1.0
    else:
        ratio = max(1.0, cooperative.attracted / competitive_total)
    return ratio, play
