"""Multi-shop placement (paper Section III-A / future work).

The paper's model "can also be easily extended to scenarios with multiple
shops: the result depends on the shop that provides the smallest detour
distance among all the shops" (no commercial competition).  A franchise
with several branches places one shared fleet of RAPs; a driver detours
to whichever branch is cheapest for them.

Implementation: :class:`MultiShopDetourCalculator` duck-types the
single-shop :class:`~repro.core.detour.DetourCalculator` interface with
``detour = min over shops``; :class:`MultiShopScenario` subclasses
:class:`~repro.core.scenario.Scenario` and swaps the calculator in, so
*every* placement algorithm and evaluator in the library works on
multi-shop instances unchanged.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..core import Scenario, TrafficFlow, UtilityFunction
from ..core.detour import DetourCalculator
from ..errors import InvalidScenarioError
from ..graphs import INFINITY, NodeId, RoadNetwork


class MultiShopDetourCalculator:
    """Min-over-shops detour engine (same interface as DetourCalculator)."""

    def __init__(
        self,
        network: RoadNetwork,
        shops: Sequence[NodeId],
        mode: str = "shortest",
    ) -> None:
        if not shops:
            raise InvalidScenarioError("need at least one shop")
        if len(set(shops)) != len(shops):
            raise InvalidScenarioError(f"duplicate shops in {list(shops)!r}")
        self._shops: Tuple[NodeId, ...] = tuple(shops)
        self._calculators = [
            DetourCalculator(network, shop, mode=mode) for shop in self._shops
        ]
        self._network = network
        self._mode = mode

    @property
    def network(self) -> RoadNetwork:
        """The shared road network."""
        return self._network

    @property
    def shops(self) -> Tuple[NodeId, ...]:
        """All branch locations."""
        return self._shops

    @property
    def mode(self) -> str:
        """Detour mode shared by every per-branch calculator."""
        return self._mode

    def warm_up(self, flows: List[TrafficFlow]) -> None:
        """Precompute destination fields on every branch calculator."""
        for calculator in self._calculators:
            calculator.warm_up(flows)

    def detour(self, node: NodeId, flow: TrafficFlow) -> float:
        """Minimum detour over all branches for one (node, flow) pair."""
        return min(
            calculator.detour(node, flow) for calculator in self._calculators
        )

    def detours_along(self, flow: TrafficFlow) -> Iterator[Tuple[NodeId, float]]:
        """Per-node minimum over all shops, walked once per shop."""
        per_shop = [
            list(calculator.detours_along(flow))
            for calculator in self._calculators
        ]
        for entries in zip(*per_shop):
            node = entries[0][0]
            yield node, min(detour for _, detour in entries)

    def best_detour(self, flow: TrafficFlow) -> Tuple[NodeId, float]:
        """The on-path node with the smallest min-over-branches detour."""
        best_node = flow.origin
        best = INFINITY
        for node, detour in self.detours_along(flow):
            if detour < best:
                best_node, best = node, detour
        return best_node, best

    def serving_shop(self, node: NodeId, flow: TrafficFlow) -> NodeId:
        """Which branch actually serves a driver detouring from ``node``."""
        detours = [
            calculator.detour(node, flow) for calculator in self._calculators
        ]
        return self._shops[detours.index(min(detours))]


class MultiShopScenario(Scenario):
    """A scenario whose "shop" is a set of branches.

    ``scenario.shop`` reports the first branch for compatibility;
    :attr:`shops` has all of them.
    """

    def __init__(
        self,
        network: RoadNetwork,
        flows: Sequence[TrafficFlow],
        shops: Sequence[NodeId],
        utility: UtilityFunction,
        candidate_sites: Sequence[NodeId] = None,
        detour_mode: str = "shortest",
    ) -> None:
        if not shops:
            raise InvalidScenarioError("need at least one shop")
        for shop in shops:
            if shop not in network:
                raise InvalidScenarioError(
                    f"shop {shop!r} is not an intersection"
                )
        super().__init__(
            network,
            flows,
            shops[0],
            utility,
            candidate_sites=candidate_sites,
            detour_mode=detour_mode,
        )
        self._shops: Tuple[NodeId, ...] = tuple(shops)

    @property
    def shops(self) -> Tuple[NodeId, ...]:
        """All branch locations."""
        return self._shops

    @property
    def detour_calculator(self):  # type: ignore[override]
        """Min-over-branches calculator (same interface as the single-shop one)."""
        if self._calculator is None:
            self._calculator = MultiShopDetourCalculator(
                self.network, self._shops, mode=self._detour_mode
            )
        return self._calculator

    def __repr__(self) -> str:
        return (
            f"MultiShopScenario(shops={list(self._shops)!r}, "
            f"flows={len(self.flows)}, utility={self.utility!r})"
        )
