"""Duty-cycled RAPs with time-of-day traffic profiles.

The paper's model is a daily aggregate; its own reference [16] (Han,
Liu & Luo, "Duty-cycle-aware minimum-energy multicasting in wireless
sensor networks") points at the practical wrinkle: battery- or
solar-powered roadside units cannot broadcast all day.  This extension
adds the time dimension:

* a :class:`HourlyProfile` distributes each flow's daily volume over 24
  hours (commuter flows peak in the evening — the paper's canonical
  "drive back home from work" story);
* a :class:`DutySchedule` says which hours each RAP broadcasts, under a
  budget of active hours per RAP;
* expected customers become
  ``Σ_flows Σ_hours profile[h] · volume · f(best detour among RAPs
  active at h on the path)``;
* :class:`DutyCycleGreedy` jointly picks sites *and* their active hours
  greedily over (site, hour-block) pairs.

The model collapses to the paper's when every RAP is always on — a
property the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import Scenario
from ..errors import InfeasiblePlacementError, InvalidScenarioError
from ..graphs import INFINITY, NodeId

HOURS = 24


@dataclass(frozen=True)
class HourlyProfile:
    """A distribution of daily volume over the 24 hours."""

    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != HOURS:
            raise InvalidScenarioError(
                f"profile needs {HOURS} weights, got {len(self.weights)}"
            )
        if any(w < 0 for w in self.weights):
            raise InvalidScenarioError("profile weights must be >= 0")
        total = sum(self.weights)
        if total <= 0:
            raise InvalidScenarioError("profile must have positive mass")
        object.__setattr__(
            self, "weights", tuple(w / total for w in self.weights)
        )

    @classmethod
    def uniform(cls) -> "HourlyProfile":
        """Equal weight on all 24 hours."""
        return cls(weights=tuple(1.0 for _ in range(HOURS)))

    @classmethod
    def evening_commute(cls, peak: int = 18, spread: int = 2) -> "HourlyProfile":
        """A commuter peak around ``peak`` o'clock (paper's drive-home)."""
        weights = []
        for hour in range(HOURS):
            distance = min(abs(hour - peak), HOURS - abs(hour - peak))
            weights.append(max(0.0, 1.0 - distance / (spread + 1)))
        if sum(weights) == 0:
            raise InvalidScenarioError("degenerate commute profile")
        return cls(weights=tuple(weights))


class DutyCycleProblem:
    """A scenario plus per-flow hourly profiles and a duty budget."""

    def __init__(
        self,
        scenario: Scenario,
        profiles: Optional[Sequence[HourlyProfile]] = None,
        active_hours_per_rap: int = 8,
    ) -> None:
        if not (1 <= active_hours_per_rap <= HOURS):
            raise InvalidScenarioError(
                f"active hours must be in [1, {HOURS}], got "
                f"{active_hours_per_rap}"
            )
        self.scenario = scenario
        if profiles is None:
            profiles = [HourlyProfile.evening_commute()] * len(scenario.flows)
        if len(profiles) != len(scenario.flows):
            raise InvalidScenarioError(
                f"{len(profiles)} profiles for {len(scenario.flows)} flows"
            )
        self.profiles = tuple(profiles)
        self.active_hours_per_rap = active_hours_per_rap


@dataclass(frozen=True)
class DutySchedule:
    """Chosen sites with their broadcast hours."""

    hours_by_site: Dict[NodeId, Tuple[int, ...]]
    expected_customers: float

    @property
    def sites(self) -> Tuple[NodeId, ...]:
        """The rented RAP sites."""
        return tuple(self.hours_by_site)


def evaluate_schedule(
    problem: DutyCycleProblem,
    hours_by_site: Dict[NodeId, Sequence[int]],
) -> float:
    """Expected daily customers for an explicit schedule."""
    scenario = problem.scenario
    utility = scenario.utility
    coverage = scenario.coverage
    active_at: Dict[int, List[NodeId]] = {h: [] for h in range(HOURS)}
    for site, hours in hours_by_site.items():
        for hour in hours:
            if not (0 <= hour < HOURS):
                raise InvalidScenarioError(f"hour {hour} out of range")
            active_at[hour].append(site)
    # Per flow and hour: best detour among active on-path sites.
    total = 0.0
    for index, flow in enumerate(scenario.flows):
        options = dict(coverage.options_for(index))
        profile = problem.profiles[index]
        for hour in range(HOURS):
            weight = profile.weights[hour]
            if weight == 0.0:
                continue
            best = INFINITY
            for site in active_at[hour]:
                detour = options.get(site)
                if detour is not None and detour < best:
                    best = detour
            if best == INFINITY:
                continue
            total += (
                utility.probability(best, flow.attractiveness)
                * flow.volume
                * weight
            )
    return total


class DutyCycleGreedy:
    """Greedy over (site, hour) atoms under the per-RAP hour budget."""

    name = "duty-cycle-greedy"

    def solve(self, problem: DutyCycleProblem, k: int) -> DutySchedule:
        """Greedy over (site, hour) atoms under slot and site budgets."""
        scenario = problem.scenario
        if k < 0:
            raise InfeasiblePlacementError(f"k must be non-negative, got {k}")
        if k > len(scenario.candidate_sites):
            raise InfeasiblePlacementError(
                f"k={k} exceeds the {len(scenario.candidate_sites)} sites"
            )
        coverage = scenario.coverage
        utility = scenario.utility
        flows = scenario.flows

        # best_detour[flow][hour]: best detour among active sites.
        best_detour = [
            [INFINITY] * HOURS for _ in range(len(flows))
        ]
        hours_by_site: Dict[NodeId, List[int]] = {}
        value = 0.0

        def gain_of(site: NodeId, hour: int) -> float:
            gain = 0.0
            for entry in coverage.covering(site):
                current = best_detour[entry.flow_index][hour]
                if entry.detour >= current:
                    continue
                flow = flows[entry.flow_index]
                weight = problem.profiles[entry.flow_index].weights[hour]
                if weight == 0.0:
                    continue
                before = (
                    utility.probability(current, flow.attractiveness)
                    if current != INFINITY
                    else 0.0
                )
                after = utility.probability(entry.detour, flow.attractiveness)
                gain += (after - before) * flow.volume * weight
            return gain

        while True:
            best_pair: Optional[Tuple[NodeId, int]] = None
            best_gain = 0.0
            for site in scenario.candidate_sites:
                allocated = hours_by_site.get(site)
                if allocated is None and len(hours_by_site) >= k:
                    continue
                if (
                    allocated is not None
                    and len(allocated) >= problem.active_hours_per_rap
                ):
                    continue
                taken = set(allocated or ())
                for hour in range(HOURS):
                    if hour in taken:
                        continue
                    gain = gain_of(site, hour)
                    if gain > best_gain:
                        best_pair, best_gain = (site, hour), gain
            if best_pair is None:
                break
            site, hour = best_pair
            hours_by_site.setdefault(site, []).append(hour)
            for entry in coverage.covering(site):
                if entry.detour < best_detour[entry.flow_index][hour]:
                    best_detour[entry.flow_index][hour] = entry.detour
            value += best_gain

        return DutySchedule(
            hours_by_site={
                site: tuple(sorted(hours))
                for site, hours in hours_by_site.items()
            },
            expected_customers=value,
        )


def profile_from_timestamps(
    timestamps: Sequence[float],
    smoothing: float = 1.0,
) -> HourlyProfile:
    """Estimate an :class:`HourlyProfile` from observed departure times.

    ``timestamps`` are seconds-of-day (values wrap modulo 24h, so raw
    epoch-like offsets work too).  ``smoothing`` is a Laplace prior added
    to every hour bin, keeping unobserved hours at a small positive
    weight instead of an absolute zero (real demand is never exactly
    zero, and a hard zero would make a mis-specified schedule look
    worthless).
    """
    if not timestamps:
        raise InvalidScenarioError("need at least one timestamp")
    if smoothing < 0:
        raise InvalidScenarioError(f"smoothing must be >= 0, got {smoothing}")
    counts = [smoothing] * HOURS
    seconds_per_day = 24 * 3600
    for timestamp in timestamps:
        hour = int((timestamp % seconds_per_day) // 3600)
        counts[hour] += 1.0
    return HourlyProfile(weights=tuple(counts))


def journey_departure_times(journeys: Sequence) -> List[float]:
    """First-sample timestamps of each journey (feed to
    :func:`profile_from_timestamps`)."""
    departures: List[float] = []
    for journey in journeys:
        if journey.records:
            departures.append(journey.records[0].timestamp)
    if not departures:
        raise InvalidScenarioError("no journeys with samples")
    return departures
