"""Budgeted RAP placement (cost-aware extension).

The paper counts RAPs (uniform cost ``k``); in practice, hosting a RAP
downtown costs more than in a suburb.  This extension solves the
budgeted variant: each candidate intersection has a cost, and the total
spend must stay within a budget.

The algorithm is Khuller, Moss & Naor's modified greedy for budgeted
maximum coverage (the paper's own reference [18]): run cost-benefit
greedy (max marginal gain per unit cost among affordable sites), and
separately consider the best single affordable site; return the better
of the two.  This guarantees ``(1 - 1/e)/2`` of the optimum for modular
costs, and is a strong practical heuristic for our (submodular)
decreasing-utility objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from ..core import IncrementalEvaluator, Placement, Scenario, evaluate_placement
from ..errors import InfeasiblePlacementError
from ..graphs import NodeId

CostModel = Union[float, Dict[NodeId, float], Callable[[NodeId], float]]


@dataclass(frozen=True)
class BudgetedResult:
    """Outcome of a budgeted placement."""

    placement: Placement
    spent: float
    budget: float

    @property
    def remaining(self) -> float:
        """Budget left unspent."""
        return self.budget - self.spent


def _cost_fn(costs: CostModel) -> Callable[[NodeId], float]:
    if callable(costs):
        return costs
    if isinstance(costs, dict):
        def lookup(node: NodeId) -> float:
            try:
                return costs[node]
            except KeyError:
                raise InfeasiblePlacementError(
                    f"no cost defined for candidate site {node!r}"
                ) from None

        return lookup
    uniform = float(costs)
    return lambda node: uniform


class BudgetedGreedy:
    """Khuller-Moss-Naor modified greedy for budgeted placement."""

    name = "budgeted-greedy"

    def __init__(self, costs: CostModel, budget: float) -> None:
        if budget < 0:
            raise InfeasiblePlacementError(
                f"budget must be non-negative, got {budget}"
            )
        self._cost_of = _cost_fn(costs)
        self._budget = budget

    def _validated_costs(self, scenario: Scenario) -> Dict[NodeId, float]:
        costs: Dict[NodeId, float] = {}
        for site in scenario.candidate_sites:
            cost = self._cost_of(site)
            if cost <= 0:
                raise InfeasiblePlacementError(
                    f"site {site!r} has non-positive cost {cost}"
                )
            costs[site] = cost
        return costs

    def select(self, scenario: Scenario) -> List[NodeId]:
        """KMN modified greedy: max(cost-benefit greedy, best single site)."""
        costs = self._validated_costs(scenario)

        # Branch 1: cost-benefit greedy.
        evaluator = IncrementalEvaluator(scenario)
        chosen: List[NodeId] = []
        remaining = self._budget
        while True:
            best_site: Optional[NodeId] = None
            best_ratio = 0.0
            for site in scenario.candidate_sites:
                if evaluator.is_placed(site) or costs[site] > remaining:
                    continue
                gain = evaluator.gain(site)
                if gain <= 0:
                    continue
                ratio = gain / costs[site]
                if ratio > best_ratio:
                    best_site, best_ratio = site, ratio
            if best_site is None:
                break
            evaluator.place(best_site)
            chosen.append(best_site)
            remaining -= costs[best_site]
        greedy_value = evaluator.attracted

        # Branch 2: the best single affordable site.
        single_eval = IncrementalEvaluator(scenario)
        best_single: Optional[NodeId] = None
        best_single_value = 0.0
        for site in scenario.candidate_sites:
            if costs[site] > self._budget:
                continue
            gain = single_eval.gain(site)
            if gain > best_single_value:
                best_single, best_single_value = site, gain

        if best_single is not None and best_single_value > greedy_value:
            return [best_single]
        return chosen

    def place(self, scenario: Scenario) -> BudgetedResult:
        """Select under the budget and return the evaluated result."""
        sites = self.select(scenario)
        costs = self._validated_costs(scenario)
        placement = evaluate_placement(scenario, sites, algorithm=self.name)
        return BudgetedResult(
            placement=placement,
            spent=sum(costs[site] for site in sites),
            budget=self._budget,
        )


def location_based_costs(
    scenario: Scenario,
    center_cost: float = 3.0,
    city_cost: float = 2.0,
    suburb_cost: float = 1.0,
) -> Dict[NodeId, float]:
    """A realistic cost model: busier intersections cost more to rent.

    Uses the experiment harness's traffic-based classification.
    """
    from ..experiments import LocationClass, classify_intersections

    classes = classify_intersections(scenario.network, list(scenario.flows))
    price = {
        LocationClass.CITY_CENTER: center_cost,
        LocationClass.CITY: city_cost,
        LocationClass.SUBURB: suburb_cost,
    }
    return {
        site: price[classes[site]] for site in scenario.candidate_sites
    }


@dataclass(frozen=True)
class FrontierPoint:
    """One point of the cost-coverage frontier."""

    budget: float
    spent: float
    attracted: float
    raps: int


def cost_frontier(
    scenario: Scenario,
    costs: CostModel,
    budgets: "List[float]",
) -> "List[FrontierPoint]":
    """The budget-vs-attracted frontier under a cost model.

    Runs :class:`BudgetedGreedy` at each budget; monotone by
    construction (greedy with a larger budget never attracts fewer
    customers — the test suite checks it), giving planners the
    diminishing-returns curve to pick a budget from.
    """
    if not budgets:
        raise InfeasiblePlacementError("need at least one budget")
    points: "List[FrontierPoint]" = []
    for budget in sorted(budgets):
        result = BudgetedGreedy(costs=costs, budget=budget).place(scenario)
        points.append(
            FrontierPoint(
                budget=budget,
                spent=result.spent,
                attracted=result.placement.attracted,
                raps=len(result.placement.raps),
            )
        )
    return points
