"""Extensions beyond the paper's core contribution.

The paper's conclusion names multi-shop scheduling as future work; the
budgeted variant generalizes the uniform RAP count to per-site costs
(using the paper's own reference [18], Khuller-Moss-Naor).
"""

from .budgeted import (
    BudgetedGreedy,
    BudgetedResult,
    location_based_costs,
)
from .competition import (
    Competitor,
    CompetitiveScenario,
    PlayResult,
    alternating_play,
    best_response,
    evaluate_competition,
)
from .duty_cycle import (
    DutyCycleGreedy,
    DutyCycleProblem,
    DutySchedule,
    HourlyProfile,
    evaluate_schedule,
)
from .failure_aware import (
    FailureAwareGreedy,
    FailureModel,
    exhaustive_expected_optimum,
    expected_attracted,
)
from .multi_shop import MultiShopDetourCalculator, MultiShopScenario
from .scheduling import (
    Campaign,
    GreedyScheduler,
    ScheduleResult,
    SchedulingProblem,
)

__all__ = [
    "BudgetedGreedy",
    "BudgetedResult",
    "Campaign",
    "CompetitiveScenario",
    "Competitor",
    "DutyCycleGreedy",
    "DutyCycleProblem",
    "DutySchedule",
    "FailureAwareGreedy",
    "FailureModel",
    "GreedyScheduler",
    "HourlyProfile",
    "MultiShopDetourCalculator",
    "MultiShopScenario",
    "PlayResult",
    "ScheduleResult",
    "SchedulingProblem",
    "alternating_play",
    "best_response",
    "evaluate_competition",
    "evaluate_schedule",
    "exhaustive_expected_optimum",
    "expected_attracted",
    "location_based_costs",
]

from .budgeted import FrontierPoint, cost_frontier  # noqa: E402

__all__.extend(["FrontierPoint", "cost_frontier"])

from .duty_cycle import (  # noqa: E402
    journey_departure_times,
    profile_from_timestamps,
)

__all__.extend(["journey_departure_times", "profile_from_timestamps"])

from .competition import price_of_anarchy  # noqa: E402

__all__.append("price_of_anarchy")
