"""Multi-advertisement scheduling (paper future work).

The paper closes with: "Our future work would consider a further
scheduling with respect to multiple shops and multiple kinds of
advertisements."  This module implements that scenario:

* several **campaigns** (shop + utility + value per attracted customer)
  compete for broadcast capacity;
* an infrastructure operator owns up to ``k`` RAP *sites*, each with a
  fixed number of broadcast **slots** (a RAP can only cycle so many ads
  without drivers tuning out — cf. Li et al.'s bandwidth-allocation
  formulation the paper builds on);
* assigning campaign ``c`` a slot at site ``v`` adds ``v`` to ``c``'s
  personal RAP set, whose value is ``c``'s attracted customers times its
  value weight.

The objective is monotone submodular over (site, campaign) pairs and the
constraints form the intersection of two partition-style constraints
(slots per site, sites per operator); greedy over pairs is the standard
strong heuristic and what :class:`GreedyScheduler` implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    IncrementalEvaluator,
    Scenario,
    TrafficFlow,
    UtilityFunction,
)
from ..errors import InfeasiblePlacementError, InvalidScenarioError
from ..graphs import NodeId, RoadNetwork


@dataclass(frozen=True)
class Campaign:
    """One advertiser: a shop, a utility, and a revenue weight."""

    name: str
    shop: NodeId
    utility: UtilityFunction
    value_per_customer: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidScenarioError("campaign needs a name")
        if self.value_per_customer <= 0:
            raise InvalidScenarioError(
                f"campaign {self.name!r} value/customer must be positive"
            )


@dataclass
class ScheduleResult:
    """Outcome of a scheduling run."""

    sites: Tuple[NodeId, ...]
    """Distinct RAP sites rented."""

    assignment: Dict[NodeId, Tuple[str, ...]]
    """Campaigns broadcast at each site (within slot capacity)."""

    campaign_values: Dict[str, float]
    """Weighted attracted customers per campaign."""

    campaign_sites: Dict[str, Tuple[NodeId, ...]] = field(default_factory=dict)

    @property
    def total_value(self) -> float:
        """Sum of weighted attracted customers across campaigns."""
        return sum(self.campaign_values.values())


class SchedulingProblem:
    """Shared network/flows plus the competing campaigns."""

    def __init__(
        self,
        network: RoadNetwork,
        flows: Sequence[TrafficFlow],
        campaigns: Sequence[Campaign],
        slots_per_rap: int = 2,
        candidate_sites: Optional[Sequence[NodeId]] = None,
    ) -> None:
        if not campaigns:
            raise InvalidScenarioError("need at least one campaign")
        names = [campaign.name for campaign in campaigns]
        if len(set(names)) != len(names):
            raise InvalidScenarioError(f"duplicate campaign names in {names}")
        if slots_per_rap < 1:
            raise InvalidScenarioError(
                f"slots_per_rap must be >= 1, got {slots_per_rap}"
            )
        self.network = network
        self.flows = tuple(flows)
        self.campaigns = tuple(campaigns)
        self.slots_per_rap = slots_per_rap
        # One scenario per campaign — they share the network and flows but
        # have distinct shops/utilities (and hence detour structures).
        self.scenarios: Dict[str, Scenario] = {
            campaign.name: Scenario(
                network,
                flows,
                campaign.shop,
                campaign.utility,
                candidate_sites=candidate_sites,
            )
            for campaign in campaigns
        }

    def candidate_sites(self) -> Tuple[NodeId, ...]:
        """Sites available for renting (shared by every campaign)."""
        first = self.campaigns[0].name
        return self.scenarios[first].candidate_sites


class GreedyScheduler:
    """Greedy over (site, campaign) slot assignments."""

    name = "greedy-scheduler"

    def solve(self, problem: SchedulingProblem, k: int) -> ScheduleResult:
        """Rent up to ``k`` sites and fill slots greedily."""
        if k < 0:
            raise InfeasiblePlacementError(f"k must be non-negative, got {k}")
        sites = problem.candidate_sites()
        if k > len(sites):
            raise InfeasiblePlacementError(
                f"k={k} exceeds the {len(sites)} candidate sites"
            )
        evaluators: Dict[str, IncrementalEvaluator] = {
            campaign.name: IncrementalEvaluator(problem.scenarios[campaign.name])
            for campaign in problem.campaigns
        }
        weight = {
            campaign.name: campaign.value_per_customer
            for campaign in problem.campaigns
        }
        rented: List[NodeId] = []
        slots_used: Dict[NodeId, int] = {}
        assignment: Dict[NodeId, List[str]] = {}

        while True:
            best_pair: Optional[Tuple[NodeId, str]] = None
            best_gain = 0.0
            for site in sites:
                is_rented = site in slots_used
                if not is_rented and len(rented) >= k:
                    continue  # cannot rent another site
                if is_rented and slots_used[site] >= problem.slots_per_rap:
                    continue  # no slot left here
                for campaign in problem.campaigns:
                    name = campaign.name
                    if name in assignment.get(site, ()):  # type: ignore[arg-type]
                        continue  # a campaign needs only one slot per site
                    evaluator = evaluators[name]
                    gain = evaluator.gain(site) * weight[name]
                    if gain > best_gain:
                        best_pair, best_gain = (site, name), gain
            if best_pair is None:
                break
            site, name = best_pair
            evaluators[name].place(site)
            if site not in slots_used:
                slots_used[site] = 0
                assignment[site] = []
                rented.append(site)
            slots_used[site] += 1
            assignment[site].append(name)

        campaign_values = {
            name: evaluator.attracted * weight[name]
            for name, evaluator in evaluators.items()
        }
        campaign_sites = {
            name: evaluator.placed for name, evaluator in evaluators.items()
        }
        return ScheduleResult(
            sites=tuple(rented),
            assignment={
                site: tuple(names) for site, names in assignment.items()
            },
            campaign_values=campaign_values,
            campaign_sites=campaign_sites,
        )
