"""Map matching: GPS journeys back onto the road network.

Pipeline per journey (see :func:`match_journey`):

1. **snap** every sample to the nearest intersection (via a uniform grid
   spatial index); samples farther than ``max_snap_distance`` from any
   intersection are dropped;
2. **collapse** consecutive duplicates into a node sequence;
3. **repair** gaps: consecutive snapped nodes that are not adjacent on
   the network are joined by their shortest path (GPS sampling is usually
   coarser than one block);
4. **erase loops**: noise can make the sequence revisit a node; loop
   erasure keeps the first visit and drops the excursion, yielding the
   simple path that :class:`~repro.core.flow.TrafficFlow` requires.

A journey that cannot be matched (all samples off-map, or endpoints
mutually unreachable) raises :class:`~repro.errors.MapMatchError`;
:func:`match_journeys` can either propagate or skip-and-count, and
:func:`match_journeys_lenient` additionally quarantines failures into a
:class:`~repro.reliability.PipelineHealth` report under an
:class:`~repro.reliability.ErrorBudget` (abort only past the budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..errors import MapMatchError, NoPathError
from ..graphs import NodeId, Point, RoadNetwork, shortest_path
from .records import Journey

if TYPE_CHECKING:  # imported lazily at runtime to keep traces a leaf
    from ..reliability.health import ErrorBudget, PipelineHealth


class GridIndex:
    """Uniform-grid spatial index over intersections."""

    def __init__(self, network: RoadNetwork, cell_size: Optional[float] = None):
        if network.node_count == 0:
            raise MapMatchError("cannot index an empty network")
        self._network = network
        box = network.bounding_box()
        if cell_size is None:
            # Aim for O(1) nodes per cell on a roughly uniform layout.
            area = max(box.width * box.height, 1.0)
            cell_size = math.sqrt(area / network.node_count) or 1.0
        self._cell = max(cell_size, 1e-9)
        self._origin = Point(box.min_x, box.min_y)
        self._buckets: Dict[Tuple[int, int], List[NodeId]] = {}
        for node in network.nodes():
            self._buckets.setdefault(self._key(network.position(node)), []).append(
                node
            )

    def _key(self, point: Point) -> Tuple[int, int]:
        return (
            int((point.x - self._origin.x) // self._cell),
            int((point.y - self._origin.y) // self._cell),
        )

    def nearest(self, point: Point) -> Tuple[NodeId, float]:
        """Nearest intersection and its distance, searched ring by ring.

        Any node in ring ``r`` (Chebyshev cell distance) is at least
        ``(r - 1) * cell`` feet away, so once the current best beats that
        lower bound for the next ring the search can stop.
        """
        center = self._key(point)
        keys = self._buckets.keys()
        max_radius = max(
            max(abs(kx - center[0]), abs(ky - center[1])) for kx, ky in keys
        )
        best: Optional[NodeId] = None
        best_distance = math.inf
        radius = 0
        while radius <= max_radius or best is None:
            for cx in range(center[0] - radius, center[0] + radius + 1):
                for cy in range(center[1] - radius, center[1] + radius + 1):
                    if max(abs(cx - center[0]), abs(cy - center[1])) != radius:
                        continue  # scan the ring only, not the full square
                    for node in self._buckets.get((cx, cy), ()):
                        distance = self._network.position(node).distance_to(point)
                        if distance < best_distance:
                            best, best_distance = node, distance
            if best is not None and best_distance <= radius * self._cell:
                break
            radius += 1
            if radius > max_radius + 2 and best is not None:
                break
        if best is None:  # unreachable: the index refuses empty networks
            raise MapMatchError(
                f"spatial index found no intersection near {point!r}"
            )
        return best, best_distance


@dataclass
class MatchResult:
    """Outcome of matching one journey."""

    journey: Journey
    path: Tuple[NodeId, ...]
    snapped_samples: int
    dropped_samples: int
    repaired_gaps: int
    erased_loops: int


@dataclass
class MatchReport:
    """Aggregate over a whole trace."""

    results: List[MatchResult] = field(default_factory=list)
    failures: List[Tuple[Journey, str]] = field(default_factory=list)

    @property
    def matched_count(self) -> int:
        """Journeys matched successfully."""
        return len(self.results)

    @property
    def failure_count(self) -> int:
        """Journeys that could not be matched."""
        return len(self.failures)


def snap_samples(
    journey: Journey,
    index: GridIndex,
    max_snap_distance: float,
) -> Tuple[List[NodeId], int]:
    """Snap each sample to its nearest intersection; drop outliers."""
    snapped: List[NodeId] = []
    dropped = 0
    for record in journey.records:
        node, distance = index.nearest(record.position)
        if distance <= max_snap_distance:
            snapped.append(node)
        else:
            dropped += 1
    return snapped, dropped


def collapse_duplicates(nodes: Sequence[NodeId]) -> List[NodeId]:
    """Remove consecutive repeats (bus idling / dense sampling)."""
    collapsed: List[NodeId] = []
    for node in nodes:
        if not collapsed or collapsed[-1] != node:
            collapsed.append(node)
    return collapsed


def repair_gaps(
    network: RoadNetwork, nodes: Sequence[NodeId]
) -> Tuple[List[NodeId], int]:
    """Connect non-adjacent consecutive nodes via shortest paths."""
    if not nodes:
        return [], 0
    repaired: List[NodeId] = [nodes[0]]
    gaps = 0
    for node in nodes[1:]:
        previous = repaired[-1]
        if network.has_road(previous, node):
            repaired.append(node)
            continue
        try:
            bridge = shortest_path(network, previous, node)
        except NoPathError:
            raise MapMatchError(
                f"no drivable route between snapped nodes {previous!r} and "
                f"{node!r}"
            ) from None
        repaired.extend(bridge[1:])
        gaps += 1
    return repaired, gaps


def erase_loops(nodes: Sequence[NodeId]) -> Tuple[List[NodeId], int]:
    """Loop-erase the walk: keep the prefix up to each first revisit."""
    path: List[NodeId] = []
    seen: Dict[NodeId, int] = {}
    erased = 0
    for node in nodes:
        if node in seen:
            cut = seen[node]
            for removed in path[cut + 1 :]:
                del seen[removed]
            path = path[: cut + 1]
            erased += 1
        else:
            seen[node] = len(path)
            path.append(node)
    return path, erased


def match_journey(
    network: RoadNetwork,
    journey: Journey,
    index: Optional[GridIndex] = None,
    max_snap_distance: float = math.inf,
) -> MatchResult:
    """Run the full pipeline on one journey."""
    if index is None:
        index = GridIndex(network)
    snapped, dropped = snap_samples(journey, index, max_snap_distance)
    if len(snapped) == 0:
        raise MapMatchError(
            f"journey {journey.journey_id!r}: every sample was farther than "
            f"{max_snap_distance:g} ft from the network"
        )
    collapsed = collapse_duplicates(snapped)
    repaired, gaps = repair_gaps(network, collapsed)
    path, loops = erase_loops(repaired)
    if len(path) < 2:
        raise MapMatchError(
            f"journey {journey.journey_id!r} collapses to fewer than two "
            "distinct intersections"
        )
    return MatchResult(
        journey=journey,
        path=tuple(path),
        snapped_samples=len(snapped),
        dropped_samples=dropped,
        repaired_gaps=gaps,
        erased_loops=loops,
    )


def match_journeys(
    network: RoadNetwork,
    journeys: Sequence[Journey],
    max_snap_distance: float = math.inf,
    skip_failures: bool = True,
) -> MatchReport:
    """Match a whole trace; failures are collected (or re-raised)."""
    index = GridIndex(network)
    report = MatchReport()
    for journey in journeys:
        try:
            report.results.append(
                match_journey(network, journey, index, max_snap_distance)
            )
        except MapMatchError as error:
            if not skip_failures:
                raise
            report.failures.append((journey, str(error)))
    return report


def match_journeys_lenient(
    network: RoadNetwork,
    journeys: Sequence[Journey],
    max_snap_distance: float = math.inf,
    budget: Optional["ErrorBudget"] = None,
    health: Optional["PipelineHealth"] = None,
) -> Tuple[MatchReport, "PipelineHealth"]:
    """Match a trace, quarantining unmatchable journeys under a budget.

    Like ``match_journeys(..., skip_failures=True)``, but every failure
    is also recorded in ``health`` (a fresh
    :class:`~repro.reliability.PipelineHealth` unless one is passed in,
    e.g. the one produced by lenient CSV reading), and ``budget`` aborts
    with :class:`~repro.errors.ErrorBudgetExceeded` once the failure
    fraction passes ``max_journey_failure_rate``.  The budget is checked
    incrementally, so a hopeless trace aborts early instead of grinding
    through every journey.
    """
    from ..reliability.health import ErrorBudget, PipelineHealth

    if budget is None:
        budget = ErrorBudget()
    if health is None:
        health = PipelineHealth()
    index = GridIndex(network)
    report = MatchReport()
    processed = 0
    for journey in journeys:
        processed += 1
        try:
            report.results.append(
                match_journey(network, journey, index, max_snap_distance)
            )
        except MapMatchError as error:
            report.failures.append((journey, str(error)))
            health.quarantine_journey(journey.journey_id, str(error))
            budget.check_journeys(
                report.failure_count, processed, health.source or "<trace>"
            )
    health.merge_matching(report.matched_count, report.failure_count)
    budget.check_journeys(
        report.failure_count, len(journeys), health.source or "<trace>"
    )
    return report, health
