"""Bus-trace substrate: synthetic traces, CSV IO, map matching, flows.

The paper evaluates on the Dublin (dublinked.com) and Seattle (CRAWDAD
ad_hoc_city) bus traces; neither is redistributable, so this subpackage
generates statistically similar synthetic traces and provides the full
trace -> map-match -> traffic-flow pipeline the authors needed (see
DESIGN.md, "Data substitution").
"""

from .demand import (
    OdMatrix,
    demand_summary,
    estimate_center_bias,
    od_matrix,
)
from .dublin import (
    DUBLIN_EXTENT_FEET,
    DUBLIN_PASSENGERS_PER_BUS,
    BusTrace,
    DublinTraceConfig,
    generate_dublin_trace,
)
from .flows import (
    FlowExtractionConfig,
    flows_from_matches,
    flows_from_report,
    node_traffic,
    traffic_summary,
)
from .io import (
    DUBLIN_SCHEMA,
    SEATTLE_SCHEMA,
    TraceSchema,
    read_trace_csv,
    read_trace_csv_lenient,
    write_trace_csv,
)
from .journeys import (
    EmissionConfig,
    JourneyPattern,
    emit_journey,
    emit_trace,
    generate_grid_routes,
    generate_patterns,
)
from .mapmatch import (
    GridIndex,
    MatchReport,
    MatchResult,
    collapse_duplicates,
    erase_loops,
    match_journey,
    match_journeys,
    match_journeys_lenient,
    repair_gaps,
    snap_samples,
)
from .records import (
    DUBLIN_FRAME,
    CoordinateFrame,
    GpsRecord,
    Journey,
    group_into_journeys,
)
from .seattle import (
    SEATTLE_EXTENT_FEET,
    SEATTLE_PASSENGERS_PER_BUS,
    SeattleTraceConfig,
    generate_seattle_trace,
)
from .stats import (
    MatchFidelity,
    TraceStatistics,
    match_fidelity,
    trace_statistics,
)

__all__ = [
    "BusTrace",
    "CoordinateFrame",
    "DUBLIN_EXTENT_FEET",
    "DUBLIN_FRAME",
    "DUBLIN_PASSENGERS_PER_BUS",
    "DUBLIN_SCHEMA",
    "DublinTraceConfig",
    "EmissionConfig",
    "FlowExtractionConfig",
    "GpsRecord",
    "GridIndex",
    "Journey",
    "JourneyPattern",
    "MatchFidelity",
    "MatchReport",
    "MatchResult",
    "OdMatrix",
    "TraceStatistics",
    "SEATTLE_EXTENT_FEET",
    "SEATTLE_PASSENGERS_PER_BUS",
    "SEATTLE_SCHEMA",
    "SeattleTraceConfig",
    "TraceSchema",
    "collapse_duplicates",
    "demand_summary",
    "emit_journey",
    "emit_trace",
    "erase_loops",
    "estimate_center_bias",
    "flows_from_matches",
    "flows_from_report",
    "generate_dublin_trace",
    "generate_grid_routes",
    "generate_patterns",
    "generate_seattle_trace",
    "group_into_journeys",
    "match_fidelity",
    "match_journey",
    "match_journeys",
    "match_journeys_lenient",
    "trace_statistics",
    "node_traffic",
    "od_matrix",
    "read_trace_csv",
    "read_trace_csv_lenient",
    "repair_gaps",
    "snap_samples",
    "traffic_summary",
    "write_trace_csv",
]
