"""Journey patterns and GPS emission.

A *journey pattern* is the recurring unit of a bus trace: a fixed route
through the city driven by some number of buses every day (Dublin's
"vehicle journey", Seattle's "route").  The generator draws patterns with
a center-biased gravity model — endpoints near the city center are more
likely, and long crossings dominate — which reproduces the paper's key
traffic feature: demand concentrates in the center, and many journeys
share central corridors.

GPS emission walks each pattern's path at constant speed, sampling every
``sample_period`` seconds with isotropic Gaussian position noise.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import NoPathError
from ..graphs import NodeId, Point, RoadNetwork, shortest_path
from .records import GpsRecord

#: Grid node ids as produced by the grid-based city generators.
GridNodeId = Tuple[int, int]


@dataclass(frozen=True)
class JourneyPattern:
    """One recurring bus route."""

    pattern_id: str
    path: Tuple[NodeId, ...]
    daily_buses: int

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError(f"pattern {self.pattern_id} path too short")
        if self.daily_buses < 1:
            raise ValueError(
                f"pattern {self.pattern_id} needs at least one daily bus"
            )


@dataclass(frozen=True)
class EmissionConfig:
    """GPS emission parameters."""

    speed: float = 30.0
    """Bus speed in feet/second (~20 mph)."""

    sample_period: float = 30.0
    """Seconds between GPS samples."""

    noise_std: float = 0.0
    """Isotropic Gaussian position noise, feet."""

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"speed must be positive, got {self.speed}")
        if self.sample_period <= 0:
            raise ValueError(
                f"sample period must be positive, got {self.sample_period}"
            )
        if self.noise_std < 0:
            raise ValueError(f"noise std must be >= 0, got {self.noise_std}")


def _center_weights(
    network: RoadNetwork, nodes: Sequence[NodeId], bias: float
) -> List[float]:
    """Gravity weights: nodes near the geometric center weigh more."""
    box = network.bounding_box()
    center = box.center
    scale = max(box.width, box.height) / 2.0 or 1.0
    weights = []
    for node in nodes:
        distance = network.position(node).distance_to(center) / scale
        weights.append(math.exp(-bias * distance))
    return weights


def generate_patterns(
    network: RoadNetwork,
    count: int,
    rng: random.Random,
    *,
    min_trip_fraction: float = 0.25,
    center_bias: float = 2.0,
    daily_buses_range: Tuple[int, int] = (1, 6),
    id_prefix: str = "J",
) -> List[JourneyPattern]:
    """Draw ``count`` journey patterns on ``network``.

    ``min_trip_fraction`` rejects trips shorter than that fraction of the
    city's half-extent, so patterns actually traverse the map instead of
    hopping one block.
    """
    if count < 1:
        raise ValueError(f"need at least one pattern, got {count}")
    nodes = list(network.nodes())
    if len(nodes) < 2:
        raise ValueError("network too small to route buses")
    weights = _center_weights(network, nodes, center_bias)
    box = network.bounding_box()
    min_trip = min_trip_fraction * max(box.width, box.height) / 2.0
    patterns: List[JourneyPattern] = []
    attempts = 0
    max_attempts = count * 200
    while len(patterns) < count and attempts < max_attempts:
        attempts += 1
        origin, destination = rng.choices(nodes, weights=weights, k=2)
        if origin == destination:
            continue
        if network.euclidean_distance(origin, destination) < min_trip:
            continue
        path = shortest_path(network, origin, destination)
        patterns.append(
            JourneyPattern(
                pattern_id=f"{id_prefix}{len(patterns):04d}",
                path=tuple(path),
                daily_buses=rng.randint(*daily_buses_range),
            )
        )
    if len(patterns) < count:
        raise ValueError(
            f"could only draw {len(patterns)}/{count} patterns; relax "
            "min_trip_fraction or enlarge the network"
        )
    return patterns


def emit_journey(
    network: RoadNetwork,
    pattern: JourneyPattern,
    bus_id: str,
    rng: random.Random,
    config: EmissionConfig,
    start_time: float = 0.0,
) -> List[GpsRecord]:
    """GPS samples for one bus driving ``pattern`` once."""
    positions = [network.position(node) for node in pattern.path]
    records: List[GpsRecord] = []
    time = start_time
    distance_into_segment = 0.0
    segment = 0

    def noisy(point: Point) -> Tuple[float, float]:
        if config.noise_std == 0.0:
            return point.x, point.y
        return (
            point.x + rng.gauss(0.0, config.noise_std),
            point.y + rng.gauss(0.0, config.noise_std),
        )

    step = config.speed * config.sample_period
    while True:
        a = positions[segment]
        b = positions[segment + 1]
        seg_len = network.edge_length(
            pattern.path[segment], pattern.path[segment + 1]
        )
        # Use geometric interpolation along the straight segment; curvy
        # streets longer than their chord simply emit denser samples.
        fraction = distance_into_segment / seg_len if seg_len > 0 else 1.0
        point = Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)
        x, y = noisy(point)
        records.append(
            GpsRecord(
                bus_id=bus_id,
                journey_id=pattern.pattern_id,
                timestamp=time,
                x=x,
                y=y,
            )
        )
        # Advance one sampling step.
        remaining = step
        while remaining > 0:
            seg_len = network.edge_length(
                pattern.path[segment], pattern.path[segment + 1]
            )
            room = seg_len - distance_into_segment
            if remaining < room:
                distance_into_segment += remaining
                remaining = 0
            else:
                remaining -= room
                segment += 1
                distance_into_segment = 0.0
                if segment >= len(pattern.path) - 1:
                    # Final sample exactly at the destination.
                    end = positions[-1]
                    x, y = noisy(end)
                    records.append(
                        GpsRecord(
                            bus_id=bus_id,
                            journey_id=pattern.pattern_id,
                            timestamp=time + config.sample_period,
                            x=x,
                            y=y,
                        )
                    )
                    return records
        time += config.sample_period


def emit_trace(
    network: RoadNetwork,
    patterns: Sequence[JourneyPattern],
    rng: random.Random,
    config: EmissionConfig,
) -> List[GpsRecord]:
    """GPS samples for every daily bus of every pattern."""
    records: List[GpsRecord] = []
    bus_counter = 0
    for pattern in patterns:
        for run in range(pattern.daily_buses):
            bus_counter += 1
            records.extend(
                emit_journey(
                    network,
                    pattern,
                    bus_id=f"bus{bus_counter:05d}",
                    rng=rng,
                    config=config,
                    start_time=rng.uniform(0.0, 3600.0),
                )
            )
    return records


def generate_grid_routes(
    network: RoadNetwork,
    count: int,
    rng: random.Random,
    *,
    straight_fraction: float = 0.45,
    turned_fraction: float = 0.30,
    daily_buses_range: Tuple[int, int] = (1, 6),
    id_prefix: str = "R",
) -> List[JourneyPattern]:
    """Bus routes shaped like real grid-city transit lines.

    Real bus networks on grid plans run *straight* along arterial rows and
    columns, or make one *L-turn* between two arterials; only a minority
    wander.  This generator draws a mix (node ids must be ``(row, col)``
    tuples, as produced by the grid-based city generators):

    * ``straight_fraction`` — full row/column crossings;
    * ``turned_fraction`` — L-shaped boundary-to-boundary routes;
    * the remainder — random center-biased trips as in
      :func:`generate_patterns`.

    On partially-grid networks (deleted streets) the realized shortest
    path may deviate around missing segments, exactly like a real bus
    detouring a closed street.
    """
    if not (0 <= straight_fraction and 0 <= turned_fraction
            and straight_fraction + turned_fraction <= 1):
        raise ValueError("route mix fractions must be >= 0 and sum to <= 1")
    nodes = [n for n in network.nodes() if isinstance(n, tuple) and len(n) == 2]
    if len(nodes) < 4:
        raise ValueError("generate_grid_routes needs a (row, col) grid network")
    rows = sorted({r for r, _ in nodes})
    cols = sorted({c for _, c in nodes})
    node_set = set(nodes)

    def row_endpoints(r: int) -> Optional[Tuple[GridNodeId, GridNodeId]]:
        in_row = sorted(c for rr, c in nodes if rr == r)
        if len(in_row) < 2:
            return None
        return (r, in_row[0]), (r, in_row[-1])

    def col_endpoints(c: int) -> Optional[Tuple[GridNodeId, GridNodeId]]:
        in_col = sorted(r for r, cc in nodes if cc == c)
        if len(in_col) < 2:
            return None
        return (in_col[0], c), (in_col[-1], c)

    patterns: List[JourneyPattern] = []
    attempts = 0
    max_attempts = count * 200
    weights = _center_weights(network, nodes, bias=2.0)
    while len(patterns) < count and attempts < max_attempts:
        attempts += 1
        draw = rng.random()
        endpoints: Optional[Tuple[GridNodeId, GridNodeId]] = None
        if draw < straight_fraction:
            # Straight arterial: a full row or column crossing.
            if rng.random() < 0.5:
                endpoints = row_endpoints(rng.choice(rows))
            else:
                endpoints = col_endpoints(rng.choice(cols))
        elif draw < straight_fraction + turned_fraction:
            # L-route: from a row boundary to a column boundary.
            row_ends = row_endpoints(rng.choice(rows))
            col_ends = col_endpoints(rng.choice(cols))
            if row_ends and col_ends:
                origin = row_ends[rng.randrange(2)]
                destination = col_ends[rng.randrange(2)]
                if origin != destination:
                    endpoints = (origin, destination)
        else:
            origin, destination = rng.choices(nodes, weights=weights, k=2)
            if origin != destination:
                endpoints = (origin, destination)
        if endpoints is None:
            continue
        origin, destination = endpoints
        if rng.random() < 0.5:
            origin, destination = destination, origin
        try:
            path = shortest_path(network, origin, destination)
        except NoPathError:
            continue
        if len(path) < 2:
            continue
        patterns.append(
            JourneyPattern(
                pattern_id=f"{id_prefix}{len(patterns):04d}",
                path=tuple(path),
                daily_buses=rng.randint(*daily_buses_range),
            )
        )
    if len(patterns) < count:
        raise ValueError(
            f"could only draw {len(patterns)}/{count} grid routes"
        )
    return patterns
