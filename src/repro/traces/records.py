"""GPS trace records and journeys.

The paper's two datasets share one logical shape — periodic GPS samples
from buses, each tagged with a journey/route identifier:

* Dublin: ``(bus id, longitude, latitude, vehicle journey id)``;
* Seattle: ``(bus id, x, y, route id)``.

Internally everything is carried in a city-local Cartesian frame in
feet (matching the paper's 80,000 x 80,000 ft / 10^4 x 10^4 ft extents);
:class:`CoordinateFrame` converts to and from geographic coordinates so
the Dublin CSV schema can round-trip lon/lat like the real dataset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .. import obs
from ..errors import TraceFormatError
from ..graphs import Point

#: Feet per degree of latitude (WGS-84 mean, good enough for a city).
FEET_PER_DEGREE_LATITUDE = 364_000.0


@dataclass(frozen=True)
class CoordinateFrame:
    """A local tangent-plane frame anchored at ``(anchor_lon, anchor_lat)``.

    ``x`` grows east, ``y`` grows north, both in feet from the anchor.
    """

    anchor_lon: float
    anchor_lat: float

    @property
    def feet_per_degree_longitude(self) -> float:
        """Longitude scale at the anchor latitude."""
        return FEET_PER_DEGREE_LATITUDE * math.cos(math.radians(self.anchor_lat))

    def to_lonlat(self, x: float, y: float) -> Tuple[float, float]:
        """Local (x, y) feet -> (longitude, latitude)."""
        return (
            self.anchor_lon + x / self.feet_per_degree_longitude,
            self.anchor_lat + y / FEET_PER_DEGREE_LATITUDE,
        )

    def to_xy(self, lon: float, lat: float) -> Tuple[float, float]:
        """(longitude, latitude) -> local (x, y) feet."""
        return (
            (lon - self.anchor_lon) * self.feet_per_degree_longitude,
            (lat - self.anchor_lat) * FEET_PER_DEGREE_LATITUDE,
        )


#: Frame anchored in central Dublin (the paper's Fig. 8 area).
DUBLIN_FRAME = CoordinateFrame(anchor_lon=-6.30, anchor_lat=53.33)


@dataclass(frozen=True)
class GpsRecord:
    """One GPS sample from one bus."""

    bus_id: str
    journey_id: str
    timestamp: float
    x: float
    y: float

    def __post_init__(self) -> None:
        if not self.bus_id:
            raise TraceFormatError("GPS record needs a bus id")
        if not self.journey_id:
            raise TraceFormatError("GPS record needs a journey/route id")
        if math.isnan(self.x) or math.isnan(self.y):
            raise TraceFormatError(
                f"GPS record for bus {self.bus_id!r} has NaN coordinates"
            )
        if math.isnan(self.timestamp) or self.timestamp < 0:
            raise TraceFormatError(
                f"GPS record for bus {self.bus_id!r} has invalid timestamp "
                f"{self.timestamp}"
            )

    @property
    def position(self) -> Point:
        """The sample position as a Point."""
        return Point(self.x, self.y)


@dataclass
class Journey:
    """All samples of one bus run, in time order."""

    bus_id: str
    journey_id: str
    records: List[GpsRecord] = field(default_factory=list)

    def append(self, record: GpsRecord) -> None:
        """Add a record (must belong to this bus/journey)."""
        if record.bus_id != self.bus_id or record.journey_id != self.journey_id:
            raise TraceFormatError(
                f"record for ({record.bus_id}, {record.journey_id}) appended "
                f"to journey ({self.bus_id}, {self.journey_id})"
            )
        self.records.append(record)

    def sort(self) -> None:
        """Sort samples by timestamp, in place."""
        self.records.sort(key=lambda r: r.timestamp)

    @property
    def sample_count(self) -> int:
        """Number of GPS samples."""
        return len(self.records)

    def positions(self) -> List[Point]:
        """Sample positions, in time order."""
        return [record.position for record in self.records]


def group_into_journeys(
    records: Iterable[GpsRecord], *, max_skew: Optional[float] = None
) -> List[Journey]:
    """Group records by ``(bus_id, journey_id)``, time-sorted.

    Journeys are returned in first-appearance order, making downstream
    processing deterministic for a deterministic record stream.

    Real feeds deliver samples out of arrival order (multi-path uplinks,
    store-and-forward gaps).  Inversions are repaired by the final sort
    and counted (``trace.reorders``); with ``max_skew`` set, a sample
    arriving more than that many seconds behind its journey's newest
    timestamp is judged too stale to trust — it is dropped and counted
    (``trace.reorder_drops``) instead of silently rewriting history.
    """
    if max_skew is not None and max_skew < 0:
        raise TraceFormatError(f"max_skew must be >= 0, got {max_skew}")
    journeys: Dict[Tuple[str, str], Journey] = {}
    newest: Dict[Tuple[str, str], float] = {}
    reorders = 0
    drops = 0
    for record in records:
        key = (record.bus_id, record.journey_id)
        journey = journeys.get(key)
        if journey is None:
            journey = Journey(bus_id=record.bus_id, journey_id=record.journey_id)
            journeys[key] = journey
            newest[key] = record.timestamp
        else:
            if record.timestamp < newest[key]:
                if (
                    max_skew is not None
                    and newest[key] - record.timestamp > max_skew
                ):
                    drops += 1
                    continue
                reorders += 1
            else:
                newest[key] = record.timestamp
        journey.append(record)
    if (reorders or drops) and obs.active() is not None:
        obs.count_many(
            {"trace.reorders": reorders, "trace.reorder_drops": drops}
        )
    result = list(journeys.values())
    for journey in result:
        journey.sort()
    return result
