"""Trace quality statistics.

Two views:

* :func:`trace_statistics` — properties of the raw GPS record stream
  (sampling cadence, fleet size, spatial extent), useful when validating
  an external trace before feeding it to map matching;
* :func:`match_fidelity` — how well map matching recovered the
  ground-truth journey patterns, available for synthetic traces where
  the truth is known (the generator keeps it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import TraceError
from ..graphs import BoundingBox
from .journeys import JourneyPattern
from .mapmatch import MatchReport
from .records import GpsRecord, group_into_journeys


@dataclass(frozen=True)
class TraceStatistics:
    """Aggregate properties of a GPS record stream."""

    record_count: int
    bus_count: int
    journey_count: int
    duration_seconds: float
    median_sample_period: float
    extent: BoundingBox


def trace_statistics(records: Sequence[GpsRecord]) -> TraceStatistics:
    """Compute :class:`TraceStatistics` (raises on an empty stream)."""
    if not records:
        raise TraceError("cannot summarize an empty trace")
    journeys = group_into_journeys(records)
    periods: List[float] = []
    for journey in journeys:
        times = [record.timestamp for record in journey.records]
        periods.extend(b - a for a, b in zip(times, times[1:]))
    periods.sort()
    median_period = periods[len(periods) // 2] if periods else 0.0
    timestamps = [record.timestamp for record in records]
    return TraceStatistics(
        record_count=len(records),
        bus_count=len({record.bus_id for record in records}),
        journey_count=len(journeys),
        duration_seconds=max(timestamps) - min(timestamps),
        median_sample_period=median_period,
        extent=BoundingBox.from_points(
            [record.position for record in records]
        ),
    )


@dataclass(frozen=True)
class MatchFidelity:
    """How well map matching recovered the ground truth."""

    journeys: int
    exact_path_fraction: float
    """Matched path identical to the pattern path."""

    endpoint_fraction: float
    """Matched origin and destination both correct."""

    mean_node_jaccard: float
    """Mean Jaccard similarity between matched and true node sets."""


def match_fidelity(
    report: MatchReport, patterns: Sequence[JourneyPattern]
) -> MatchFidelity:
    """Score ``report`` against the generating ``patterns``."""
    truth: Dict[str, Tuple] = {
        pattern.pattern_id: pattern.path for pattern in patterns
    }
    if not report.results:
        raise TraceError("match report contains no matched journeys")
    exact = 0
    endpoints = 0
    jaccards: List[float] = []
    for result in report.results:
        expected = truth.get(result.journey.journey_id)
        if expected is None:
            raise TraceError(
                f"journey {result.journey.journey_id!r} has no ground-truth "
                "pattern"
            )
        if result.path == expected:
            exact += 1
        if result.path[0] == expected[0] and result.path[-1] == expected[-1]:
            endpoints += 1
        matched_nodes = set(result.path)
        true_nodes = set(expected)
        union = matched_nodes | true_nodes
        jaccards.append(len(matched_nodes & true_nodes) / len(union))
    n = len(report.results)
    return MatchFidelity(
        journeys=n,
        exact_path_fraction=exact / n,
        endpoint_fraction=endpoints / n,
        mean_node_jaccard=sum(jaccards) / n,
    )
