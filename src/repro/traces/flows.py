"""Journey-to-traffic-flow aggregation.

The placement model consumes :class:`~repro.core.flow.TrafficFlow`
objects; a bus trace yields them by:

1. map-matching every journey onto the network;
2. grouping matched journeys by journey/route id (all buses of one
   pattern drive "similar routing paths", per the paper);
3. electing the modal (most frequent) matched path as the pattern's path;
4. setting the volume to ``buses x passengers_per_bus`` — the paper
   assumes 100 passengers/bus/day in Dublin and 200 in Seattle.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core import PAPER_ALPHA, TrafficFlow
from ..errors import TraceError
from ..graphs import NodeId
from .mapmatch import MatchReport, MatchResult


@dataclass(frozen=True)
class FlowExtractionConfig:
    """Aggregation parameters."""

    passengers_per_bus: float = 100.0
    attractiveness: float = PAPER_ALPHA
    min_buses: int = 1
    """Patterns with fewer matched buses than this are dropped."""

    def __post_init__(self) -> None:
        if self.passengers_per_bus <= 0:
            raise TraceError(
                f"passengers_per_bus must be positive, got "
                f"{self.passengers_per_bus}"
            )
        if not (0 <= self.attractiveness <= 1):
            raise TraceError(
                f"attractiveness must be in [0, 1], got {self.attractiveness}"
            )
        if self.min_buses < 1:
            raise TraceError(f"min_buses must be >= 1, got {self.min_buses}")


def flows_from_matches(
    results: Sequence[MatchResult],
    config: FlowExtractionConfig = FlowExtractionConfig(),
) -> List[TrafficFlow]:
    """Aggregate matched journeys into traffic flows (one per pattern)."""
    by_pattern: Dict[str, List[MatchResult]] = defaultdict(list)
    for result in results:
        by_pattern[result.journey.journey_id].append(result)

    flows: List[TrafficFlow] = []
    for pattern_id, matches in by_pattern.items():
        if len(matches) < config.min_buses:
            continue
        paths = Counter(match.path for match in matches)
        modal_path, _ = max(
            paths.items(), key=lambda item: (item[1], -len(item[0]))
        )
        flows.append(
            TrafficFlow(
                path=modal_path,
                volume=len(matches) * config.passengers_per_bus,
                attractiveness=config.attractiveness,
                label=pattern_id,
            )
        )
    return flows


def flows_from_report(
    report: MatchReport,
    config: FlowExtractionConfig = FlowExtractionConfig(),
) -> List[TrafficFlow]:
    """Aggregate a whole :class:`MatchReport` (failures already excluded)."""
    return flows_from_matches(report.results, config)


def traffic_summary(flows: Sequence[TrafficFlow]) -> Dict[str, float]:
    """Quick statistics used by reports and sanity tests."""
    if not flows:
        return {
            "flow_count": 0,
            "total_volume": 0.0,
            "mean_path_hops": 0.0,
            "max_volume": 0.0,
        }
    return {
        "flow_count": len(flows),
        "total_volume": sum(flow.volume for flow in flows),
        "mean_path_hops": sum(len(flow.path) for flow in flows) / len(flows),
        "max_volume": max(flow.volume for flow in flows),
    }


def node_traffic(
    flows: Sequence[TrafficFlow],
) -> Dict[NodeId, Tuple[int, float]]:
    """Per-intersection ``(passing flows, passing volume)``.

    This powers both the MaxCardinality / MaxVehicles baselines' mental
    model and the shop-location classification (city's center / city /
    suburb) in the experiment harness.
    """
    stats: Dict[NodeId, Tuple[int, float]] = {}
    for flow in flows:
        for node in flow.path:
            count, volume = stats.get(node, (0, 0.0))
            stats[node] = (count + 1, volume + flow.volume)
    return stats
