"""Synthetic Seattle bus trace (substitute for CRAWDAD ad_hoc_city).

Seattle's street plan is *partially* grid-based — the paper exploits this
to test the Manhattan-grid algorithms on real data and expects some
degradation from the imperfect grid.  The stand-in reproduces exactly
that: a 10,000 x 10,000 ft central area grid with deleted streets,
one-way conversions, and diagonal shortcuts
(:func:`~repro.graphs.generators.seattle_like_city`), route patterns with
center bias, and (bus id, x, y, route id) records at 200 potential
customers per bus per day.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graphs import seattle_like_city
from .dublin import BusTrace
from .journeys import EmissionConfig, emit_trace, generate_grid_routes

SEATTLE_EXTENT_FEET = 10_000.0
SEATTLE_PASSENGERS_PER_BUS = 200.0


@dataclass(frozen=True)
class SeattleTraceConfig:
    """Knobs for the synthetic Seattle trace."""

    seed: int = 2015
    rows: int = 21
    cols: int = 21
    pattern_count: int = 50
    daily_buses_range: tuple = (1, 5)
    straight_fraction: float = 0.45
    """Fraction of routes running straight along one avenue (real transit
    lines on grid plans mostly do)."""
    turned_fraction: float = 0.30
    """Fraction of L-shaped routes (one turn between two arterials)."""
    emission: EmissionConfig = field(
        default_factory=lambda: EmissionConfig(
            speed=30.0, sample_period=10.0, noise_std=60.0
        )
    )
    max_snap_distance: float = 400.0


def generate_seattle_trace(
    config: SeattleTraceConfig = SeattleTraceConfig(),
) -> BusTrace:
    """Generate the synthetic Seattle trace."""
    rng = random.Random(config.seed)
    network = seattle_like_city(
        rows=config.rows,
        cols=config.cols,
        extent=SEATTLE_EXTENT_FEET,
        seed=config.seed,
    )
    patterns = generate_grid_routes(
        network,
        config.pattern_count,
        rng,
        straight_fraction=config.straight_fraction,
        turned_fraction=config.turned_fraction,
        daily_buses_range=config.daily_buses_range,
        id_prefix="SEA",
    )
    records = emit_trace(network, patterns, rng, config.emission)
    return BusTrace(
        city="seattle",
        network=network,
        records=records,
        patterns=patterns,
        passengers_per_bus=SEATTLE_PASSENGERS_PER_BUS,
    )
