"""Synthetic Dublin bus trace (substitute for the dublinked.com dataset).

The real dataset cannot be redistributed or downloaded offline; this
module generates a statistically similar stand-in (see DESIGN.md for the
substitution argument):

* an irregular, non-grid street plan over an 80,000 x 80,000 ft central
  area (:func:`~repro.graphs.generators.dublin_like_city`);
* journey patterns drawn with a center-biased gravity model — traffic
  concentrates downtown and shares corridors;
* per-bus GPS records (bus id, longitude, latitude, vehicle journey id)
  emitted along each journey with positional noise;
* the paper's assumption of 100 potential customers per bus per day.

The generated records round-trip through the Dublin CSV schema and the
map-matching pipeline, so downstream code exercises the same path it
would with the real data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..core import TrafficFlow
from ..graphs import RoadNetwork, dublin_like_city
from .flows import FlowExtractionConfig, flows_from_report
from .journeys import EmissionConfig, JourneyPattern, emit_trace, generate_patterns
from .mapmatch import MatchReport, match_journeys
from .records import GpsRecord, group_into_journeys

DUBLIN_EXTENT_FEET = 80_000.0
DUBLIN_PASSENGERS_PER_BUS = 100.0


@dataclass(frozen=True)
class DublinTraceConfig:
    """Knobs for the synthetic Dublin trace."""

    seed: int = 2015
    rows: int = 17
    cols: int = 17
    pattern_count: int = 60
    daily_buses_range: tuple = (1, 6)
    emission: EmissionConfig = field(
        default_factory=lambda: EmissionConfig(
            speed=30.0, sample_period=60.0, noise_std=600.0
        )
    )
    max_snap_distance: float = 4_000.0


@dataclass
class BusTrace:
    """A generated bus trace plus everything needed to consume it."""

    city: str
    network: RoadNetwork
    records: List[GpsRecord]
    patterns: List[JourneyPattern]
    passengers_per_bus: float

    def match(self) -> MatchReport:
        """Map-match every journey in the trace."""
        journeys = group_into_journeys(self.records)
        return match_journeys(self.network, journeys)

    def extract_flows(
        self, config: Optional[FlowExtractionConfig] = None
    ) -> List[TrafficFlow]:
        """Full trace -> flows pipeline (match + aggregate)."""
        if config is None:
            config = FlowExtractionConfig(
                passengers_per_bus=self.passengers_per_bus
            )
        return flows_from_report(self.match(), config)


def generate_dublin_trace(
    config: DublinTraceConfig = DublinTraceConfig(),
) -> BusTrace:
    """Generate the synthetic Dublin trace."""
    rng = random.Random(config.seed)
    network = dublin_like_city(
        rows=config.rows,
        cols=config.cols,
        extent=DUBLIN_EXTENT_FEET,
        seed=config.seed,
    )
    patterns = generate_patterns(
        network,
        config.pattern_count,
        rng,
        daily_buses_range=config.daily_buses_range,
        id_prefix="DUB",
    )
    records = emit_trace(network, patterns, rng, config.emission)
    return BusTrace(
        city="dublin",
        network=network,
        records=records,
        patterns=patterns,
        passengers_per_bus=DUBLIN_PASSENGERS_PER_BUS,
    )
