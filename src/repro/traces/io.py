"""CSV serialization for GPS traces.

Two on-disk schemas mirror the real datasets:

* :data:`DUBLIN_SCHEMA` — ``bus_id, longitude, latitude,
  vehicle_journey_id, timestamp`` (geographic coordinates, converted
  through :data:`~repro.traces.records.DUBLIN_FRAME`);
* :data:`SEATTLE_SCHEMA` — ``bus_id, x, y, route_id, timestamp``
  (Cartesian feet, like the CRAWDAD ad_hoc_city trace).

Two reading modes:

* **strict** (:func:`read_trace_csv`, the default everywhere) — missing
  columns, non-numeric fields, or empty ids raise
  :class:`~repro.errors.TraceFormatError` with file and row context
  rather than silently producing bad flows;
* **lenient** (:func:`read_trace_csv_lenient`) — malformed rows are
  quarantined and counted per fault class in a
  :class:`~repro.reliability.PipelineHealth` report instead of raising;
  an :class:`~repro.reliability.ErrorBudget` bounds how much quarantining
  is tolerated before the read aborts with
  :class:`~repro.errors.ErrorBudgetExceeded`.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple, Union

from ..errors import TraceFormatError
from .records import DUBLIN_FRAME, CoordinateFrame, GpsRecord

if TYPE_CHECKING:  # imported lazily at runtime to keep traces a leaf
    from ..reliability.health import ErrorBudget, PipelineHealth

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TraceSchema:
    """How :class:`GpsRecord` fields map onto CSV columns."""

    name: str
    bus_column: str
    journey_column: str
    position_columns: Tuple[str, str]
    timestamp_column: str
    frame: Optional[CoordinateFrame] = None
    """When set, positions are stored as (lon, lat) in this frame."""

    @property
    def columns(self) -> List[str]:
        """CSV header, in on-disk order."""
        return [
            self.bus_column,
            *self.position_columns,
            self.journey_column,
            self.timestamp_column,
        ]

    def encode(self, record: GpsRecord) -> List[str]:
        """One CSV row for a record (converting coordinates if geographic)."""
        if self.frame is not None:
            first, second = self.frame.to_lonlat(record.x, record.y)
        else:
            first, second = record.x, record.y
        return [
            record.bus_id,
            f"{first:.9f}",
            f"{second:.9f}",
            record.journey_id,
            f"{record.timestamp:.3f}",
        ]

    def decode(self, row: dict, line: int, source: str = "") -> GpsRecord:
        """Parse one CSV row into a record.

        Errors carry the source file path (when known), the schema name,
        and the line number, so a failure deep inside a multi-file
        pipeline still names the offending file and row.
        """
        where = f"{source}: {self.name}" if source else self.name

        def numeric(column: str) -> float:
            raw = row.get(column)
            if raw is None:
                raise TraceFormatError(
                    f"{where} line {line}: row too short, no value for "
                    f"column {column!r}",
                    fault_class="short-row",
                )
            try:
                return float(raw)
            except ValueError:
                raise TraceFormatError(
                    f"{where} line {line}: column {column!r} has "
                    f"non-numeric value {raw!r}",
                    fault_class="non-numeric",
                ) from None

        first = numeric(self.position_columns[0])
        second = numeric(self.position_columns[1])
        if self.frame is not None:
            x, y = self.frame.to_xy(first, second)
        else:
            x, y = first, second
        bus_raw = row.get(self.bus_column)
        journey_raw = row.get(self.journey_column)
        if bus_raw is None or journey_raw is None:
            raise TraceFormatError(
                f"{where} line {line}: row too short, missing bus or "
                "journey id",
                fault_class="short-row",
            )
        bus_id = bus_raw.strip()
        journey_id = journey_raw.strip()
        if not bus_id or not journey_id:
            raise TraceFormatError(
                f"{where} line {line}: empty bus or journey id",
                fault_class="empty-id",
            )
        try:
            return GpsRecord(
                bus_id=bus_id,
                journey_id=journey_id,
                timestamp=numeric(self.timestamp_column),
                x=x,
                y=y,
            )
        except TraceFormatError as error:
            raise TraceFormatError(
                f"{where} line {line}: {error}",
                fault_class=error.fault_class,
            ) from None


DUBLIN_SCHEMA = TraceSchema(
    name="dublin",
    bus_column="bus_id",
    journey_column="vehicle_journey_id",
    position_columns=("longitude", "latitude"),
    timestamp_column="timestamp",
    frame=DUBLIN_FRAME,
)

SEATTLE_SCHEMA = TraceSchema(
    name="seattle",
    bus_column="bus_id",
    journey_column="route_id",
    position_columns=("x", "y"),
    timestamp_column="timestamp",
    frame=None,
)


def write_trace_csv(
    records: Iterable[GpsRecord], path: PathLike, schema: TraceSchema
) -> int:
    """Write ``records`` to ``path``; returns the number of rows written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(schema.columns)
        for record in records:
            writer.writerow(schema.encode(record))
            count += 1
    return count


def _open_trace(path: PathLike):
    """Open a trace file for reading; unreadable paths are TraceErrors."""
    try:
        return open(path, newline="")
    except OSError as error:
        raise TraceFormatError(
            f"{path}: cannot read trace file ({error.strerror or error})",
            fault_class="missing-column",
        ) from None


def _open_reader(path: PathLike, schema: TraceSchema, handle) -> csv.DictReader:
    """DictReader with the header validated (shared by both modes)."""
    reader = csv.DictReader(handle)
    if reader.fieldnames is None:
        raise TraceFormatError(
            f"{path}: empty trace file", fault_class="missing-column"
        )
    missing = set(schema.columns) - set(reader.fieldnames)
    if missing:
        raise TraceFormatError(
            f"{path}: missing columns {sorted(missing)} "
            f"(found {reader.fieldnames})",
            fault_class="missing-column",
        )
    return reader


def read_trace_csv(path: PathLike, schema: TraceSchema) -> List[GpsRecord]:
    """Read a trace CSV written with (or compatible with) ``schema``.

    Strict: the first malformed row raises
    :class:`~repro.errors.TraceFormatError` naming the file, schema, and
    line.  Use :func:`read_trace_csv_lenient` to quarantine instead.
    """
    records: List[GpsRecord] = []
    source = str(path)
    with _open_trace(path) as handle:
        reader = _open_reader(path, schema, handle)
        for line, row in enumerate(reader, start=2):
            records.append(schema.decode(row, line, source=source))
    return records


def read_trace_csv_lenient(
    path: PathLike,
    schema: TraceSchema,
    budget: Optional["ErrorBudget"] = None,
    health: Optional["PipelineHealth"] = None,
) -> Tuple[List[GpsRecord], "PipelineHealth"]:
    """Read a trace CSV, quarantining malformed rows instead of raising.

    A header that does not match the schema still raises — a file with
    the wrong columns is unusable, not degraded.  Row-level failures are
    counted per fault class in ``health`` (a fresh
    :class:`~repro.reliability.PipelineHealth` unless one is passed in to
    accumulate across files); ``budget`` (default
    :class:`~repro.reliability.ErrorBudget`) aborts the read with
    :class:`~repro.errors.ErrorBudgetExceeded` once quarantining passes
    the configured rate.
    """
    from ..reliability.health import ErrorBudget, PipelineHealth

    if budget is None:
        budget = ErrorBudget()
    if health is None:
        health = PipelineHealth(source=str(path))
    source = str(path)
    records: List[GpsRecord] = []
    with _open_trace(path) as handle:
        reader = _open_reader(path, schema, handle)
        for line, row in enumerate(reader, start=2):
            try:
                record = schema.decode(row, line, source=source)
            except TraceFormatError as error:
                health.quarantine_row(line, error.fault_class, str(error))
                budget.check_rows(
                    health.rows_quarantined, health.rows_read, source
                )
                continue
            health.record_row()
            records.append(record)
    budget.check_rows(health.rows_quarantined, health.rows_read, source)
    return records, health
