"""CSV serialization for GPS traces.

Two on-disk schemas mirror the real datasets:

* :data:`DUBLIN_SCHEMA` — ``bus_id, longitude, latitude,
  vehicle_journey_id, timestamp`` (geographic coordinates, converted
  through :data:`~repro.traces.records.DUBLIN_FRAME`);
* :data:`SEATTLE_SCHEMA` — ``bus_id, x, y, route_id, timestamp``
  (Cartesian feet, like the CRAWDAD ad_hoc_city trace).

Readers are strict: missing columns, non-numeric fields, or empty ids
raise :class:`~repro.errors.TraceFormatError` with row context rather
than silently producing bad flows.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Tuple, Union

from ..errors import TraceFormatError
from .records import DUBLIN_FRAME, CoordinateFrame, GpsRecord

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TraceSchema:
    """How :class:`GpsRecord` fields map onto CSV columns."""

    name: str
    bus_column: str
    journey_column: str
    position_columns: Tuple[str, str]
    timestamp_column: str
    frame: Optional[CoordinateFrame] = None
    """When set, positions are stored as (lon, lat) in this frame."""

    @property
    def columns(self) -> List[str]:
        """CSV header, in on-disk order."""
        return [
            self.bus_column,
            *self.position_columns,
            self.journey_column,
            self.timestamp_column,
        ]

    def encode(self, record: GpsRecord) -> List[str]:
        """One CSV row for a record (converting coordinates if geographic)."""
        if self.frame is not None:
            first, second = self.frame.to_lonlat(record.x, record.y)
        else:
            first, second = record.x, record.y
        return [
            record.bus_id,
            f"{first:.9f}",
            f"{second:.9f}",
            record.journey_id,
            f"{record.timestamp:.3f}",
        ]

    def decode(self, row: dict, line: int) -> GpsRecord:
        """Parse one CSV row into a record, with line-number context on error."""
        def numeric(column: str) -> float:
            raw = row.get(column)
            if raw is None:
                raise TraceFormatError(
                    f"{self.name} line {line}: missing column {column!r}"
                )
            try:
                return float(raw)
            except ValueError:
                raise TraceFormatError(
                    f"{self.name} line {line}: column {column!r} has "
                    f"non-numeric value {raw!r}"
                ) from None

        first = numeric(self.position_columns[0])
        second = numeric(self.position_columns[1])
        if self.frame is not None:
            x, y = self.frame.to_xy(first, second)
        else:
            x, y = first, second
        bus_id = (row.get(self.bus_column) or "").strip()
        journey_id = (row.get(self.journey_column) or "").strip()
        if not bus_id or not journey_id:
            raise TraceFormatError(
                f"{self.name} line {line}: empty bus or journey id"
            )
        try:
            return GpsRecord(
                bus_id=bus_id,
                journey_id=journey_id,
                timestamp=numeric(self.timestamp_column),
                x=x,
                y=y,
            )
        except TraceFormatError as error:
            raise TraceFormatError(f"{self.name} line {line}: {error}") from None


DUBLIN_SCHEMA = TraceSchema(
    name="dublin",
    bus_column="bus_id",
    journey_column="vehicle_journey_id",
    position_columns=("longitude", "latitude"),
    timestamp_column="timestamp",
    frame=DUBLIN_FRAME,
)

SEATTLE_SCHEMA = TraceSchema(
    name="seattle",
    bus_column="bus_id",
    journey_column="route_id",
    position_columns=("x", "y"),
    timestamp_column="timestamp",
    frame=None,
)


def write_trace_csv(
    records: Iterable[GpsRecord], path: PathLike, schema: TraceSchema
) -> int:
    """Write ``records`` to ``path``; returns the number of rows written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(schema.columns)
        for record in records:
            writer.writerow(schema.encode(record))
            count += 1
    return count


def read_trace_csv(path: PathLike, schema: TraceSchema) -> List[GpsRecord]:
    """Read a trace CSV written with (or compatible with) ``schema``."""
    records: List[GpsRecord] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise TraceFormatError(f"{path}: empty trace file")
        missing = set(schema.columns) - set(reader.fieldnames)
        if missing:
            raise TraceFormatError(
                f"{path}: missing columns {sorted(missing)} "
                f"(found {reader.fieldnames})"
            )
        for line, row in enumerate(reader, start=2):
            records.append(schema.decode(row, line))
    return records
