"""Origin-destination demand estimation from matched journeys.

Closing the loop on the synthetic-trace substitution: the generators
*assume* a center-biased gravity demand model (DESIGN.md); this module
*estimates* that model back from any trace — synthetic or real — so the
assumption can be checked rather than trusted:

* :func:`od_matrix` — zone-level origin-destination volumes (zones are a
  regular grid over the city's extent);
* :func:`estimate_center_bias` — fit the exponential center-bias
  parameter of :func:`~repro.traces.journeys.generate_patterns` from
  observed endpoints by maximum likelihood over a bias grid;
* :func:`demand_summary` — center-vs-edge volume shares.

The test suite closes the round trip: traces generated with bias ``b``
must estimate back ``~b``, and the synthetic Dublin trace must measure
center-heavier demand than a uniform one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import TrafficFlow
from ..errors import TraceError
from ..graphs import BoundingBox, NodeId, Point, RoadNetwork


@dataclass(frozen=True)
class OdMatrix:
    """Zone-level origin-destination volumes."""

    zones_per_side: int
    extent: BoundingBox
    volumes: Dict[Tuple[int, int], float]
    """``(origin_zone, destination_zone) -> daily volume`` (zones are
    row-major indices of the grid)."""

    @property
    def total_volume(self) -> float:
        return sum(self.volumes.values())

    def top_pairs(self, count: int = 5) -> List[Tuple[Tuple[int, int], float]]:
        """The heaviest OD pairs, descending."""
        return sorted(
            self.volumes.items(), key=lambda item: -item[1]
        )[:count]


def _zone_of(point: Point, extent: BoundingBox, zones: int) -> int:
    span_x = extent.width or 1.0
    span_y = extent.height or 1.0
    col = min(zones - 1, int((point.x - extent.min_x) / span_x * zones))
    row = min(zones - 1, int((point.y - extent.min_y) / span_y * zones))
    return row * zones + col


def od_matrix(
    network: RoadNetwork,
    flows: Sequence[TrafficFlow],
    zones_per_side: int = 4,
) -> OdMatrix:
    """Aggregate flow volumes into a zone-level OD matrix."""
    if zones_per_side < 1:
        raise TraceError(f"need >= 1 zone per side, got {zones_per_side}")
    if not flows:
        raise TraceError("cannot build an OD matrix from zero flows")
    extent = network.bounding_box()
    volumes: Dict[Tuple[int, int], float] = {}
    for flow in flows:
        origin = _zone_of(network.position(flow.origin), extent, zones_per_side)
        destination = _zone_of(
            network.position(flow.destination), extent, zones_per_side
        )
        key = (origin, destination)
        volumes[key] = volumes.get(key, 0.0) + flow.volume
    return OdMatrix(
        zones_per_side=zones_per_side, extent=extent, volumes=volumes
    )


def _endpoint_log_likelihood(
    network: RoadNetwork,
    endpoints: Sequence[NodeId],
    weights_volume: Sequence[float],
    bias: float,
) -> float:
    """Log-likelihood of observed endpoints under exp(-bias * r) weights."""
    box = network.bounding_box()
    center = box.center
    scale = max(box.width, box.height) / 2.0 or 1.0
    # Normalizing constant over ALL intersections (the choice set).
    log_z = math.log(
        sum(
            math.exp(
                -bias * network.position(node).distance_to(center) / scale
            )
            for node in network.nodes()
        )
    )
    total = 0.0
    for node, volume in zip(endpoints, weights_volume):
        r = network.position(node).distance_to(center) / scale
        total += volume * (-bias * r - log_z)
    return total


def estimate_center_bias(
    network: RoadNetwork,
    flows: Sequence[TrafficFlow],
    bias_grid: Optional[Sequence[float]] = None,
) -> float:
    """ML estimate of the gravity model's center-bias parameter.

    Treats each flow endpoint (origin and destination, volume-weighted)
    as a draw from the softmax ``P(v) ∝ exp(-bias * r_v)`` over
    intersections, where ``r_v`` is the normalized distance to the city
    center; returns the grid point maximizing the likelihood.
    """
    if not flows:
        raise TraceError("cannot estimate demand from zero flows")
    if bias_grid is None:
        bias_grid = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0]
    endpoints: List[NodeId] = []
    volumes: List[float] = []
    for flow in flows:
        endpoints.extend((flow.origin, flow.destination))
        volumes.extend((flow.volume, flow.volume))
    best_bias = bias_grid[0]
    best_ll = -math.inf
    for bias in bias_grid:
        ll = _endpoint_log_likelihood(network, endpoints, volumes, bias)
        if ll > best_ll:
            best_bias, best_ll = bias, ll
    return best_bias


def demand_summary(
    network: RoadNetwork,
    flows: Sequence[TrafficFlow],
    center_radius_fraction: float = 0.35,
) -> Dict[str, float]:
    """Volume shares by endpoint location (center vs elsewhere)."""
    if not flows:
        raise TraceError("cannot summarize zero flows")
    box = network.bounding_box()
    center = box.center
    radius = center_radius_fraction * max(box.width, box.height) / 2.0
    central = 0.0
    total = 0.0
    for flow in flows:
        for node in (flow.origin, flow.destination):
            total += flow.volume
            if network.position(node).distance_to(center) <= radius:
                central += flow.volume
    return {
        "central_endpoint_share": central / total if total else 0.0,
        "total_volume": sum(flow.volume for flow in flows),
        "flow_count": float(len(flows)),
    }
