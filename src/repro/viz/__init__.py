"""Dependency-free SVG visualization of networks and placements."""

from .plots import panel_plot, svg_line_plot
from .render import (
    render_manhattan,
    render_network,
    render_placement,
    save_svg,
)
from .svg import SvgCanvas

__all__ = [
    "SvgCanvas",
    "panel_plot",
    "render_manhattan",
    "render_network",
    "render_placement",
    "save_svg",
    "svg_line_plot",
]
