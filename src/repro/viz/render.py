"""Renderers: road networks, traffic, and placements as SVG.

Visual conventions (matching the paper's Fig. 1/2 style):

* streets — light gray lines (one-way streets dashed);
* traffic flows — blue polylines, width proportional to volume;
* the shop — a green square;
* RAPs — red circles, radius scaled by attributed customers;
* the Manhattan ``D x D`` region — a dashed rectangle.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from ..core import Placement, Scenario, TrafficFlow
from ..graphs import NodeId, RoadNetwork
from ..manhattan import ManhattanScenario
from .svg import SvgCanvas

PathLike = Union[str, Path]

STREET_COLOR = "#bbbbbb"
FLOW_COLOR = "#3366cc"
RAP_COLOR = "#cc3333"
SHOP_COLOR = "#117733"


def _draw_streets(canvas: SvgCanvas, network: RoadNetwork) -> None:
    drawn = set()
    for tail, head, _ in network.edges():
        if (head, tail) in drawn:
            continue
        drawn.add((tail, head))
        two_way = network.has_road(head, tail)
        canvas.line(
            network.position(tail),
            network.position(head),
            stroke=STREET_COLOR,
            stroke_width=1.2 if two_way else 1.0,
            dash=None if two_way else "4,3",
        )


def _draw_flows(
    canvas: SvgCanvas,
    network: RoadNetwork,
    flows: Sequence[TrafficFlow],
    max_width: float = 6.0,
) -> None:
    if not flows:
        return
    top_volume = max(flow.volume for flow in flows)
    for flow in flows:
        width = 0.8 + (flow.volume / top_volume) * max_width
        canvas.polyline(
            [network.position(node) for node in flow.path],
            stroke=FLOW_COLOR,
            stroke_width=width,
            opacity=0.35,
        )


def render_network(
    network: RoadNetwork,
    flows: Sequence[TrafficFlow] = (),
    caption: Optional[str] = None,
    width: int = 800,
) -> str:
    """The base map: streets plus (optionally) traffic flows."""
    canvas = SvgCanvas(network.bounding_box(), width=width)
    _draw_streets(canvas, network)
    _draw_flows(canvas, network, flows)
    if caption:
        canvas.caption(caption)
    return canvas.to_svg()


def render_placement(
    scenario: Scenario,
    placement: Placement,
    caption: Optional[str] = None,
    width: int = 800,
    label_raps: bool = True,
) -> str:
    """A placement on its scenario: flows, shop, and sized RAP markers."""
    network = scenario.network
    canvas = SvgCanvas(network.bounding_box(), width=width)
    _draw_streets(canvas, network)
    _draw_flows(canvas, network, scenario.flows)

    contributions = placement.customers_by_rap()
    top = max(contributions.values()) if contributions else 0.0
    for rap in placement.raps:
        share = contributions.get(rap, 0.0) / top if top > 0 else 0.0
        canvas.circle(
            network.position(rap),
            radius=4.0 + 6.0 * share,
            fill=RAP_COLOR,
            stroke="white",
        )
        if label_raps:
            canvas.text(
                network.position(rap),
                f"{contributions.get(rap, 0.0):.2g}",
                size=10,
                dy=-8,
            )
    canvas.square_marker(network.position(scenario.shop), fill=SHOP_COLOR)
    canvas.caption(
        caption
        or (
            f"{placement.algorithm or 'placement'}: k={placement.k}, "
            f"{placement.attracted:.3g} customers/day"
        )
    )
    return canvas.to_svg()


def render_manhattan(
    scenario: ManhattanScenario,
    raps: Sequence[NodeId] = (),
    caption: Optional[str] = None,
    width: int = 800,
) -> str:
    """The Manhattan scenario: the D x D region plus any RAPs."""
    network = scenario.network
    canvas = SvgCanvas(network.bounding_box(), width=width)
    _draw_streets(canvas, network)
    _draw_flows(canvas, network, scenario.flows)
    canvas.rect(scenario.region, stroke="#333333", dash="6,4", stroke_width=1.5)
    for rap in raps:
        canvas.circle(network.position(rap), radius=5.0, fill=RAP_COLOR,
                      stroke="white")
    canvas.square_marker(network.position(scenario.shop), fill=SHOP_COLOR)
    if caption:
        canvas.caption(caption)
    return canvas.to_svg()


def save_svg(svg: str, path: PathLike) -> None:
    """Write an SVG document to disk."""
    with open(path, "w") as handle:
        handle.write(svg)
