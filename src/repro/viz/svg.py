"""A minimal SVG document builder (no dependencies).

Just enough scalable-vector plumbing to draw road networks and
placements: a fluent document that collects shapes in *world*
coordinates (feet, y growing north) and emits an SVG with the proper
flip and fit-to-view transform.
"""

from __future__ import annotations

from typing import List, Optional, Sequence
from xml.sax.saxutils import escape, quoteattr

from ..graphs import BoundingBox, Point


class SvgCanvas:
    """Collects shapes in world coordinates; renders to an SVG string."""

    def __init__(
        self,
        world: BoundingBox,
        width: int = 800,
        margin: float = 0.05,
    ) -> None:
        if width < 10:
            raise ValueError(f"canvas width too small: {width}")
        self._world = world.expanded(
            margin * max(world.width, world.height, 1.0)
        )
        self._width = width
        aspect = (self._world.height or 1.0) / (self._world.width or 1.0)
        self._height = max(10, int(width * aspect))
        self._elements: List[str] = []

    # ------------------------------------------------------------------
    # coordinate mapping
    # ------------------------------------------------------------------
    def _sx(self, x: float) -> float:
        span = self._world.width or 1.0
        return (x - self._world.min_x) / span * self._width

    def _sy(self, y: float) -> float:
        span = self._world.height or 1.0
        # SVG y grows downward; world y grows north.
        return self._height - (y - self._world.min_y) / span * self._height

    # ------------------------------------------------------------------
    # shapes (world coordinates)
    # ------------------------------------------------------------------
    def line(
        self,
        a: Point,
        b: Point,
        stroke: str = "#888",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        dash: Optional[str] = None,
    ) -> None:
        """A straight segment between two world points."""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{self._sx(a.x):.2f}" y1="{self._sy(a.y):.2f}" '
            f'x2="{self._sx(b.x):.2f}" y2="{self._sy(b.y):.2f}" '
            f'stroke={quoteattr(stroke)} stroke-width="{stroke_width:.2f}" '
            f'opacity="{opacity:.3f}"{dash_attr} stroke-linecap="round"/>'
        )

    def polyline(
        self,
        points: Sequence[Point],
        stroke: str = "#555",
        stroke_width: float = 1.5,
        opacity: float = 1.0,
    ) -> None:
        """An open polyline through world points (ignored if < 2 points)."""
        if len(points) < 2:
            return
        coords = " ".join(
            f"{self._sx(p.x):.2f},{self._sy(p.y):.2f}" for p in points
        )
        self._elements.append(
            f'<polyline points="{coords}" fill="none" '
            f'stroke={quoteattr(stroke)} stroke-width="{stroke_width:.2f}" '
            f'opacity="{opacity:.3f}" stroke-linejoin="round" '
            'stroke-linecap="round"/>'
        )

    def circle(
        self,
        center: Point,
        radius: float = 4.0,
        fill: str = "#d33",
        stroke: str = "none",
        opacity: float = 1.0,
    ) -> None:
        """A filled circle (radius in screen pixels)."""
        self._elements.append(
            f'<circle cx="{self._sx(center.x):.2f}" '
            f'cy="{self._sy(center.y):.2f}" r="{radius:.2f}" '
            f'fill={quoteattr(fill)} stroke={quoteattr(stroke)} '
            f'opacity="{opacity:.3f}"/>'
        )

    def rect(
        self,
        box: BoundingBox,
        stroke: str = "#333",
        fill: str = "none",
        stroke_width: float = 1.0,
        dash: Optional[str] = None,
    ) -> None:
        """An axis-aligned rectangle from a world bounding box."""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        x = self._sx(box.min_x)
        y = self._sy(box.max_y)
        w = self._sx(box.max_x) - x
        h = self._sy(box.min_y) - y
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" fill={quoteattr(fill)} '
            f'stroke={quoteattr(stroke)} '
            f'stroke-width="{stroke_width:.2f}"{dash_attr}/>'
        )

    def square_marker(
        self, center: Point, size: float = 10.0, fill: str = "#171"
    ) -> None:
        """A screen-space square marker (used for the shop)."""
        cx, cy = self._sx(center.x), self._sy(center.y)
        half = size / 2
        self._elements.append(
            f'<rect x="{cx - half:.2f}" y="{cy - half:.2f}" '
            f'width="{size:.2f}" height="{size:.2f}" '
            f'fill={quoteattr(fill)} stroke="white" stroke-width="1"/>'
        )

    def text(
        self,
        anchor: Point,
        content: str,
        size: int = 12,
        fill: str = "#222",
        dy: float = 0.0,
    ) -> None:
        """A text label anchored at a world point."""
        self._elements.append(
            f'<text x="{self._sx(anchor.x):.2f}" '
            f'y="{self._sy(anchor.y) + dy:.2f}" font-size="{size}" '
            f'fill={quoteattr(fill)} '
            'font-family="sans-serif">'
            f"{escape(content)}</text>"
        )

    def caption(self, content: str, size: int = 13) -> None:
        """A caption pinned to the top-left corner in screen space."""
        self._elements.append(
            f'<text x="8" y="{size + 6}" font-size="{size}" fill="#222" '
            f'font-family="sans-serif">{escape(content)}</text>'
        )

    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        """Serialize the canvas to an SVG document string."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self._width}" height="{self._height}" '
            f'viewBox="0 0 {self._width} {self._height}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )
