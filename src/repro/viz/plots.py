"""SVG line plots — paper-style figure rendering.

The paper's evaluation figures are k-vs-customers line plots; this
module draws them as standalone SVG (no plotting dependency), so
``rapflow run-figure figNN --svg-dir out/`` regenerates graphics that
can sit next to the paper's for visual comparison.

Marker/color assignments are stable per series position, the y-axis is
zero-based (matching the paper's plots), and the legend is drawn inside
the plot area's top-left, under the title.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ExperimentError

#: Line colors, assigned in series order (proposed algorithm first).
COLORS = (
    "#d62728",  # red — the proposed algorithm
    "#1f77b4",  # blue
    "#2ca02c",  # green
    "#9467bd",  # purple
    "#8c564b",  # brown
    "#e377c2",  # pink
    "#7f7f7f",  # gray
    "#17becf",  # cyan
)

MARKERS = ("circle", "square", "triangle", "diamond", "circle", "square",
           "triangle", "diamond")


def _marker_svg(kind: str, x: float, y: float, size: float, color: str) -> str:
    half = size / 2
    if kind == "circle":
        return (
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{half:.1f}" '
            f'fill="{color}"/>'
        )
    if kind == "square":
        return (
            f'<rect x="{x - half:.1f}" y="{y - half:.1f}" '
            f'width="{size:.1f}" height="{size:.1f}" fill="{color}"/>'
        )
    if kind == "triangle":
        points = f"{x:.1f},{y - half:.1f} {x - half:.1f},{y + half:.1f} " \
                 f"{x + half:.1f},{y + half:.1f}"
        return f'<polygon points="{points}" fill="{color}"/>'
    # diamond
    points = (
        f"{x:.1f},{y - half:.1f} {x + half:.1f},{y:.1f} "
        f"{x:.1f},{y + half:.1f} {x - half:.1f},{y:.1f}"
    )
    return f'<polygon points="{points}" fill="{color}"/>'


def svg_line_plot(
    series: Dict[str, Sequence[float]],
    xs: Sequence[float],
    title: str = "",
    x_label: str = "number of RAPs (k)",
    y_label: str = "attracted customers/day",
    width: int = 560,
    height: int = 400,
) -> str:
    """Render aligned series as a paper-style SVG line plot."""
    if not series:
        raise ExperimentError("nothing to plot")
    if len(series) > len(COLORS):
        raise ExperimentError(
            f"at most {len(COLORS)} series supported, got {len(series)}"
        )
    for name, values in series.items():
        if len(values) != len(xs):
            raise ExperimentError(
                f"series {name!r} has {len(values)} points for {len(xs)} xs"
            )
    margin_left, margin_right = 64, 16
    margin_top, margin_bottom = 40, 52
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0
    y_max = max(max(values) for values in series.values()) or 1.0
    y_max *= 1.08  # headroom

    def sx(x: float) -> float:
        return margin_left + (x - x_min) / x_span * plot_w

    def sy(y: float) -> float:
        return margin_top + plot_h - y / y_max * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="sans-serif">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    # Axes.
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{margin_top + plot_h}" stroke="#333" stroke-width="1"/>'
    )
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" '
        'stroke="#333" stroke-width="1"/>'
    )
    # Y ticks + gridlines (5 divisions).
    for i in range(6):
        value = y_max * i / 5
        y = sy(value)
        parts.append(
            f'<line x1="{margin_left - 4}" y1="{y:.1f}" x2="{margin_left}" '
            f'y2="{y:.1f}" stroke="#333"/>'
        )
        if i > 0:
            parts.append(
                f'<line x1="{margin_left}" y1="{y:.1f}" '
                f'x2="{margin_left + plot_w}" y2="{y:.1f}" '
                'stroke="#eee" stroke-width="1"/>'
            )
        parts.append(
            f'<text x="{margin_left - 8}" y="{y + 4:.1f}" font-size="11" '
            f'text-anchor="end" fill="#333">{value:.2g}</text>'
        )
    # X ticks.
    for x in xs:
        px = sx(x)
        parts.append(
            f'<line x1="{px:.1f}" y1="{margin_top + plot_h}" '
            f'x2="{px:.1f}" y2="{margin_top + plot_h + 4}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{margin_top + plot_h + 18}" '
            f'font-size="11" text-anchor="middle" fill="#333">{x:g}</text>'
        )
    # Labels + title.
    parts.append(
        f'<text x="{margin_left + plot_w / 2:.1f}" y="{height - 12}" '
        f'font-size="12" text-anchor="middle" fill="#222">{x_label}</text>'
    )
    parts.append(
        f'<text x="16" y="{margin_top + plot_h / 2:.1f}" font-size="12" '
        f'text-anchor="middle" fill="#222" '
        f'transform="rotate(-90 16 {margin_top + plot_h / 2:.1f})">'
        f"{y_label}</text>"
    )
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="22" font-size="13" '
            f'text-anchor="middle" fill="#111">{title}</text>'
        )
    # Series.
    for index, (name, values) in enumerate(series.items()):
        color = COLORS[index]
        marker = MARKERS[index]
        points = " ".join(
            f"{sx(x):.1f},{sy(v):.1f}" for x, v in zip(xs, values)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            'stroke-width="1.8"/>'
        )
        for x, v in zip(xs, values):
            parts.append(_marker_svg(marker, sx(x), sy(v), 7.0, color))
        # Legend entry.
        ly = margin_top + 14 + index * 16
        lx = margin_left + 10
        parts.append(_marker_svg(marker, lx, ly - 4, 7.0, color))
        parts.append(
            f'<text x="{lx + 10}" y="{ly}" font-size="11" '
            f'fill="#222">{name}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def panel_plot(panel, title: Optional[str] = None) -> str:
    """Plot a :class:`~repro.experiments.results.PanelResult` as SVG."""
    from ..experiments.report import display_name

    series = {
        display_name(name): list(s.means) for name, s in panel.series.items()
    }
    return svg_line_plot(
        series,
        [float(k) for k in panel.spec.ks],
        title=title if title is not None else panel.spec.panel_id,
    )
