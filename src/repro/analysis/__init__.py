"""Analysis tooling: diagnostics, comparisons, terminal charts.

Everything an operator (or a reviewer) needs to interrogate a placement
beyond its headline number: per-RAP attribution, detour distributions,
marginal-value curves, head-to-head algorithm sweeps with bootstrap
confidence intervals, and dependency-free ASCII charts.
"""

from .charts import line_chart, panel_chart, sparkline
from .comparison import (
    Comparison,
    ComparisonRow,
    bootstrap_mean_ci,
    compare_algorithms,
    paired_win_rate,
)
from .diagnostics import (
    DetourStats,
    PlacementDiagnostics,
    detour_histogram,
    diagnose,
    render_diagnostics,
)
from .robustness import (
    FailureImpact,
    FailureSimulation,
    VolumeRobustness,
    expected_value_under_failures,
    failure_impacts,
    simulate_failures,
    volume_robustness,
    worst_case_failure,
)

__all__ = [
    "Comparison",
    "ComparisonRow",
    "DetourStats",
    "FailureImpact",
    "FailureSimulation",
    "PlacementDiagnostics",
    "VolumeRobustness",
    "bootstrap_mean_ci",
    "compare_algorithms",
    "detour_histogram",
    "diagnose",
    "expected_value_under_failures",
    "failure_impacts",
    "simulate_failures",
    "line_chart",
    "paired_win_rate",
    "panel_chart",
    "render_diagnostics",
    "sparkline",
    "volume_robustness",
    "worst_case_failure",
]
