"""Placement diagnostics: what a deployed placement actually does.

The placement algorithms return an attracted-customer total;
operators deciding where to *rent roof space* need more: which RAPs pull
their weight, how far the attracted drivers detour, and how much value
each additional RAP added.  :func:`diagnose` computes all of it from a
scenario + placement pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core import Placement, Scenario, evaluate_placement
from ..graphs import INFINITY, NodeId


@dataclass(frozen=True)
class DetourStats:
    """Distribution of detour distances over covered flows."""

    count: int
    mean: float
    median: float
    max: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DetourStats":
        """Build the distribution summary from raw detour values."""
        if not values:
            return cls(count=0, mean=0.0, median=0.0, max=0.0)
        ordered = sorted(values)
        n = len(ordered)
        median = (
            ordered[n // 2]
            if n % 2
            else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
        )
        return cls(
            count=n,
            mean=sum(ordered) / n,
            median=median,
            max=ordered[-1],
        )


@dataclass(frozen=True)
class PlacementDiagnostics:
    """Everything :func:`diagnose` measures."""

    placement: Placement
    covered_flow_fraction: float
    """Flows with at least one RAP on their path / all flows."""

    covered_volume_fraction: float
    """Traffic volume of covered flows / total volume."""

    attracted_fraction: float
    """Attracted customers / (alpha-weighted total volume ceiling)."""

    detours: DetourStats
    """Detour distribution over covered flows."""

    rap_contributions: Dict[NodeId, float]
    """Customers attributed to each RAP (serving-RAP attribution)."""

    idle_raps: Tuple[NodeId, ...]
    """RAPs that serve no flow at all."""

    marginal_curve: Tuple[float, ...]
    """Attracted customers after each prefix of the placement order —
    the value-per-RAP curve an operator would use to trim the budget."""

    def efficiency(self) -> float:
        """Attracted customers per non-idle RAP (0 when none active)."""
        active = self.placement.k - len(self.idle_raps)
        if active == 0:
            return 0.0
        return self.placement.attracted / active


def diagnose(scenario: Scenario, placement: Placement) -> PlacementDiagnostics:
    """Compute full diagnostics for ``placement`` on ``scenario``."""
    flows = scenario.flows
    total_volume = sum(flow.volume for flow in flows)
    ceiling = sum(flow.volume * flow.attractiveness for flow in flows)

    covered_flows = 0
    covered_volume = 0.0
    detour_values: List[float] = []
    for flow, outcome in zip(flows, placement.outcomes):
        if outcome.covered:
            covered_flows += 1
            covered_volume += flow.volume
            if outcome.detour != INFINITY:
                detour_values.append(outcome.detour)

    contributions = placement.customers_by_rap()
    idle = tuple(
        rap for rap in placement.raps if contributions.get(rap, 0.0) == 0.0
    )
    curve = tuple(
        evaluate_placement(scenario, placement.raps[: i + 1]).attracted
        for i in range(placement.k)
    )
    return PlacementDiagnostics(
        placement=placement,
        covered_flow_fraction=covered_flows / len(flows) if flows else 0.0,
        covered_volume_fraction=(
            covered_volume / total_volume if total_volume else 0.0
        ),
        attracted_fraction=(
            placement.attracted / ceiling if ceiling else 0.0
        ),
        detours=DetourStats.from_values(detour_values),
        rap_contributions=contributions,
        idle_raps=idle,
        marginal_curve=curve,
    )


def detour_histogram(
    placement: Placement, bin_width: float, max_bins: int = 32
) -> List[Tuple[float, int]]:
    """Histogram of covered-flow detours: ``[(bin_start, count), ...]``.

    Flows beyond ``max_bins * bin_width`` are clamped into the last bin.
    """
    if bin_width <= 0:
        raise ValueError(f"bin width must be positive, got {bin_width}")
    counts: Dict[int, int] = {}
    for outcome in placement.outcomes:
        if not outcome.covered or outcome.detour == INFINITY:
            continue
        index = min(int(outcome.detour / bin_width), max_bins - 1)
        counts[index] = counts.get(index, 0) + 1
    if not counts:
        return []
    top = max(counts)
    return [(i * bin_width, counts.get(i, 0)) for i in range(top + 1)]


def render_diagnostics(diagnostics: PlacementDiagnostics) -> str:
    """Human-readable multi-line summary."""
    p = diagnostics.placement
    lines = [
        p.summary(),
        f"  covered flows  : {diagnostics.covered_flow_fraction:6.1%}"
        f"  (volume {diagnostics.covered_volume_fraction:6.1%})",
        f"  attracted      : {diagnostics.attracted_fraction:6.1%} of the "
        "alpha-weighted ceiling",
        f"  detours        : mean {diagnostics.detours.mean:,.0f} ft, "
        f"median {diagnostics.detours.median:,.0f} ft, "
        f"max {diagnostics.detours.max:,.0f} ft over "
        f"{diagnostics.detours.count} covered flows",
        f"  per-active-RAP : {diagnostics.efficiency():,.2f} customers/day",
    ]
    if diagnostics.idle_raps:
        lines.append(f"  idle RAPs      : {list(diagnostics.idle_raps)!r}")
    if diagnostics.marginal_curve:
        deltas = [diagnostics.marginal_curve[0]] + [
            b - a
            for a, b in zip(
                diagnostics.marginal_curve, diagnostics.marginal_curve[1:]
            )
        ]
        formatted = ", ".join(f"{d:,.2f}" for d in deltas)
        lines.append(f"  marginal gains : {formatted}")
    return "\n".join(lines)
