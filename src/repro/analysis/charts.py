"""ASCII charts for terminal-native result inspection.

No plotting dependency is available offline, so the reports draw the
paper's line plots as Unicode charts: one mark per algorithm, k on the
x-axis, attracted customers on the y-axis.  Good enough to eyeball the
orderings and crossovers the reproduction is about.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import ExperimentError

#: Plot marks, assigned to series in insertion order.
MARKS = "ox*+#@%&"

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline (monotone series read especially well)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return SPARK_LEVELS[0] * len(values)
    span = high - low
    return "".join(
        SPARK_LEVELS[
            min(
                len(SPARK_LEVELS) - 1,
                int((v - low) / span * len(SPARK_LEVELS)),
            )
        ]
        for v in values
    )


def line_chart(
    series: Dict[str, Sequence[float]],
    xs: Sequence[int],
    height: int = 12,
    width_per_point: int = 6,
    y_label: str = "customers",
) -> str:
    """Render several aligned series as an ASCII line chart.

    ``series`` maps name -> y-values (all the same length as ``xs``).
    Later series overdraw earlier ones on collisions; the legend maps
    marks back to names.
    """
    if not series:
        raise ExperimentError("nothing to chart")
    if height < 2:
        raise ExperimentError(f"chart height must be >= 2, got {height}")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(xs)}:
        raise ExperimentError(
            f"series lengths {sorted(lengths)} do not match {len(xs)} xs"
        )
    if len(series) > len(MARKS):
        raise ExperimentError(
            f"at most {len(MARKS)} series supported, got {len(series)}"
        )

    all_values = [v for values in series.values() for v in values]
    low = min(0.0, min(all_values))
    high = max(all_values)
    if high == low:
        high = low + 1.0
    span = high - low

    columns = len(xs)
    grid: List[List[str]] = [
        [" "] * (columns * width_per_point) for _ in range(height)
    ]
    # Draw in reverse insertion order so that on cell collisions the
    # EARLIER series wins — callers list the headline algorithm first.
    for mark, (name, values) in reversed(
        list(zip(MARKS, series.items()))
    ):
        for i, value in enumerate(values):
            row = height - 1 - int((value - low) / span * (height - 1))
            col = i * width_per_point + width_per_point // 2
            grid[row][col] = mark

    label_width = max(len(f"{high:.1f}"), len(f"{low:.1f}")) + 1
    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{high:.1f}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{low:.1f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * (columns * width_per_point)
    ticks = " " * (label_width + 2) + "".join(
        str(x).center(width_per_point) for x in xs
    )
    legend = "  ".join(
        f"{mark}={name}" for mark, name in zip(MARKS, series.keys())
    )
    return "\n".join(lines + [axis, ticks, f"  [{y_label}]  {legend}"])


def panel_chart(panel, height: int = 12) -> str:
    """Chart a :class:`~repro.experiments.results.PanelResult`."""
    from ..experiments.report import display_name

    series = {
        display_name(name): s.means for name, s in panel.series.items()
    }
    return line_chart(series, list(panel.spec.ks), height=height)
