"""Robustness analysis: demand uncertainty and RAP failures.

The scenario's flow volumes come from *historical* traffic ("obtained
from the historical record", paper Section I) — tomorrow's demand will
differ.  And physical RAPs fail.  Two questions an operator asks before
committing:

* :func:`volume_robustness` — re-draw flow volumes with multiplicative
  noise many times; how much does the placement's value move, and would
  the chosen sites change?
* :func:`failure_impacts` / :func:`worst_case_failure` — remove each
  RAP in turn and re-evaluate.  Note this is *not* the per-RAP
  attribution from the diagnostics: when a RAP dies, surviving RAPs
  absorb some of its flows (they were second-best), so the true loss is
  usually smaller than the attribution.
* :func:`expected_value_under_failures` / :func:`simulate_failures` —
  the *planning* view: given independent per-RAP failure probabilities
  (a :class:`~repro.extensions.FailureModel`), what does a placement
  attract in expectation?  The closed form comes from
  :mod:`repro.extensions.failure_aware`; the Monte-Carlo simulator here
  validates it by sampling failure patterns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..core import (
    Placement,
    Scenario,
    TrafficFlow,
    evaluate_placement,
    evaluate_placement_many,
)
from ..errors import ExperimentError
from ..extensions.failure_aware import FailureModel, expected_attracted
from ..graphs import NodeId


@dataclass(frozen=True)
class VolumeRobustness:
    """Outcome of :func:`volume_robustness`."""

    nominal_value: float
    mean_value: float
    worst_value: float
    best_value: float
    site_stability: float
    """Mean Jaccard similarity between the nominal placement's sites and
    the sites re-optimized under each perturbed demand (1.0 = the
    placement is always re-chosen)."""

    resamples: int


def _perturbed_scenario(
    scenario: Scenario, rng: random.Random, volume_noise: float
) -> Scenario:
    flows: List[TrafficFlow] = []
    for flow in scenario.flows:
        factor = max(0.05, rng.gauss(1.0, volume_noise))
        flows.append(
            TrafficFlow(
                path=flow.path,
                volume=flow.volume * factor,
                attractiveness=flow.attractiveness,
                label=flow.label,
            )
        )
    return Scenario(
        scenario.network,
        flows,
        scenario.shop,
        scenario.utility,
        candidate_sites=scenario.candidate_sites,
    )


def volume_robustness(
    scenario: Scenario,
    placement: Placement,
    algorithm=None,
    volume_noise: float = 0.25,
    resamples: int = 20,
    seed: int = 0,
) -> VolumeRobustness:
    """Stress a placement against multiplicative demand noise.

    ``algorithm`` (optional, any object with ``select(scenario, k)``)
    re-optimizes under each perturbed demand to measure *site
    stability*; when omitted only the value spread is computed and
    stability is reported as 1.0.
    """
    if resamples < 1:
        raise ExperimentError(f"need at least one resample, got {resamples}")
    if volume_noise < 0:
        raise ExperimentError(f"noise must be >= 0, got {volume_noise}")
    rng = random.Random(seed)
    values: List[float] = []
    stabilities: List[float] = []
    nominal_sites = set(placement.raps)
    for _ in range(resamples):
        perturbed = _perturbed_scenario(scenario, rng, volume_noise)
        values.append(
            evaluate_placement(perturbed, placement.raps).attracted
        )
        if algorithm is not None and nominal_sites:
            reoptimized = set(algorithm.select(perturbed, placement.k))
            union = nominal_sites | reoptimized
            stabilities.append(
                len(nominal_sites & reoptimized) / len(union) if union else 1.0
            )
    return VolumeRobustness(
        nominal_value=placement.attracted,
        mean_value=sum(values) / len(values),
        worst_value=min(values),
        best_value=max(values),
        site_stability=(
            sum(stabilities) / len(stabilities) if stabilities else 1.0
        ),
        resamples=resamples,
    )


@dataclass(frozen=True)
class FailureImpact:
    """Effect of losing one RAP."""

    rap: NodeId
    remaining_value: float
    loss: float
    attributed: float
    """The diagnostics-style attribution (serving-RAP customers); the
    true ``loss`` is <= this whenever surviving RAPs absorb flows."""

    @property
    def absorbed(self) -> float:
        """Customers rescued by the surviving RAPs."""
        return self.attributed - self.loss


def failure_impacts(
    scenario: Scenario, placement: Placement
) -> List[FailureImpact]:
    """Re-evaluate the placement with each RAP removed in turn."""
    attributed = placement.customers_by_rap()
    impacts: List[FailureImpact] = []
    for rap in placement.raps:
        survivors = [site for site in placement.raps if site != rap]
        remaining = evaluate_placement(scenario, survivors).attracted
        impacts.append(
            FailureImpact(
                rap=rap,
                remaining_value=remaining,
                loss=placement.attracted - remaining,
                attributed=attributed.get(rap, 0.0),
            )
        )
    return impacts


def worst_case_failure(
    scenario: Scenario, placement: Placement
) -> Optional[FailureImpact]:
    """The single RAP whose loss hurts the most (None for empty)."""
    impacts = failure_impacts(scenario, placement)
    if not impacts:
        return None
    return max(impacts, key=lambda impact: impact.loss)


def expected_value_under_failures(
    scenario: Scenario, placement: Placement, model: FailureModel
) -> float:
    """Exact expected attracted customers of ``placement`` under ``model``.

    Closed form (no enumeration of failure patterns); equals
    ``placement.attracted`` when the model is failure-free.
    """
    return expected_attracted(scenario, placement.raps, model)


@dataclass(frozen=True)
class FailureSimulation:
    """Outcome of :func:`simulate_failures`."""

    exact_expected: float
    simulated_mean: float
    worst_sample: float
    best_sample: float
    trials: int

    @property
    def absolute_gap(self) -> float:
        """``|simulated - exact|`` — should shrink as trials grow."""
        return abs(self.simulated_mean - self.exact_expected)


def simulate_failures(
    scenario: Scenario,
    placement: Placement,
    model: FailureModel,
    trials: int = 200,
    seed: int = 0,
) -> FailureSimulation:
    """Monte-Carlo validation of the expected-value closed form.

    Samples independent failure patterns, re-evaluates the surviving
    sites each time, and reports the sample mean next to the exact
    expectation so tests (and skeptical operators) can compare them.
    All survivor sets are scored in one batch over the scenario's packed
    coverage index (:func:`repro.core.evaluate_placement_many`), so a
    repetition costs one min-reduction instead of a full flow walk.
    """
    if trials < 1:
        raise ExperimentError(f"need at least one trial, got {trials}")
    rng = random.Random(seed)
    survivor_sets: List[List[NodeId]] = [
        [
            rap for rap in placement.raps
            if rng.random() >= model.probability(rap)
        ]
        for _ in range(trials)
    ]
    values = evaluate_placement_many(scenario, survivor_sets)
    return FailureSimulation(
        exact_expected=expected_attracted(scenario, placement.raps, model),
        simulated_mean=sum(values) / len(values),
        worst_sample=min(values),
        best_sample=max(values),
        trials=trials,
    )
