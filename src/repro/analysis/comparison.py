"""Algorithm comparison and uncertainty quantification.

:func:`compare_algorithms` runs a head-to-head sweep on one scenario;
:func:`bootstrap_mean_ci` puts confidence intervals on averaged series
(the paper averages 1,000 shop draws — with fewer draws you want to know
how settled the ordering is).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms import algorithm_by_name
from ..core import Scenario, evaluate_placement
from ..errors import ExperimentError
from ..graphs import NodeId


@dataclass(frozen=True)
class ComparisonRow:
    """One algorithm's sweep on one scenario."""

    algorithm: str
    ks: Tuple[int, ...]
    values: Tuple[float, ...]
    sites_at_max_k: Tuple[NodeId, ...]


@dataclass(frozen=True)
class Comparison:
    """Head-to-head results for several algorithms on one scenario."""

    rows: Tuple[ComparisonRow, ...]

    def winner_at(self, k: int) -> str:
        """Algorithm with the highest value at budget k."""
        best_row = None
        best_value = float("-inf")
        for row in self.rows:
            try:
                value = row.values[row.ks.index(k)]
            except ValueError:
                continue
            if value > best_value:
                best_row, best_value = row, value
        if best_row is None:
            raise ExperimentError(f"no algorithm has k={k}")
        return best_row.algorithm

    def dominance_counts(self) -> Dict[str, int]:
        """How many (k) points each algorithm wins (ties -> first)."""
        counts = {row.algorithm: 0 for row in self.rows}
        if not self.rows:
            return counts
        for k in self.rows[0].ks:
            counts[self.winner_at(k)] += 1
        return counts


def compare_algorithms(
    scenario: Scenario,
    algorithms: Sequence[str],
    ks: Sequence[int],
    seed: int = 0,
) -> Comparison:
    """Run ``algorithms`` across ``ks`` on one fixed scenario.

    Selections are made once at ``max(ks)`` and prefixed (all registered
    algorithms used here are prefix-consistent; see
    :data:`repro.experiments.runner.PREFIX_CONSISTENT`).
    """
    if not ks or not algorithms:
        raise ExperimentError("need at least one algorithm and one k")
    max_k = min(max(ks), len(scenario.candidate_sites))
    rows: List[ComparisonRow] = []
    for name in algorithms:
        kwargs = {"seed": seed} if name == "random" else {}
        algorithm = algorithm_by_name(name, **kwargs)
        sites = algorithm.select(scenario, max_k)
        values = tuple(
            evaluate_placement(scenario, sites[: min(k, len(sites))]).attracted
            for k in ks
        )
        rows.append(
            ComparisonRow(
                algorithm=name,
                ks=tuple(ks),
                values=values,
                sites_at_max_k=tuple(sites),
            )
        )
    return Comparison(rows=tuple(rows))


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2_000,
    rng: Optional[random.Random] = None,
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` percentile-bootstrap CI of the mean."""
    if not values:
        raise ExperimentError("cannot bootstrap zero values")
    if not (0 < confidence < 1):
        raise ExperimentError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    rng = rng or random.Random(0)
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, mean, mean
    means = []
    for _ in range(resamples):
        sample = [values[rng.randrange(n)] for _ in range(n)]
        means.append(sum(sample) / n)
    means.sort()
    alpha = (1 - confidence) / 2
    low = means[int(alpha * resamples)]
    high = means[min(resamples - 1, int((1 - alpha) * resamples))]
    return mean, low, high


def paired_win_rate(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Fraction of paired repetitions where ``first`` beats ``second``.

    A cheap, assumption-free effect measure for "algorithm A vs B over
    shop draws"; 0.5 means a coin flip.
    """
    if len(first) != len(second) or not first:
        raise ExperimentError("need two equal-length non-empty sequences")
    wins = sum(1 for a, b in zip(first, second) if a > b)
    ties = sum(1 for a, b in zip(first, second) if a == b)
    return (wins + 0.5 * ties) / len(first)
