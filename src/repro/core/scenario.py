"""Scenario: the full problem instance handed to placement algorithms.

A :class:`Scenario` bundles the road network, the targetable traffic
flows, the shop location, and the utility function, and owns the derived
structures (detour calculator, coverage index) so that algorithms and
evaluators share one set of Dijkstra fields.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidScenarioError
from ..graphs import BoundingBox, NodeId, RoadNetwork
from .coverage import CoverageIndex
from .detour import DetourCalculator
from .flow import TrafficFlow
from .utility import UtilityFunction


class Scenario:
    """One shop, one network, a set of flows, one utility function.

    Parameters
    ----------
    network:
        The road network; not copied — treat as frozen after construction.
    flows:
        The targetable traffic flows (paper's set ``T``).  Paths are
        validated against the network.
    shop:
        The intersection hosting the shop.
    utility:
        Detour-probability function ``f``.
    candidate_sites:
        Intersections eligible for RAPs.  Defaults to every intersection.
    detour_mode:
        ``"shortest"`` (paper) or ``"along-path"`` — see
        :class:`~repro.core.detour.DetourCalculator`.
    default_backend:
        Default evaluation backend (``"python"`` or ``"numpy"``) for
        algorithms run on this scenario; ``None`` defers to the
        ``RAPFLOW_BACKEND`` environment variable, then the kernel's
        built-in default.  See :mod:`repro.core.kernel`.
    """

    def __init__(
        self,
        network: RoadNetwork,
        flows: Sequence[TrafficFlow],
        shop: NodeId,
        utility: UtilityFunction,
        candidate_sites: Optional[Sequence[NodeId]] = None,
        detour_mode: str = "shortest",
        default_backend: Optional[str] = None,
    ) -> None:
        if shop not in network:
            raise InvalidScenarioError(f"shop {shop!r} is not an intersection")
        if not flows:
            raise InvalidScenarioError("scenario needs at least one traffic flow")
        for flow in flows:
            flow.validate_on(network)
        self._network = network
        self._flows: Tuple[TrafficFlow, ...] = tuple(flows)
        self._shop = shop
        self._utility = utility
        if candidate_sites is None:
            self._candidates: Tuple[NodeId, ...] = tuple(network.nodes())
        else:
            for site in candidate_sites:
                if site not in network:
                    raise InvalidScenarioError(
                        f"candidate site {site!r} is not an intersection"
                    )
            self._candidates = tuple(dict.fromkeys(candidate_sites))
            if not self._candidates:
                raise InvalidScenarioError("candidate site list is empty")
        self._detour_mode = detour_mode
        if default_backend is not None and default_backend not in (
            "python",
            "numpy",
        ):
            raise InvalidScenarioError(
                f"unknown evaluation backend {default_backend!r}; "
                "expected 'python' or 'numpy'"
            )
        self._default_backend = default_backend
        self._calculator: Optional[DetourCalculator] = None
        self._coverage: Optional[CoverageIndex] = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The road network."""
        return self._network

    @property
    def flows(self) -> Tuple[TrafficFlow, ...]:
        """The targetable traffic flows (paper's set ``T``)."""
        return self._flows

    @property
    def shop(self) -> NodeId:
        """The shop intersection."""
        return self._shop

    @property
    def utility(self) -> UtilityFunction:
        """The detour-probability function ``f``."""
        return self._utility

    @property
    def candidate_sites(self) -> Tuple[NodeId, ...]:
        """Intersections eligible to host RAPs."""
        return self._candidates

    @property
    def default_backend(self) -> Optional[str]:
        """Preferred evaluation backend (None = environment/default)."""
        return self._default_backend

    @property
    def detour_mode(self) -> str:
        """The detour semantics this scenario was built with."""
        return self._detour_mode

    @property
    def detour_calculator(self) -> DetourCalculator:
        """Lazily built detour engine (shared by algorithms and evaluators)."""
        if self._calculator is None:
            self._calculator = DetourCalculator(
                self._network, self._shop, mode=self._detour_mode
            )
        return self._calculator

    @property
    def coverage(self) -> CoverageIndex:
        """Lazily built coverage index (site -> flows with detours)."""
        if self._coverage is None:
            self._coverage = CoverageIndex(self._flows, self.detour_calculator)
        return self._coverage

    def attach_coverage(self, coverage: CoverageIndex) -> None:
        """Install a prebuilt coverage index (artifact-cache restore path).

        A :class:`CoverageIndex` reconstructed from persisted CSR arrays
        (:meth:`CoverageIndex.from_packed`) is attached here so the
        scenario never re-runs the Dijkstra/coverage build.  The index
        must describe exactly this scenario's flows, in order.
        """
        if coverage.flows != self._flows:
            raise InvalidScenarioError(
                "coverage index flows do not match this scenario's flows"
            )
        self._coverage = coverage

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def total_volume(self) -> float:
        """Sum of all flow volumes — the demand ceiling."""
        return sum(flow.volume for flow in self._flows)

    def sites_within(self, box: BoundingBox) -> List[NodeId]:
        """Candidate sites whose position lies inside ``box``.

        The paper's Random baseline draws from the ``D x D`` square around
        the shop; this is its supporting query.
        """
        return [
            site
            for site in self._candidates
            if box.contains(self._network.position(site))
        ]

    def with_utility(self, utility: UtilityFunction) -> "Scenario":
        """A scenario sharing this one's structures but a new utility.

        Detour distances do not depend on the utility, so the (expensive)
        calculator and coverage index are reused.
        """
        clone = Scenario.__new__(Scenario)
        clone._network = self._network
        clone._flows = self._flows
        clone._shop = self._shop
        clone._utility = utility
        clone._candidates = self._candidates
        clone._detour_mode = self._detour_mode
        clone._default_backend = self._default_backend
        clone._calculator = self._calculator
        clone._coverage = self._coverage
        return clone

    def with_flows(self, flows: Sequence[TrafficFlow]) -> "Scenario":
        """A scenario sharing this one's structures but new traffic flows.

        The detour calculator depends only on the network and shop, so it
        is reused; the coverage index depends on the flow *paths* and is
        dropped — callers patching volumes over unchanged paths (the
        streaming pipeline) re-attach a patched index via
        :meth:`attach_coverage` instead of paying a rebuild.
        """
        if not flows:
            raise InvalidScenarioError("scenario needs at least one traffic flow")
        for flow in flows:
            flow.validate_on(self._network)
        clone = Scenario.__new__(Scenario)
        clone._network = self._network
        clone._flows = tuple(flows)
        clone._shop = self._shop
        clone._utility = self._utility
        clone._candidates = self._candidates
        clone._detour_mode = self._detour_mode
        clone._default_backend = self._default_backend
        clone._calculator = self._calculator
        clone._coverage = None
        return clone

    def __repr__(self) -> str:
        return (
            f"Scenario(shop={self._shop!r}, flows={len(self._flows)}, "
            f"sites={len(self._candidates)}, utility={self._utility!r})"
        )
