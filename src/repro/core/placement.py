"""Placement results.

A :class:`Placement` is an ordered tuple of intersections chosen to host
RAPs, together with the evaluation bookkeeping a caller usually wants:
the attracted-customer total and the per-flow detour/probability
breakdown.  Placements are produced by algorithms
(:mod:`repro.algorithms`) and scored by
:func:`repro.core.evaluation.evaluate_placement`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..graphs import INFINITY, NodeId


@dataclass(frozen=True)
class FlowOutcome:
    """How one traffic flow responds to a placement."""

    detour: float
    """Minimum detour distance among RAPs on the flow's path (inf if none)."""

    probability: float
    """Detour probability ``f(detour)`` including attractiveness."""

    customers: float
    """Expected customers attracted from this flow: probability x volume."""

    serving_rap: Optional[NodeId] = None
    """The RAP realizing the minimum detour (None when uncovered)."""

    @property
    def covered(self) -> bool:
        """Whether any RAP lies on the flow's path."""
        return self.detour != INFINITY


@dataclass(frozen=True)
class Placement:
    """An evaluated RAP placement."""

    raps: Tuple[NodeId, ...]
    attracted: float
    outcomes: Tuple[FlowOutcome, ...] = field(repr=False, default=())
    algorithm: str = ""

    def __post_init__(self) -> None:
        if len(set(self.raps)) != len(self.raps):
            raise ValueError(f"placement repeats an intersection: {self.raps!r}")

    @property
    def k(self) -> int:
        """Number of placed RAPs."""
        return len(self.raps)

    @property
    def covered_flow_count(self) -> int:
        """Number of flows with at least one RAP on their path."""
        return sum(1 for outcome in self.outcomes if outcome.covered)

    def customers_by_rap(self) -> Dict[NodeId, float]:
        """Attracted customers attributed to each serving RAP."""
        totals: Dict[NodeId, float] = {rap: 0.0 for rap in self.raps}
        for outcome in self.outcomes:
            if outcome.serving_rap is not None:
                totals[outcome.serving_rap] = (
                    totals.get(outcome.serving_rap, 0.0) + outcome.customers
                )
        return totals

    def summary(self) -> str:
        """One-line human-readable description."""
        name = self.algorithm or "placement"
        return (
            f"{name}: k={self.k}, attracted={self.attracted:.4f}, "
            f"covered {self.covered_flow_count}/{len(self.outcomes)} flows"
        )
