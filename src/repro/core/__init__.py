"""Core model: flows, utilities, detours, scenarios, evaluation.

This subpackage implements the paper's problem formulation (Section III-A)
— everything an algorithm needs to know about *one* instance of the RAP
placement problem.  The algorithms themselves live in
:mod:`repro.algorithms`; the Manhattan-grid special case in
:mod:`repro.manhattan`.
"""

from .coverage import CoverageEntry, CoverageIndex
from .detour import DETOUR_MODES, DetourCalculator
from .evaluation import (
    IncrementalEvaluator,
    attracted_customers,
    evaluate_placement,
)
from .flow import TrafficFlow, flow_between, total_volume
from .kernel import (
    BACKENDS,
    ArrayEvaluator,
    CelfQueue,
    PackedCoverage,
    affected_placements,
    evaluate_placement_many,
    make_evaluator,
    reevaluate_affected,
    resolve_backend,
)
from .placement import FlowOutcome, Placement
from .scenario import Scenario
from .validation import (
    Severity,
    ValidationIssue,
    has_errors,
    lint_scenario,
)
from .utility import (
    PAPER_ALPHA,
    CustomUtility,
    LinearUtility,
    SqrtUtility,
    ThresholdUtility,
    UtilityFunction,
    utility_by_name,
)

__all__ = [
    "ArrayEvaluator",
    "BACKENDS",
    "CelfQueue",
    "CoverageEntry",
    "CoverageIndex",
    "CustomUtility",
    "DETOUR_MODES",
    "DetourCalculator",
    "FlowOutcome",
    "IncrementalEvaluator",
    "LinearUtility",
    "PAPER_ALPHA",
    "PackedCoverage",
    "Placement",
    "Scenario",
    "Severity",
    "SqrtUtility",
    "ThresholdUtility",
    "TrafficFlow",
    "UtilityFunction",
    "ValidationIssue",
    "affected_placements",
    "attracted_customers",
    "evaluate_placement",
    "evaluate_placement_many",
    "flow_between",
    "has_errors",
    "lint_scenario",
    "make_evaluator",
    "reevaluate_affected",
    "resolve_backend",
    "total_volume",
    "utility_by_name",
]
