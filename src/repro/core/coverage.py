"""Coverage index: which intersection reaches which flow, at what detour.

The placement algorithms never touch the graph directly — they operate on
a :class:`CoverageIndex`, which materializes, for every intersection ``v``,
the list of flows whose fixed path passes ``v`` together with the detour
distance a RAP at ``v`` would impose on them.  Building the index costs
one pass over all flow paths (plus the Dijkstra fields of the
:class:`~repro.core.detour.DetourCalculator`), after which greedy steps
are pure array work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..graphs import INFINITY, NodeId
from .detour import DetourCalculator
from .flow import TrafficFlow


@dataclass(frozen=True)
class CoverageEntry:
    """One (intersection, flow) incidence."""

    flow_index: int
    detour: float


class CoverageIndex:
    """Incidence structure between candidate intersections and flows.

    ``index.covering(v)`` lists the flows a RAP at ``v`` would reach (the
    flow passes ``v``) with the corresponding detour distance; entries
    with infinite detour (shop unreachable) are dropped at build time.
    """

    def __init__(
        self, flows: Sequence[TrafficFlow], calculator: DetourCalculator
    ) -> None:
        self._flows: Tuple[TrafficFlow, ...] = tuple(flows)
        self._calculator = calculator
        self._by_node: Dict[NodeId, List[CoverageEntry]] = {}
        self._by_flow: List[List[Tuple[NodeId, float]]] = []
        for flow_index, flow in enumerate(self._flows):
            per_flow: List[Tuple[NodeId, float]] = []
            for node, detour in calculator.detours_along(flow):
                if detour == INFINITY:
                    continue
                per_flow.append((node, detour))
                self._by_node.setdefault(node, []).append(
                    CoverageEntry(flow_index=flow_index, detour=detour)
                )
            self._by_flow.append(per_flow)

    @property
    def flows(self) -> Tuple[TrafficFlow, ...]:
        """The indexed traffic flows, in input order."""
        return self._flows

    @property
    def flow_count(self) -> int:
        """Number of indexed flows."""
        return len(self._flows)

    @property
    def calculator(self) -> DetourCalculator:
        """The detour calculator the index was built from."""
        return self._calculator

    def nodes(self) -> Iterator[NodeId]:
        """Intersections that cover at least one flow."""
        return iter(self._by_node)

    def covering(self, node: NodeId) -> Sequence[CoverageEntry]:
        """Flows reachable from a RAP at ``node`` (may be empty)."""
        return self._by_node.get(node, ())

    def options_for(self, flow_index: int) -> Sequence[Tuple[NodeId, float]]:
        """``(node, detour)`` pairs along one flow's path (finite only)."""
        return self._by_flow[flow_index]

    def best_possible_detour(self, flow_index: int) -> float:
        """Smallest detour any single RAP can give this flow."""
        options = self._by_flow[flow_index]
        if not options:
            return INFINITY
        return min(detour for _, detour in options)

    def incidence_count(self) -> int:
        """Total number of (node, flow) incidences — the index's size."""
        return sum(len(entries) for entries in self._by_node.values())
