"""Coverage index: which intersection reaches which flow, at what detour.

The placement algorithms never touch the graph directly — they operate on
a :class:`CoverageIndex`, which materializes, for every intersection ``v``,
the list of flows whose fixed path passes ``v`` together with the detour
distance a RAP at ``v`` would impose on them.  Building the index costs
one pass over all flow paths (plus the Dijkstra fields of the
:class:`~repro.core.detour.DetourCalculator`), after which greedy steps
are pure array work.

For the vectorized backend, :meth:`CoverageIndex.packed` compiles the
incidence lists once into flat CSR arrays (see
:mod:`repro.core.kernel`); the compiled form is cached on the index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import obs
from ..errors import InvalidScenarioError
from ..graphs import INFINITY, NodeId
from .detour import DetourCalculator
from .flow import TrafficFlow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .kernel import PackedCoverage


@dataclass(frozen=True)
class CoverageEntry:
    """One (intersection, flow) incidence.

    ``position`` is the intersection's index along the flow's fixed path
    (travel order).  It carries the paper's Theorem 1 tie-breaking: among
    RAPs attaining the minimum detour, the one encountered first — i.e.
    with the smallest ``position`` — serves the flow.
    """

    flow_index: int
    detour: float
    position: int = 0


class CoverageIndex:
    """Incidence structure between candidate intersections and flows.

    ``index.covering(v)`` lists the flows a RAP at ``v`` would reach (the
    flow passes ``v``) with the corresponding detour distance; entries
    with infinite detour (shop unreachable) are dropped at build time.

    The per-flow best detours and the total incidence count are computed
    once at build time — both are queried inside per-step loops by
    analysis code, so the accessors must stay O(1).
    """

    def __init__(
        self, flows: Sequence[TrafficFlow], calculator: DetourCalculator
    ) -> None:
        self._flows: Tuple[TrafficFlow, ...] = tuple(flows)
        self._calculator = calculator
        self._by_node: Dict[NodeId, List[CoverageEntry]] = {}
        self._by_flow: List[List[Tuple[NodeId, float]]] = []
        self._best_by_flow: List[float] = []
        self._incidences = 0
        self._packed: Optional["PackedCoverage"] = None
        self._materialized = True
        for flow_index, flow in enumerate(self._flows):
            per_flow: List[Tuple[NodeId, float]] = []
            best = INFINITY
            for position, (node, detour) in enumerate(
                calculator.detours_along(flow)
            ):
                if detour == INFINITY:
                    continue
                per_flow.append((node, detour))
                if detour < best:
                    best = detour
                self._by_node.setdefault(node, []).append(
                    CoverageEntry(
                        flow_index=flow_index, detour=detour, position=position
                    )
                )
                self._incidences += 1
            self._by_flow.append(per_flow)
            self._best_by_flow.append(best)

    @classmethod
    def from_packed(
        cls,
        flows: Sequence[TrafficFlow],
        packed: "PackedCoverage",
        calculator: Optional[DetourCalculator] = None,
        lazy: bool = False,
    ) -> "CoverageIndex":
        """Rebuild an index from its CSR-compiled form — no Dijkstra pass.

        The inverse of :meth:`packed`, used when an artifact cache
        restores a scenario: the incidence lists, per-flow options, and
        best-detour cache are reassembled from the CSR columns in the
        exact order the original build produced them (node rows in
        first-incidence order, per-node entries by ascending flow index,
        per-flow options by path position), so evaluators walking the
        restored index visit entries in the same order and accumulate
        bit-identical totals.

        ``calculator`` may be omitted: a restored index answers every
        coverage query without one, and accessing :attr:`calculator`
        then raises.

        With ``lazy=True`` the Python-object incidence lists are not
        built up front: the index answers :attr:`flows`,
        :meth:`incidence_count`, and :meth:`packed` straight from the
        CSR columns, and materializes the per-node / per-flow lists only
        when an accessor that needs them is first hit.  A worker that
        serves purely through the numpy kernel therefore never pays the
        object-graph memory — the point of the shared-memory attach
        path, where the CSR columns live in a shared segment.
        """
        index = cls.__new__(cls)
        index._flows = tuple(flows)
        index._calculator = calculator
        index._by_node = {}
        index._by_flow = []
        index._best_by_flow = []
        index._incidences = int(packed.incidence_count)
        index._packed = packed
        index._materialized = False
        if not lazy:
            index._materialize()
        return index

    def _materialize(self) -> None:
        """Reassemble the object incidence lists from the CSR columns."""
        packed = self._packed
        assert packed is not None  # only unset on the __init__ path
        flow_count = len(self._flows)
        by_node: Dict[NodeId, List[CoverageEntry]] = {}
        positioned: List[List[Tuple[int, NodeId, float]]] = [
            [] for _ in self._flows
        ]
        for row, node in enumerate(packed.nodes):
            entries: List[CoverageEntry] = []
            for j in range(int(packed.indptr[row]), int(packed.indptr[row + 1])):
                flow_index = int(packed.flow_index[j])
                if not 0 <= flow_index < flow_count:
                    raise InvalidScenarioError(
                        f"packed coverage references flow {flow_index} "
                        f"but only {flow_count} flows were supplied"
                    )
                detour = float(packed.detour[j])
                position = int(packed.position[j])
                entries.append(
                    CoverageEntry(
                        flow_index=flow_index, detour=detour, position=position
                    )
                )
                positioned[flow_index].append((position, node, detour))
            by_node[node] = entries
        by_flow: List[List[Tuple[NodeId, float]]] = []
        for options in positioned:
            options.sort(key=lambda item: item[0])
            by_flow.append([(node, detour) for _, node, detour in options])
        self._by_node = by_node
        self._by_flow = by_flow
        self._best_by_flow = [
            min((detour for _, detour in options), default=INFINITY)
            for options in by_flow
        ]
        self._materialized = True
        obs.count("coverage.materializations")

    @property
    def flows(self) -> Tuple[TrafficFlow, ...]:
        """The indexed traffic flows, in input order."""
        return self._flows

    @property
    def flow_count(self) -> int:
        """Number of indexed flows."""
        return len(self._flows)

    @property
    def calculator(self) -> DetourCalculator:
        """The detour calculator the index was built from.

        An index restored via :meth:`from_packed` may not carry one; it
        raises :class:`~repro.errors.InvalidScenarioError` then.
        """
        if self._calculator is None:
            raise InvalidScenarioError(
                "this coverage index was restored from packed arrays "
                "without a detour calculator"
            )
        return self._calculator

    def nodes(self) -> Iterator[NodeId]:
        """Intersections that cover at least one flow."""
        if not self._materialized:
            self._materialize()
        return iter(self._by_node)

    def covering(self, node: NodeId) -> Sequence[CoverageEntry]:
        """Flows reachable from a RAP at ``node`` (may be empty)."""
        if not self._materialized:
            self._materialize()
        return self._by_node.get(node, ())

    def options_for(self, flow_index: int) -> Sequence[Tuple[NodeId, float]]:
        """``(node, detour)`` pairs along one flow's path (finite only)."""
        if not self._materialized:
            self._materialize()
        return self._by_flow[flow_index]

    def best_possible_detour(self, flow_index: int) -> float:
        """Smallest detour any single RAP can give this flow (cached)."""
        if not self._materialized:
            self._materialize()
        return self._best_by_flow[flow_index]

    def incidence_count(self) -> int:
        """Total number of (node, flow) incidences — the index's size.

        Computed at build time; this accessor is O(1).
        """
        return self._incidences

    def packed(self) -> "PackedCoverage":
        """The CSR-compiled form of this index (built once, then cached).

        See :class:`repro.core.kernel.PackedCoverage` for the layout.
        """
        if self._packed is None:
            from .kernel import PackedCoverage

            self._packed = PackedCoverage.from_index(self)
        return self._packed
