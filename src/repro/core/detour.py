"""Detour-distance computation (paper Fig. 3).

For a driver of flow ``i -> j`` who receives an advertisement at
intersection ``v``, the detour distance is

    ``d(v, flow) = dist(v, shop) + dist(shop, j) - dist(v, j)``

where the three terms are the paper's ``d'``, ``d''`` and ``d'''``.

:class:`DetourCalculator` computes this with three families of Dijkstra
fields instead of the paper's ``O(|V|^3)`` all-pairs step:

* one reverse field anchored at the shop  -> ``dist(v, shop)``;
* one forward field anchored at the shop  -> ``dist(shop, j)``;
* one reverse field per *distinct flow destination*  -> ``dist(v, j)``
  (cached; real workloads share destinations heavily).

Two modes are supported for ``d'''``:

* ``"shortest"`` (default, the paper's model) — the true shortest
  distance from ``v`` to ``j``;
* ``"along-path"`` — the remaining length of the flow's fixed path, an
  ablation for map-matched paths that are not perfectly shortest.  Detours
  are clamped at zero in this mode (driving via the shop can only add
  distance in the paper's model, but a non-shortest fixed path can make
  the difference negative).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..errors import InvalidScenarioError
from ..graphs import (
    INFINITY,
    DistanceField,
    NodeId,
    RoadNetwork,
    distances_from,
    distances_to_target,
)
from .flow import TrafficFlow

DETOUR_MODES = ("shortest", "along-path")


class DetourCalculator:
    """Per-shop detour-distance engine.

    Thread-compatible for reads after warm-up; destination fields are
    cached lazily on first use.
    """

    def __init__(
        self,
        network: RoadNetwork,
        shop: NodeId,
        mode: str = "shortest",
    ) -> None:
        if shop not in network:
            raise InvalidScenarioError(f"shop node {shop!r} is not on the network")
        if mode not in DETOUR_MODES:
            raise InvalidScenarioError(
                f"unknown detour mode {mode!r}; expected one of {DETOUR_MODES}"
            )
        self._network = network
        self._shop = shop
        self._mode = mode
        self._to_shop: DistanceField = distances_to_target(network, shop)
        self._from_shop: DistanceField = distances_from(network, shop)
        self._to_destination: Dict[NodeId, DistanceField] = {}

    @property
    def network(self) -> RoadNetwork:
        """The road network distances are computed on."""
        return self._network

    @property
    def shop(self) -> NodeId:
        """The shop intersection this calculator is anchored at."""
        return self._shop

    @property
    def mode(self) -> str:
        """Detour mode: 'shortest' (paper) or 'along-path'."""
        return self._mode

    def distance_to_shop(self, node: NodeId) -> float:
        """``d' = dist(node, shop)`` (inf when the shop is unreachable)."""
        return self._to_shop[node]

    def distance_from_shop(self, node: NodeId) -> float:
        """``d'' = dist(shop, node)``."""
        return self._from_shop[node]

    def _destination_field(self, destination: NodeId) -> DistanceField:
        field = self._to_destination.get(destination)
        if field is None:
            field = distances_to_target(self._network, destination)
            self._to_destination[destination] = field
        return field

    def warm_up(self, flows: List[TrafficFlow]) -> None:
        """Precompute destination fields for ``flows`` eagerly.

        Optional; useful to front-load cost before timing a placement
        algorithm.
        """
        for flow in flows:
            self._destination_field(flow.destination)

    def detour(self, node: NodeId, flow: TrafficFlow) -> float:
        """Detour distance if flow ``flow`` receives the ad at ``node``.

        ``inf`` when the shop or the destination is unreachable from
        ``node`` (one-way streets can cause either).  The caller is
        responsible for only asking about nodes on the flow's path —
        the value is geometrically meaningful only there.
        """
        d_to_shop = self._to_shop[node]
        if d_to_shop == INFINITY:
            return INFINITY
        d_from_shop = self._from_shop[flow.destination]
        if d_from_shop == INFINITY:
            return INFINITY
        if self._mode == "shortest":
            d_direct = self._destination_field(flow.destination)[node]
        else:
            d_direct = self._remaining_path_length(node, flow)
        if d_direct == INFINITY:
            return INFINITY
        return max(0.0, d_to_shop + d_from_shop - d_direct)

    def _remaining_path_length(self, node: NodeId, flow: TrafficFlow) -> float:
        try:
            index = flow.path.index(node)
        except ValueError:
            return INFINITY
        return self._network.path_length(flow.path[index:])

    def detours_along(self, flow: TrafficFlow) -> Iterator[Tuple[NodeId, float]]:
        """``(node, detour)`` for every intersection on the flow's path."""
        if self._mode == "shortest":
            d_from_shop = self._from_shop[flow.destination]
            field = self._destination_field(flow.destination)
            for node in flow.path:
                d_to_shop = self._to_shop[node]
                d_direct = field[node]
                if INFINITY in (d_to_shop, d_from_shop, d_direct):
                    yield node, INFINITY
                else:
                    yield node, max(0.0, d_to_shop + d_from_shop - d_direct)
        else:
            # Walk the path backwards accumulating the remaining length so
            # the whole flow costs O(len(path)).
            remaining = [0.0] * len(flow.path)
            for i in range(len(flow.path) - 2, -1, -1):
                remaining[i] = remaining[i + 1] + self._network.edge_length(
                    flow.path[i], flow.path[i + 1]
                )
            d_from_shop = self._from_shop[flow.destination]
            for node, d_direct in zip(flow.path, remaining):
                d_to_shop = self._to_shop[node]
                if INFINITY in (d_to_shop, d_from_shop):
                    yield node, INFINITY
                else:
                    yield node, max(0.0, d_to_shop + d_from_shop - d_direct)

    def best_detour(self, flow: TrafficFlow) -> Tuple[NodeId, float]:
        """The on-path intersection with the smallest detour.

        By the paper's Theorem 1 this is the *first* on-path intersection
        (in travel order) among any fixed set of RAPs; over all path nodes
        it is simply the minimum.
        """
        best_node = flow.origin
        best = INFINITY
        for node, detour in self.detours_along(flow):
            if detour < best:
                best_node, best = node, detour
        return best_node, best
