"""Scenario linting: structured warnings before money is spent.

A scenario can be formally valid yet practically broken — a shop no
traffic can reach, a threshold so small no intersection qualifies, flow
paths that wander far off the shortest route (map-matching artifacts).
:func:`lint_scenario` checks for these and returns structured
:class:`ValidationIssue`s (never raises), so callers can gate a
deployment on ``severity == ERROR`` while logging the warnings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..graphs import shortest_path_length
from .scenario import Scenario


class Severity(enum.Enum):
    """How bad a lint finding is: WARNING (suspicious) or ERROR (fatal)."""
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class ValidationIssue:
    """One finding from :func:`lint_scenario`."""

    code: str
    severity: Severity
    message: str
    subject: Optional[object] = None

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


def lint_scenario(
    scenario: Scenario,
    path_stretch_tolerance: float = 1.25,
) -> List[ValidationIssue]:
    """Run every lint check; returns issues ordered errors-first.

    Checks
    ------
    * ``shop-unreachable``   (ERROR) — no flow can ever detour: every
      on-path intersection has infinite detour;
    * ``flow-cannot-detour`` (WARNING) — one flow's every intersection
      has an infinite detour (one-way pockets);
    * ``flow-never-attracted`` (WARNING) — finite detours exist but all
      exceed the utility threshold: the flow is dead weight for this D;
    * ``non-shortest-path``  (WARNING) — a fixed path is more than
      ``path_stretch_tolerance`` x the shortest distance (suspicious
      map-matching, or intentional — hence a warning);
    * ``candidate-covers-nothing`` (WARNING) — candidate sites that can
      never attract anybody (wasted search space);
    * ``threshold-excludes-all``  (ERROR) — no (site, flow) pair has a
      positive detour probability: every placement scores zero.
    """
    issues: List[ValidationIssue] = []
    coverage = scenario.coverage
    utility = scenario.utility
    flows = scenario.flows

    # Per-flow checks.
    detourable_flows = 0
    attractable_flows = 0
    for index, flow in enumerate(flows):
        options = coverage.options_for(index)
        if not options:
            issues.append(
                ValidationIssue(
                    code="flow-cannot-detour",
                    severity=Severity.WARNING,
                    message=(
                        f"flow {flow.describe()} has no intersection with a "
                        "finite detour (shop unreachable from its path)"
                    ),
                    subject=flow,
                )
            )
            continue
        detourable_flows += 1
        best = min(detour for _, detour in options)
        if utility.probability(best, flow.attractiveness) <= 0.0:
            issues.append(
                ValidationIssue(
                    code="flow-never-attracted",
                    severity=Severity.WARNING,
                    message=(
                        f"flow {flow.describe()}: best possible detour "
                        f"{best:,.0f} exceeds the threshold "
                        f"D={utility.threshold:,.0f}"
                    ),
                    subject=flow,
                )
            )
        else:
            attractable_flows += 1

        # Path stretch.
        network = scenario.network
        actual = network.path_length(flow.path)
        shortest = shortest_path_length(network, flow.origin, flow.destination)
        if shortest > 0 and actual > shortest * path_stretch_tolerance:
            issues.append(
                ValidationIssue(
                    code="non-shortest-path",
                    severity=Severity.WARNING,
                    message=(
                        f"flow {flow.describe()} path is "
                        f"{actual / shortest:.2f}x its shortest distance — "
                        "check map matching or use detour_mode='along-path'"
                    ),
                    subject=flow,
                )
            )

    if detourable_flows == 0:
        issues.append(
            ValidationIssue(
                code="shop-unreachable",
                severity=Severity.ERROR,
                message=(
                    f"shop {scenario.shop!r} is unreachable from every "
                    "targeted flow; no placement can attract anybody"
                ),
                subject=scenario.shop,
            )
        )
    elif attractable_flows == 0:
        issues.append(
            ValidationIssue(
                code="threshold-excludes-all",
                severity=Severity.ERROR,
                message=(
                    f"threshold D={utility.threshold:,.0f} excludes every "
                    "flow; every placement scores zero — increase D or move "
                    "the shop"
                ),
                subject=utility,
            )
        )

    # Candidate-site usefulness.
    useless = [
        site
        for site in scenario.candidate_sites
        if not any(
            utility.probability(
                entry.detour, flows[entry.flow_index].attractiveness
            )
            > 0.0
            for entry in coverage.covering(site)
        )
    ]
    if useless:
        issues.append(
            ValidationIssue(
                code="candidate-covers-nothing",
                severity=Severity.WARNING,
                message=(
                    f"{len(useless)}/{len(scenario.candidate_sites)} "
                    "candidate sites can never attract a customer "
                    f"(e.g. {useless[0]!r})"
                ),
                subject=tuple(useless),
            )
        )

    issues.sort(key=lambda issue: (issue.severity is not Severity.ERROR))
    return issues


def has_errors(issues: List[ValidationIssue]) -> bool:
    """Whether any issue is an ERROR."""
    return any(issue.severity is Severity.ERROR for issue in issues)
