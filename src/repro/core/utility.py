"""Detour-probability utility functions (paper Eqs. 1, 2, 11).

A utility function maps a detour distance ``d`` to the probability that a
driver who received an advertisement detours to the shop.  The paper
factors this probability as ``f(d) = alpha * shape(d)`` where ``alpha``
(the advertisement attractiveness, per traffic flow) is supplied by the
flow and ``shape`` is a non-increasing map from distance to ``[0, 1]``:

* :class:`ThresholdUtility` — ``shape(d) = 1`` for ``d <= D``, else 0
  (Eq. 1);
* :class:`LinearUtility` — ``shape(d) = 1 - d/D`` for ``d <= D``, else 0
  (Eq. 2, the paper's "decreasing utility function i");
* :class:`SqrtUtility` — ``shape(d) = 1 - sqrt(d/D)`` for ``d <= D``,
  else 0 (Eq. 11, "decreasing utility function ii").

All implementations return 0 for ``d = inf`` so that "no RAP on the path"
composes for free, and all validate ``D > 0``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Union

import numpy as np

from ..errors import InvalidUtilityError

#: Inputs the vectorized utility path accepts for distances/attractiveness.
ArrayLike = Union[float, "np.ndarray"]


class UtilityFunction(ABC):
    """Base class for detour-probability shapes.

    Subclasses implement :meth:`shape`; the class guarantees the clamping
    and edge-case behaviour every caller relies on:

    * negative distances are treated as 0 (a RAP on the shop's doorstep);
    * distances beyond :attr:`threshold` yield probability 0;
    * ``inf`` yields 0.
    """

    def __init__(self, threshold: float) -> None:
        if not (threshold > 0) or math.isinf(threshold):
            raise InvalidUtilityError(
                f"threshold D must be positive and finite, got {threshold}"
            )
        self._threshold = float(threshold)

    @property
    def threshold(self) -> float:
        """The maximum detour distance ``D`` any driver tolerates."""
        return self._threshold

    @abstractmethod
    def shape(self, normalized: float) -> float:
        """The shape value for ``normalized = d / D`` in ``[0, 1]``."""

    def probability(self, distance: float, attractiveness: float = 1.0) -> float:
        """``f(d) = attractiveness * shape(d)``, the paper's Eqs. 1/2/11."""
        if attractiveness < 0 or attractiveness > 1:
            raise InvalidUtilityError(
                f"attractiveness must be in [0, 1], got {attractiveness}"
            )
        if math.isnan(distance):
            raise InvalidUtilityError("detour distance is NaN")
        if distance >= math.inf or distance > self._threshold:
            return 0.0
        normalized = max(0.0, distance) / self._threshold
        value = self.shape(normalized)
        # Clamp against float error so probabilities stay probabilities.
        return attractiveness * min(1.0, max(0.0, value))

    def shape_array(self, normalized: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`shape` over ``normalized = d / D`` values.

        The base implementation falls back to per-element :meth:`shape`
        calls, so any subclass (including :class:`CustomUtility`) works
        with the array backend; the three paper shapes override it with
        true NumPy expressions.
        """
        return np.array(
            [self.shape(float(value)) for value in normalized], dtype=float
        )

    def probability_array(
        self, distances: ArrayLike, attractiveness: ArrayLike = 1.0
    ) -> "np.ndarray":
        """Vectorized :meth:`probability` — the kernel backend's hot path.

        ``distances`` and ``attractiveness`` broadcast against each other;
        each output element equals the scalar ``probability`` call
        bit-for-bit (same clamp, same threshold cut, ``inf`` -> 0), which
        is what lets the array and pure-Python evaluators produce
        identical placements.
        """
        d = np.asarray(distances, dtype=float)
        alpha = np.asarray(attractiveness, dtype=float)
        if np.any(alpha < 0) or np.any(alpha > 1):
            raise InvalidUtilityError(
                "attractiveness must be in [0, 1] for every element"
            )
        if np.any(np.isnan(d)):
            raise InvalidUtilityError("detour distance is NaN")
        inside = d <= self._threshold  # excludes inf for free
        normalized = np.where(
            inside, np.maximum(d, 0.0) / self._threshold, 0.0
        )
        value = np.minimum(1.0, np.maximum(0.0, self.shape_array(normalized)))
        result: "np.ndarray" = np.where(inside, alpha * value, 0.0)
        return result

    def __call__(self, distance: float, attractiveness: float = 1.0) -> float:
        return self.probability(distance, attractiveness)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(D={self._threshold:g})"


class ThresholdUtility(UtilityFunction):
    """Paper Eq. 1 — constant probability up to the threshold.

    Under this utility the placement problem reduces to weighted maximum
    coverage (paper Section III-B).
    """

    def shape(self, normalized: float) -> float:
        """Constant 1 inside the threshold (paper Eq. 1)."""
        return 1.0

    def shape_array(self, normalized: "np.ndarray") -> "np.ndarray":
        """Vectorized Eq. 1: all ones."""
        return np.ones_like(normalized)


class LinearUtility(UtilityFunction):
    """Paper Eq. 2 ("decreasing utility function i") — linear decay."""

    def shape(self, normalized: float) -> float:
        """Linear decay ``1 - d/D`` (paper Eq. 2)."""
        return 1.0 - normalized

    def shape_array(self, normalized: "np.ndarray") -> "np.ndarray":
        """Vectorized Eq. 2."""
        return 1.0 - normalized


class SqrtUtility(UtilityFunction):
    """Paper Eq. 11 ("decreasing utility function ii") — sqrt decay.

    Decays fastest near zero of the three shapes, which the paper notes
    forces RAPs close to the shop and shrinks the algorithmic advantage.
    """

    def shape(self, normalized: float) -> float:
        """Square-root decay ``1 - sqrt(d/D)`` (paper Eq. 11)."""
        return 1.0 - math.sqrt(normalized)

    def shape_array(self, normalized: "np.ndarray") -> "np.ndarray":
        """Vectorized Eq. 11 (``np.sqrt`` matches ``math.sqrt`` exactly)."""
        return 1.0 - np.sqrt(normalized)


class CustomUtility(UtilityFunction):
    """Wrap an arbitrary non-increasing shape ``[0, 1] -> [0, 1]``.

    The paper's Theorem 2 holds for any non-increasing utility; this class
    lets users exercise that generality.  Monotonicity is spot-checked at
    construction time.
    """

    def __init__(
        self, threshold: float, shape: Callable[[float], float], name: str = "custom"
    ) -> None:
        super().__init__(threshold)
        self._shape = shape
        self._name = name
        samples = [shape(i / 16.0) for i in range(17)]
        if any(b > a + 1e-9 for a, b in zip(samples, samples[1:])):
            raise InvalidUtilityError(
                "custom utility shape must be non-increasing on [0, 1]"
            )
        if any(v < -1e-9 or v > 1 + 1e-9 for v in samples):
            raise InvalidUtilityError(
                "custom utility shape must map [0, 1] into [0, 1]"
            )

    def shape(self, normalized: float) -> float:
        """Delegates to the user-provided shape callable."""
        return self._shape(normalized)

    def __repr__(self) -> str:
        return f"CustomUtility(D={self.threshold:g}, name={self._name!r})"


#: Attractiveness used throughout the paper's evaluation: "a person
#: receiving advertisements has a probability of 0.001 to go shopping if
#: the shop is on the way".
PAPER_ALPHA = 0.001


def utility_by_name(name: str, threshold: float) -> UtilityFunction:
    """Factory used by the experiment harness and the CLI.

    Accepts the paper's naming ("threshold", "decreasing-i"/"linear",
    "decreasing-ii"/"sqrt").
    """
    key = name.strip().lower().replace("_", "-")
    if key in ("threshold", "const", "constant"):
        return ThresholdUtility(threshold)
    if key in ("linear", "decreasing-i", "decreasing1", "decreasing-1"):
        return LinearUtility(threshold)
    if key in ("sqrt", "decreasing-ii", "decreasing2", "decreasing-2"):
        return SqrtUtility(threshold)
    raise InvalidUtilityError(f"unknown utility function {name!r}")
