"""Vectorized placement kernel: CSR coverage arrays + NumPy gain scans.

The pure-Python :class:`~repro.core.evaluation.IncrementalEvaluator`
walks one :class:`~repro.core.coverage.CoverageEntry` at a time and
re-evaluates the utility function on every query.  This module is its
array-backed twin, built around three ideas:

* **CSR packing** — :class:`PackedCoverage` flattens the coverage index
  into contiguous arrays: per-node slices ``indptr[row] ..
  indptr[row + 1]`` over ``flow_index`` / ``detour`` / ``position``
  columns, plus per-flow ``volume`` and ``attractiveness`` vectors.
  Batched marginal-gain queries become masked segment reductions
  (``np.bincount`` over ``entry_row``) instead of Python loops.
* **One-time utility evaluation** — for a fixed scenario the detour of
  every incidence never changes, so ``f(detour) * volume`` per incidence
  is a *constant*.  :class:`_KernelStatic` evaluates it once with the
  vectorized ``probability_array`` kernel and caches it per scenario;
  every gain query afterwards is pure arithmetic on cached values, with
  no utility evaluation in the hot path.
* **CELF lazy scans** — the objective is monotone submodular (the same
  property the runtime sanitizer spot-checks), so a candidate's stale
  gain is a valid upper bound on its current gain.  :class:`CelfQueue`
  keeps candidates in a max-heap of stale bounds; the first fresh pop is
  provably the true argmax, with ties broken by candidate-site order so
  lazy and exhaustive scans return *identical* placements.  The
  empty-state heap depends only on the scenario and is precompiled once
  (see :meth:`ArrayEvaluator.celf_queue`).

Semantics are pinned to the reference implementation: the serving RAP
per flow follows the paper's Theorem 1 tie-breaking (smallest detour,
then earliest in travel order), the gain split mirrors Algorithm 2's
two candidate factors, and every sum accumulates in coverage-entry
order so scalar and batched paths agree bit-for-bit.  The pure-Python
path stays available as the differential-testing reference via
``backend="python"``.
"""

from __future__ import annotations

import heapq
import os
import sys
import weakref
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from .. import obs
from ..errors import InvalidScenarioError
from ..graphs import INFINITY, NodeId
from .placement import FlowOutcome, Placement

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from .coverage import CoverageIndex
    from .evaluation import IncrementalEvaluator
    from .scenario import Scenario

#: Evaluation backends selectable per algorithm (or per scenario).
BACKENDS = ("python", "numpy")

#: Environment override for the default backend.
BACKEND_ENV = "RAPFLOW_BACKEND"

#: Backend used when neither the algorithm nor the scenario chooses.
DEFAULT_BACKEND = "numpy"

#: Sentinel path position for flows no placed RAP serves yet (mirrors
#: the reference evaluator's sentinel so tie-breaking agrees exactly).
_NO_POSITION = sys.maxsize

#: Shared placeholder for not-yet-materialized array twins.
_EMPTY = np.zeros(0)


def resolve_backend(
    backend: Optional[str] = None, scenario: Optional["Scenario"] = None
) -> str:
    """Pick the evaluation backend.

    Resolution order: explicit ``backend`` argument, then the scenario's
    ``default_backend``, then the ``RAPFLOW_BACKEND`` environment
    variable, then :data:`DEFAULT_BACKEND`.
    """
    choice = backend
    if choice is None and scenario is not None:
        choice = scenario.default_backend
    if choice is None:
        choice = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    choice = choice.strip().lower()
    if choice not in BACKENDS:
        raise InvalidScenarioError(
            f"unknown evaluation backend {choice!r}; expected one of {BACKENDS}"
        )
    obs.count("backend." + choice)
    return choice


@dataclass(frozen=True)
class PackedCoverage:
    """CSR-compiled coverage index.

    Row ``r`` describes intersection ``nodes[r]``: its incidences occupy
    ``indptr[r]:indptr[r + 1]`` in the ``flow_index`` / ``detour`` /
    ``position`` columns (entry order matches the Python index, i.e.
    ascending flow index).  ``entry_row`` maps each incidence back to its
    row for one-shot ``np.bincount`` segment reductions; ``volume`` and
    ``attractiveness`` are per-flow vectors aligned with
    ``CoverageIndex.flows``.
    """

    nodes: Tuple[NodeId, ...]
    row_of: Dict[NodeId, int]
    indptr: "np.ndarray"
    flow_index: "np.ndarray"
    detour: "np.ndarray"
    position: "np.ndarray"
    entry_row: "np.ndarray"
    volume: "np.ndarray"
    attractiveness: "np.ndarray"

    @classmethod
    def from_index(cls, index: "CoverageIndex") -> "PackedCoverage":
        """One-time compilation of a :class:`CoverageIndex` into CSR form."""
        nodes: List[NodeId] = list(index.nodes())
        row_of: Dict[NodeId, int] = {node: row for row, node in enumerate(nodes)}
        counts: List[int] = []
        flow_index: List[int] = []
        detour: List[float] = []
        position: List[int] = []
        for node in nodes:
            entries = index.covering(node)
            counts.append(len(entries))
            for entry in entries:
                flow_index.append(entry.flow_index)
                detour.append(entry.detour)
                position.append(entry.position)
        indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
        np.cumsum(np.asarray(counts, dtype=np.int64), out=indptr[1:])
        packed = cls(
            nodes=tuple(nodes),
            row_of=row_of,
            indptr=indptr,
            flow_index=np.asarray(flow_index, dtype=np.int64),
            detour=np.asarray(detour, dtype=float),
            position=np.asarray(position, dtype=np.int64),
            entry_row=np.repeat(
                np.arange(len(nodes), dtype=np.int64),
                np.asarray(counts, dtype=np.int64),
            ),
            volume=np.asarray(
                [flow.volume for flow in index.flows], dtype=float
            ),
            attractiveness=np.asarray(
                [flow.attractiveness for flow in index.flows], dtype=float
            ),
        )
        if obs.active() is not None:
            obs.count_many(
                {
                    "pack.builds": 1,
                    "pack.rows": packed.row_count,
                    "pack.incidences": packed.incidence_count,
                    "pack.flows": packed.flow_count,
                    "pack.bytes": packed.nbytes,
                }
            )
        return packed

    @classmethod
    def from_arrays(
        cls,
        nodes: Sequence[NodeId],
        indptr: "np.ndarray",
        flow_index: "np.ndarray",
        detour: "np.ndarray",
        position: "np.ndarray",
        volume: "np.ndarray",
        attractiveness: "np.ndarray",
        entry_row: Optional["np.ndarray"] = None,
    ) -> "PackedCoverage":
        """Reassemble a packed index from persisted CSR columns.

        The inverse of serializing :class:`PackedCoverage` column by
        column (see :mod:`repro.serve.artifacts`): ``row_of`` is derived,
        everything else is adopted as-is, so a round trip through
        float64-exact storage reproduces the original arrays bit for bit.

        ``entry_row`` may be supplied when the caller already holds the
        derived row map (the shared-memory attach path publishes it as a
        column so attaching never allocates an incidence-sized array);
        when given it is adopted as-is, and ``np.ascontiguousarray`` on
        already-contiguous ``int64``/``float64`` inputs returns the same
        buffer, so a fully shm-backed column set restores with **zero**
        per-process copies of the incidence data.
        """
        node_tuple = tuple(nodes)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        if len(indptr) != len(node_tuple) + 1:
            raise InvalidScenarioError(
                f"packed indptr has {len(indptr)} entries for "
                f"{len(node_tuple)} nodes (want nodes + 1)"
            )
        counts = np.diff(indptr)
        if len(counts) and counts.min() < 0:
            raise InvalidScenarioError("packed indptr must be non-decreasing")
        if entry_row is None:
            entry_row = np.repeat(
                np.arange(len(node_tuple), dtype=np.int64), counts
            )
        else:
            entry_row = np.ascontiguousarray(entry_row, dtype=np.int64)
            if len(entry_row) != int(indptr[-1]):
                raise InvalidScenarioError(
                    f"packed entry_row has {len(entry_row)} entries for "
                    f"{int(indptr[-1])} incidences"
                )
        return cls(
            nodes=node_tuple,
            row_of={node: row for row, node in enumerate(node_tuple)},
            indptr=indptr,
            flow_index=np.ascontiguousarray(flow_index, dtype=np.int64),
            detour=np.ascontiguousarray(detour, dtype=float),
            position=np.ascontiguousarray(position, dtype=np.int64),
            entry_row=entry_row,
            volume=np.ascontiguousarray(volume, dtype=float),
            attractiveness=np.ascontiguousarray(attractiveness, dtype=float),
        )

    @property
    def row_count(self) -> int:
        """Number of intersections with at least one incidence."""
        return len(self.nodes)

    @property
    def incidence_count(self) -> int:
        """Total (node, flow) incidences — mirrors the Python index."""
        return int(self.indptr[-1])

    @property
    def flow_count(self) -> int:
        """Number of flows the columns are aligned with."""
        return len(self.volume)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the CSR columns and flow vectors."""
        return int(
            self.indptr.nbytes
            + self.flow_index.nbytes
            + self.detour.nbytes
            + self.position.nbytes
            + self.entry_row.nbytes
            + self.volume.nbytes
            + self.attractiveness.nbytes
        )

    def row_slice(self, row: int) -> slice:
        """The CSR slice of one node's incidences."""
        return slice(int(self.indptr[row]), int(self.indptr[row + 1]))

    def apply_delta(self, deltas: Dict[int, float]) -> "PackedCoverage":
        """A pack with per-flow volume deltas applied — structure shared.

        Volume is the only column a traffic-matrix update touches: the
        incidence structure (``indptr`` / ``flow_index`` / ``detour`` /
        ``position`` / ``entry_row``) and the per-flow attractiveness
        depend on paths and the network alone, so they are adopted by
        reference — including read-only shared-memory views, which is
        why the patch is copy-on-write on the (small) volume vector
        rather than literally in place.  Each delta is *added* to the
        flow's current volume with one float64 addition, the exact
        expression a full recompile evaluates, so the patched pack is
        bit-identical to one rebuilt from the updated flows.
        """
        if not deltas:
            return self
        volume = np.array(self.volume, dtype=float)
        for raw_index, raw_delta in deltas.items():
            index = int(raw_index)
            if not 0 <= index < len(volume):
                raise InvalidScenarioError(
                    f"volume delta targets flow {index} but the pack has "
                    f"{len(volume)} flows"
                )
            updated = volume[index] + float(raw_delta)
            if not updated > 0:
                raise InvalidScenarioError(
                    f"volume delta {raw_delta!r} would drive flow {index} "
                    f"to non-positive volume {updated!r}"
                )
            volume[index] = updated
        patched = PackedCoverage(
            nodes=self.nodes,
            row_of=self.row_of,
            indptr=self.indptr,
            flow_index=self.flow_index,
            detour=self.detour,
            position=self.position,
            entry_row=self.entry_row,
            volume=volume,
            attractiveness=self.attractiveness,
        )
        if obs.active() is not None:
            obs.count_many(
                {"pack.delta_patches": 1, "pack.delta_flows": len(deltas)}
            )
        return patched


@dataclass
class _Alignment:
    """Candidate-tuple lookup arrays, compiled once per candidate tuple.

    ``rows_clipped`` / ``valid`` scatter row-aligned totals into
    candidate order (invalid rows read row 0 and are zeroed by the float
    mask — cheaper than boolean fancy indexing on small instances);
    ``heap`` is the ready-made empty-state CELF heap.
    """

    nodes: Sequence[NodeId]
    rows_clipped: "np.ndarray"
    valid: "np.ndarray"
    heap: List[Tuple[float, int, NodeId, int]]


class _ScalarMirrors:
    """Plain-list mirrors of the CSR columns for the scalar hot loops.

    Interpreter loops beat NumPy dispatch on the few-entry rows a
    single-site query touches, but the lists are *private* per-process
    copies of the whole pack (a boxed float costs ~4x its array slot).
    They are therefore built lazily on the first scalar query: a
    shared-memory worker answering only batched ``evaluate`` traffic
    never pays for them — which is what keeps its private RSS at
    ~zero copies of the artifact (see :mod:`repro.serve.shm`).
    """

    __slots__ = ("indptr", "flow_index", "detour", "position", "value")

    def __init__(self, packed: PackedCoverage, entry_value: "np.ndarray") -> None:
        self.indptr: List[int] = packed.indptr.tolist()
        self.flow_index: List[int] = packed.flow_index.tolist()
        self.detour: List[float] = packed.detour.tolist()
        self.position: List[int] = packed.position.tolist()
        self.value: List[float] = entry_value.tolist()


class _KernelStatic:
    """Immutable per-scenario kernel state shared by every evaluator.

    Holds the packed CSR index, the precomputed per-incidence
    contribution ``f(detour, attractiveness) * volume`` (constant for a
    fixed scenario — detours never change, so the utility is evaluated
    exactly once, vectorized), lazily-built plain-list mirrors of the
    CSR columns for the scalar hot loops (:class:`_ScalarMirrors`), and
    per-candidate-tuple :class:`_Alignment` caches.
    """

    __slots__ = (
        "packed",
        "entry_value",
        "row_of",
        "flow_count",
        "_scalars",
        "_alignments",
    )

    def __init__(self, scenario: "Scenario") -> None:
        packed = scenario.coverage.packed()
        self.packed = packed
        flow_index = packed.flow_index
        self.entry_value = (
            scenario.utility.probability_array(
                packed.detour, packed.attractiveness[flow_index]
            )
            * packed.volume[flow_index]
        )
        self.row_of = packed.row_of
        self.flow_count = packed.flow_count
        self._scalars: Optional[_ScalarMirrors] = None
        self._alignments: Dict[int, _Alignment] = {}

    def scalars(self) -> _ScalarMirrors:
        """The (lazily built, then cached) scalar-loop column mirrors."""
        mirrors = self._scalars
        if mirrors is None:
            mirrors = _ScalarMirrors(self.packed, self.entry_value)
            self._scalars = mirrors
            obs.count("kernel.scalar_mirror_builds")
        return mirrors

    def alignment(self, nodes: Sequence[NodeId]) -> _Alignment:
        """The (cached) alignment for one candidate tuple.

        Keyed by tuple identity with an ``is`` check, so the common case
        — algorithms always passing ``scenario.candidate_sites`` — hits
        the cache without hashing the tuple contents.
        """
        key = id(nodes)
        cached = self._alignments.get(key)
        if cached is not None and cached.nodes is nodes:
            obs.count("kernel.alignment_cache.hits")
            return cached
        obs.count("kernel.alignment_cache.misses")
        rows = np.asarray(
            [self.row_of.get(node, -1) for node in nodes], dtype=np.int64
        )
        inside = rows >= 0
        rows_clipped = np.where(inside, rows, 0)
        valid = inside.astype(float)
        if self.packed.row_count:
            base = np.bincount(
                self.packed.entry_row,
                weights=self.entry_value,
                minlength=self.packed.row_count,
            )
            initial: List[float] = (base[rows_clipped] * valid).tolist()
        else:
            initial = [0.0] * len(nodes)
        heap = [
            (-gain, order, site, 0)
            for order, (site, gain) in enumerate(zip(nodes, initial))
            if gain > 0.0
        ]
        heapq.heapify(heap)
        aligned = _Alignment(
            nodes=nodes, rows_clipped=rows_clipped, valid=valid, heap=heap
        )
        self._alignments[key] = aligned
        return aligned


#: One static kernel per live scenario (dropped with the scenario).
_STATIC_CACHE: "weakref.WeakKeyDictionary[Scenario, _KernelStatic]" = (
    weakref.WeakKeyDictionary()
)


def warm_kernel(scenario: "Scenario") -> Dict[str, int]:
    """Precompile every per-scenario kernel structure, returning stats.

    Builds (or revisits) the CSR pack, the one-time per-incidence utility
    values, and the empty-state CELF seed heap for the scenario's
    candidate tuple — the exact caches every later
    :class:`ArrayEvaluator` and lazy scan reuses.  Long-lived consumers
    (the :mod:`repro.serve` query engine, benchmark warm-up) call this
    once so the first real query pays no compilation cost.

    The returned stats are plain ints suitable for artifact metadata:
    ``rows`` / ``incidences`` / ``flows`` / ``nbytes`` describe the pack,
    ``seed_heap_entries`` the precompiled CELF heap.
    """
    static = _static_for(scenario)
    alignment = static.alignment(scenario.candidate_sites)
    packed = static.packed
    return {
        "rows": packed.row_count,
        "incidences": packed.incidence_count,
        "flows": packed.flow_count,
        "nbytes": packed.nbytes,
        "seed_heap_entries": len(alignment.heap),
    }


def _static_for(scenario: "Scenario") -> _KernelStatic:
    static = _STATIC_CACHE.get(scenario)
    if static is None:
        obs.count("kernel.static_cache.misses")
        static = _KernelStatic(scenario)
        _STATIC_CACHE[scenario] = static
    else:
        obs.count("kernel.static_cache.hits")
    return static


class ArrayEvaluator:
    """Array-kernel twin of :class:`~repro.core.evaluation.IncrementalEvaluator`.

    Same public surface (``gain``, ``gain_split``, ``place``,
    ``finish``, ...) plus the batched :meth:`gains` / :meth:`gain_splits`
    used by vectorized greedy scans.  Single-site queries run as scalar
    loops over the static kernel's precomputed per-incidence values (no
    utility evaluation, no array dispatch); batched queries are masked
    ``np.bincount`` segment reductions over every incidence.  Both
    accumulate in coverage-entry order, so they agree bit-for-bit with
    each other and with the reference evaluator's scan order.
    """

    def __init__(self, scenario: "Scenario") -> None:
        self._scenario = scenario
        self._utility = scenario.utility
        static = _static_for(scenario)
        self._static = static
        flow_count = static.flow_count
        self._best: List[float] = [INFINITY] * flow_count
        self._contribution: List[float] = [0.0] * flow_count
        self._touched: List[bool] = [False] * flow_count
        self._serving: List[Optional[NodeId]] = [None] * flow_count
        self._serving_pos: List[int] = [_NO_POSITION] * flow_count
        # Array twins of the per-flow lists, built lazily on the first
        # batched query (CELF rounds run entirely on the scalar state).
        self._best_np: "np.ndarray" = _EMPTY
        self._contribution_np: "np.ndarray" = _EMPTY
        self._np_dirty = True
        self._placed: List[NodeId] = []
        self._placed_set: Set[NodeId] = set()
        self._attracted = 0.0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def attracted(self) -> float:
        """Customers attracted by the RAPs placed so far."""
        return self._attracted

    @property
    def placed(self) -> Tuple[NodeId, ...]:
        """RAPs committed so far, in placement order."""
        return tuple(self._placed)

    def is_placed(self, node: NodeId) -> bool:
        """Whether a RAP is already committed at ``node``."""
        return node in self._placed_set

    def is_touched(self, flow_index: int) -> bool:
        """Whether some placed RAP lies on the flow's path (any detour)."""
        return self._touched[flow_index]

    def is_covered(self, flow_index: int) -> bool:
        """Whether some placed RAP attracts a positive fraction (Def. 2)."""
        return self._contribution[flow_index] > 0.0

    def best_detour(self, flow_index: int) -> float:
        """Current minimum detour for one flow (inf when untouched)."""
        return self._best[flow_index]

    def gain(self, node: NodeId) -> float:
        """Total marginal gain of placing a RAP at ``node`` now."""
        if node in self._placed_set:
            return 0.0
        static = self._static
        row = static.row_of.get(node)
        if row is None:
            return 0.0
        scalars = static.scalars()
        flow_of = scalars.flow_index
        detour = scalars.detour
        value = scalars.value
        best = self._best
        contribution = self._contribution
        total = 0.0
        for j in range(scalars.indptr[row], scalars.indptr[row + 1]):
            flow_index = flow_of[j]
            if detour[j] < best[flow_index]:
                delta = value[j] - contribution[flow_index]
                if delta > 0.0:
                    total += delta
        return total

    def gain_split(self, node: NodeId) -> Tuple[float, float]:
        """``(uncovered_gain, covered_gain)`` — Algorithm 2's two factors."""
        if node in self._placed_set:
            return 0.0, 0.0
        static = self._static
        row = static.row_of.get(node)
        if row is None:
            return 0.0, 0.0
        scalars = static.scalars()
        flow_of = scalars.flow_index
        detour = scalars.detour
        value = scalars.value
        best = self._best
        contribution = self._contribution
        uncovered = 0.0
        covered = 0.0
        for j in range(scalars.indptr[row], scalars.indptr[row + 1]):
            flow_index = flow_of[j]
            if detour[j] >= best[flow_index]:
                continue
            # Lowering the best detour never lowers the contribution (the
            # utility is non-increasing), so delta >= 0 up to float noise.
            delta = value[j] - contribution[flow_index]
            if delta < 0.0:
                delta = 0.0
            if contribution[flow_index] > 0.0:
                covered += delta
            else:
                uncovered += delta
        return uncovered, covered

    def covers_new_flows(self, node: NodeId) -> bool:
        """Whether ``node`` touches at least one currently untouched flow."""
        static = self._static
        row = static.row_of.get(node)
        if row is None:
            return False
        scalars = static.scalars()
        flow_of = scalars.flow_index
        touched = self._touched
        for j in range(scalars.indptr[row], scalars.indptr[row + 1]):
            if not touched[flow_of[j]]:
                return True
        return False

    # ------------------------------------------------------------------
    # batched queries (the vectorized scan path)
    # ------------------------------------------------------------------
    def _sync_np(self) -> None:
        """Refresh the per-flow array twins after scalar mutations."""
        if self._np_dirty:
            self._best_np = np.asarray(self._best, dtype=float)
            self._contribution_np = np.asarray(self._contribution, dtype=float)
            self._np_dirty = False

    def _aligned(
        self, totals: "np.ndarray", nodes: Optional[Sequence[NodeId]]
    ) -> "np.ndarray":
        if nodes is None:
            return totals
        alignment = self._static.alignment(nodes)
        return totals[alignment.rows_clipped] * alignment.valid

    def gains(self, nodes: Optional[Sequence[NodeId]] = None) -> "np.ndarray":
        """Marginal gains for many candidates in one segment reduction.

        With ``nodes=None`` the result is aligned with ``packed().nodes``;
        otherwise with the given sequence (0.0 for intersections covering
        no flow).  Placed sites report 0.0, matching :meth:`gain`.
        """
        packed = self._static.packed
        if packed.incidence_count == 0:
            return np.zeros(len(nodes) if nodes is not None else 0)
        self._sync_np()
        flow_index = packed.flow_index
        delta = self._static.entry_value - self._contribution_np[flow_index]
        improving = packed.detour < self._best_np[flow_index]
        weights = np.where(improving & (delta > 0.0), delta, 0.0)
        totals = np.bincount(
            packed.entry_row, weights=weights, minlength=packed.row_count
        )
        return self._aligned(totals, nodes)

    def gain_splits(
        self, nodes: Optional[Sequence[NodeId]] = None
    ) -> Tuple["np.ndarray", "np.ndarray"]:
        """Batched :meth:`gain_split`: ``(uncovered, covered)`` arrays."""
        packed = self._static.packed
        if packed.incidence_count == 0:
            empty = np.zeros(len(nodes) if nodes is not None else 0)
            return empty, empty.copy()
        self._sync_np()
        flow_index = packed.flow_index
        contribution = self._contribution_np[flow_index]
        delta = self._static.entry_value - contribution
        improving = packed.detour < self._best_np[flow_index]
        weights = np.where(improving & (delta > 0.0), delta, 0.0)
        covered_weights = np.where(contribution > 0.0, weights, 0.0)
        row_count = packed.row_count
        covered_totals = np.bincount(
            packed.entry_row, weights=covered_weights, minlength=row_count
        )
        uncovered_totals = np.bincount(
            packed.entry_row,
            weights=weights - covered_weights,
            minlength=row_count,
        )
        return (
            self._aligned(uncovered_totals, nodes),
            self._aligned(covered_totals, nodes),
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def place(self, node: NodeId) -> float:
        """Commit a RAP at ``node``; returns the realized gain."""
        if node in self._placed_set:
            raise InvalidScenarioError(f"RAP already placed at {node!r}")
        realized = 0.0
        static = self._static
        row = static.row_of.get(node)
        if row is not None:
            scalars = static.scalars()
            flow_of = scalars.flow_index
            detour = scalars.detour
            position = scalars.position
            value = scalars.value
            best = self._best
            contribution = self._contribution
            touched = self._touched
            serving = self._serving
            serving_pos = self._serving_pos
            for j in range(scalars.indptr[row], scalars.indptr[row + 1]):
                flow_index = flow_of[j]
                touched[flow_index] = True
                entry_detour = detour[j]
                if entry_detour < best[flow_index]:
                    fresh = value[j]
                    realized += fresh - contribution[flow_index]
                    best[flow_index] = entry_detour
                    contribution[flow_index] = fresh
                    serving[flow_index] = node
                    serving_pos[flow_index] = position[j]
                elif (
                    entry_detour == best[flow_index]
                    and position[j] < serving_pos[flow_index]
                ):
                    # Theorem 1 tie-break: equal detour, earlier in travel
                    # order — the serving RAP changes, the value does not.
                    serving[flow_index] = node
                    serving_pos[flow_index] = position[j]
            self._np_dirty = True
        self._placed.append(node)
        self._placed_set.add(node)
        self._attracted += realized
        return realized

    def finish(self, algorithm: str = "") -> Placement:
        """Full :class:`Placement` from the evaluator's cached state.

        Per-flow outcomes come straight from the cached best-detour /
        serving-RAP state — no re-evaluation pass.  The result is
        bit-identical to ``evaluate_placement(scenario, placed)``.
        """
        self._sync_np()
        packed = self._static.packed
        probabilities = self._utility.probability_array(
            self._best_np, packed.attractiveness
        )
        customers_array = probabilities * packed.volume
        outcomes: List[FlowOutcome] = []
        total = 0.0
        for index, serving in enumerate(self._serving):
            if serving is not None:
                probability = float(probabilities[index])
                customers = float(customers_array[index])
            else:
                probability = 0.0
                customers = 0.0
            total += customers
            outcomes.append(
                FlowOutcome(
                    detour=self._best[index],
                    probability=probability,
                    customers=customers,
                    serving_rap=serving,
                )
            )
        return Placement(
            raps=tuple(self._placed),
            attracted=total,
            outcomes=tuple(outcomes),
            algorithm=algorithm,
        )

    # ------------------------------------------------------------------
    # CELF support
    # ------------------------------------------------------------------
    def celf_queue(self, sites: Sequence[NodeId]) -> "CelfQueue":
        """A :class:`CelfQueue` seeded with this evaluator's current gains.

        At the empty state (no RAPs placed) the initial gains depend only
        on the scenario, so the seed heap is precompiled once per
        (scenario, candidate tuple) and merely copied here; after
        placements the seed falls back to one batched scan.  The
        empty-state seed is also valid for Algorithm 1's uncovered-flow
        gain: with nothing covered yet, every gain is uncovered gain.
        """
        if not self._placed:
            alignment = self._static.alignment(sites)
            return CelfQueue.seeded(list(alignment.heap), len(sites))
        return CelfQueue(sites, self.gains(sites).tolist())


Evaluator = Union["IncrementalEvaluator", ArrayEvaluator]


def make_evaluator(
    scenario: "Scenario", backend: Optional[str] = None
) -> Evaluator:
    """Instantiate the evaluator for the resolved backend."""
    if resolve_backend(backend, scenario) == "numpy":
        return ArrayEvaluator(scenario)
    from .evaluation import IncrementalEvaluator

    return IncrementalEvaluator(scenario)


class CelfQueue:
    """Max-heap of stale marginal-gain upper bounds (CELF lazy scan).

    Valid whenever the gain function is non-increasing as RAPs are placed
    — true for the total marginal gain (monotone submodular objective)
    and for Algorithm 1's uncovered-flow gain (placing RAPs only removes
    flows from the uncovered pool and shrinks best detours).  It is *not*
    true for Algorithm 2's covered-gain factor alone, which is why the
    composite greedy's array backend uses batched full scans instead.

    On pop, a stale entry (computed in an earlier round) is recomputed
    and pushed back; the first entry computed in the current round is the
    true argmax.  Ties break by candidate-site order, matching the
    exhaustive scans, so lazy and exhaustive selection are identical.

    The queue keeps its own lightweight tallies (plain int attributes, so
    the hot loop never calls into :mod:`repro.obs`): ``evaluations``
    (gain recomputes, initial scan included), ``heap_pops``,
    ``lazy_refreshes`` (stale entries recomputed and pushed back), and
    ``lazy_skips`` (candidates *not* rescanned in a round — the work an
    exhaustive scan would have done).  Algorithms flush these into the
    active observability context once per ``select``.
    """

    def __init__(
        self, sites: Sequence[NodeId], initial_gains: Sequence[float]
    ) -> None:
        #: Gain evaluations charged so far (initial scan counts once per site).
        self.evaluations = len(sites)
        self.heap_pops = 0
        self.lazy_refreshes = 0
        self.lazy_skips = 0
        self._heap: List[Tuple[float, int, NodeId, int]] = []
        for order, (site, gain) in enumerate(zip(sites, initial_gains)):
            if gain > 0:
                self._heap.append((-float(gain), order, site, 0))
        heapq.heapify(self._heap)

    @classmethod
    def seeded(
        cls,
        heap: List[Tuple[float, int, NodeId, int]],
        evaluations: int,
    ) -> "CelfQueue":
        """Adopt an already-heapified entry list (see ``celf_queue``)."""
        queue = cls.__new__(cls)
        queue.evaluations = evaluations
        queue.heap_pops = 0
        queue.lazy_refreshes = 0
        queue.lazy_skips = 0
        queue._heap = heap
        return queue

    def __len__(self) -> int:
        return len(self._heap)

    def pop_best(
        self, gain_of: Callable[[NodeId], float], round_number: int
    ) -> Optional[Tuple[NodeId, float]]:
        """Pop the true argmax for this round (None when no positive gain)."""
        start_size = len(self._heap)
        refreshed = 0
        while self._heap:
            neg_gain, order, site, computed_round = heapq.heappop(self._heap)
            self.heap_pops += 1
            if computed_round != round_number:
                refreshed += 1
                gain = gain_of(site)
                self.evaluations += 1
                if gain > 0:
                    heapq.heappush(
                        self._heap, (-gain, order, site, round_number)
                    )
                continue
            self.lazy_refreshes += refreshed
            skipped = start_size - refreshed - 1
            if skipped > 0:
                self.lazy_skips += skipped
            if -neg_gain <= 0:
                return None
            return site, -neg_gain
        self.lazy_refreshes += refreshed
        return None


def flush_celf_counters(queue: "CelfQueue", iterations: int) -> None:
    """Fold one lazy scan's tallies into the active observability context.

    Called by the greedy variants once per ``select`` — the CELF hot loop
    itself only bumps plain ints on the queue, so instrumentation costs
    nothing there and nothing at all when no context is active.
    """
    if obs.active() is None:
        return
    obs.count_many(
        {
            "algorithm.iterations": iterations,
            "gain.evaluations": queue.evaluations,
            "celf.heap_pops": queue.heap_pops,
            "celf.lazy_refreshes": queue.lazy_refreshes,
            "celf.lazy_skips": queue.lazy_skips,
        }
    )


def first_unplaced(
    sites: Sequence[NodeId], evaluator: Evaluator
) -> Optional[NodeId]:
    """First candidate without a RAP — the saturated-fallback site."""
    for site in sites:
        if not evaluator.is_placed(site):
            return site
    return None


def evaluate_placement_many(
    scenario: "Scenario",
    placements: Sequence[Sequence[NodeId]],
    backend: Optional[str] = None,
) -> List[float]:
    """Attracted-customer totals for many placements over one packed index.

    The batch consumers (Monte-Carlo failure simulation, the experiment
    sweep runner) score hundreds of site-sets against the same scenario;
    this amortizes the packing and reduces each evaluation to one
    min-reduction plus one utility kernel over the flow vectors, instead
    of re-walking every flow path per placement.
    """
    obs.count("kernel.batch_evaluations", len(placements))
    if resolve_backend(backend, scenario) == "python":
        from .evaluation import evaluate_placement

        return [
            evaluate_placement(scenario, list(sites)).attracted
            for sites in placements
        ]
    packed = scenario.coverage.packed()
    totals: List[float] = []
    for sites in placements:
        site_list = list(sites)
        if len(set(site_list)) != len(site_list):
            raise InvalidScenarioError(
                f"duplicate RAP sites in {site_list!r}"
            )
        best = np.full(packed.flow_count, INFINITY)
        for site in site_list:
            if site not in scenario.network:
                raise InvalidScenarioError(
                    f"RAP site {site!r} is not an intersection"
                )
            row = packed.row_of.get(site)
            if row is None:
                continue
            window = packed.row_slice(row)
            flows = packed.flow_index[window]
            best[flows] = np.minimum(best[flows], packed.detour[window])
        probabilities = scenario.utility.probability_array(
            best, packed.attractiveness
        )
        totals.append(float((probabilities * packed.volume).sum()))
    return totals


def affected_placements(
    packed: PackedCoverage,
    placements: Sequence[Sequence[NodeId]],
    changed_flows: Sequence[int],
) -> List[bool]:
    """Which placements cover at least one of the changed flows.

    A placement's attracted total depends on a flow's volume only when
    some placed site covers that flow with finite detour (an uncovered
    flow contributes exactly ``0.0`` customers at any volume), so a
    placement touching none of ``changed_flows`` scores bit-identically
    before and after the volume patch.
    """
    changed = np.asarray(sorted({int(f) for f in changed_flows}), dtype=np.int64)
    flags: List[bool] = []
    for sites in placements:
        hit = False
        if len(changed):
            for site in sites:
                row = packed.row_of.get(site)
                if row is None:
                    continue
                window = packed.row_slice(row)
                if np.isin(packed.flow_index[window], changed).any():
                    hit = True
                    break
        flags.append(hit)
    return flags


def reevaluate_affected(
    scenario: "Scenario",
    placements: Sequence[Sequence[NodeId]],
    prior_totals: Sequence[float],
    changed_flows: Sequence[int],
    backend: Optional[str] = None,
) -> List[float]:
    """Placement totals after a volume patch, recomputing only the affected.

    ``scenario`` is the *patched* scenario; ``prior_totals`` are the
    totals scored against the pre-patch scenario (same placements, same
    order).  Placements covering none of ``changed_flows`` keep their
    prior total verbatim — provably bit-identical to recomputation —
    and the rest go through one :func:`evaluate_placement_many` batch on
    the requested backend.
    """
    if len(prior_totals) != len(placements):
        raise InvalidScenarioError(
            f"got {len(prior_totals)} prior totals for "
            f"{len(placements)} placements"
        )
    packed = scenario.coverage.packed()
    flags = affected_placements(packed, placements, changed_flows)
    affected = [list(sites) for sites, hit in zip(placements, flags) if hit]
    recomputed = (
        evaluate_placement_many(scenario, affected, backend)
        if affected
        else []
    )
    fresh = iter(recomputed)
    totals = [
        next(fresh) if hit else float(prior)
        for prior, hit in zip(prior_totals, flags)
    ]
    if obs.active() is not None:
        obs.count_many(
            {
                "kernel.delta_reevaluations": len(affected),
                "kernel.delta_reeval_skips": len(placements) - len(affected),
            }
        )
    return totals


__all__ = [
    "ArrayEvaluator",
    "BACKENDS",
    "BACKEND_ENV",
    "CelfQueue",
    "DEFAULT_BACKEND",
    "Evaluator",
    "PackedCoverage",
    "affected_placements",
    "evaluate_placement_many",
    "first_unplaced",
    "flush_celf_counters",
    "make_evaluator",
    "reevaluate_affected",
    "resolve_backend",
    "warm_kernel",
]
