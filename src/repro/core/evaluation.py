"""Placement evaluation — exact and incremental.

Two entry points:

* :func:`evaluate_placement` — score a finished placement, returning a
  :class:`~repro.core.placement.Placement` with per-flow outcomes.  Ties
  in detour distance are resolved to the RAP encountered first in travel
  order, matching the paper's Theorem 1 semantics.
* :class:`IncrementalEvaluator` — the workhorse of the greedy algorithms.
  It maintains, per flow, the best (minimum) detour among RAPs placed so
  far and answers marginal-gain queries in O(#flows through the
  candidate).  It also splits gains into the paper's two greedy factors:
  gain from *uncovered* flows (candidate intersection i of Algorithm 2)
  and gain from improving *covered* flows (candidate intersection ii).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import sys

from ..errors import InvalidScenarioError
from ..graphs import INFINITY, NodeId
from .placement import FlowOutcome, Placement
from .scenario import Scenario

#: Sentinel path position for flows no placed RAP serves yet.
_NO_POSITION = sys.maxsize


def evaluate_placement(
    scenario: Scenario,
    raps: Sequence[NodeId],
    algorithm: str = "",
) -> Placement:
    """Score ``raps`` on ``scenario`` (general fixed-path semantics).

    Duplicate sites are rejected; sites may be any intersection, not just
    ``scenario.candidate_sites`` (so optimality baselines can roam).
    """
    # Indirection so repro.devtools.sanitize can observe every call,
    # however the caller imported this function.
    return _evaluate_placement_impl(scenario, raps, algorithm)


def _evaluate_placement(
    scenario: Scenario,
    raps: Sequence[NodeId],
    algorithm: str = "",
) -> Placement:
    rap_list = list(raps)
    if len(set(rap_list)) != len(rap_list):
        raise InvalidScenarioError(f"duplicate RAP sites in {rap_list!r}")
    for rap in rap_list:
        if rap not in scenario.network:
            raise InvalidScenarioError(f"RAP site {rap!r} is not an intersection")
    rap_set: Set[NodeId] = set(rap_list)
    utility = scenario.utility
    calculator = scenario.detour_calculator

    outcomes: List[FlowOutcome] = []
    total = 0.0
    for flow in scenario.flows:
        best_detour = INFINITY
        serving: Optional[NodeId] = None
        # Travel order + strict improvement implements Theorem 1's
        # tie-breaking: the first RAP attaining the minimum detour serves.
        for node, detour in calculator.detours_along(flow):
            if node in rap_set and detour < best_detour:
                best_detour = detour
                serving = node
        probability = (
            utility.probability(best_detour, flow.attractiveness)
            if serving is not None
            else 0.0
        )
        customers = probability * flow.volume
        total += customers
        outcomes.append(
            FlowOutcome(
                detour=best_detour,
                probability=probability,
                customers=customers,
                serving_rap=serving,
            )
        )
    return Placement(
        raps=tuple(rap_list),
        attracted=total,
        outcomes=tuple(outcomes),
        algorithm=algorithm,
    )


#: Hook point: the sanitizer replaces this to wrap every evaluation.
_evaluate_placement_impl = _evaluate_placement


class IncrementalEvaluator:
    """Mutable evaluation state for greedy placement construction.

    The evaluator caches, per flow, ``f(best detour) * volume`` (the
    current contribution).  ``gain(v)`` sums, over flows passing ``v``,
    the improvement a RAP at ``v`` would bring; :meth:`place` commits one.
    All queries use the scenario's :class:`CoverageIndex`, so each costs
    O(#incidences of v).
    """

    def __init__(self, scenario: Scenario) -> None:
        self._scenario = scenario
        self._coverage = scenario.coverage
        self._utility = scenario.utility
        flows = scenario.flows
        self._best_detour: List[float] = [INFINITY] * len(flows)
        self._contribution: List[float] = [0.0] * len(flows)
        self._touched: List[bool] = [False] * len(flows)
        # Serving RAP per flow under Theorem 1 tie-breaking (minimum
        # detour, then earliest path position); lets finish() build the
        # Placement from cached state without a re-evaluation pass.
        self._serving: List[Optional[NodeId]] = [None] * len(flows)
        self._serving_pos: List[int] = [_NO_POSITION] * len(flows)
        self._placed: List[NodeId] = []
        self._placed_set: Set[NodeId] = set()
        self._attracted = 0.0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def attracted(self) -> float:
        """Customers attracted by the RAPs placed so far."""
        return self._attracted

    @property
    def placed(self) -> Tuple[NodeId, ...]:
        """RAPs committed so far, in placement order."""
        return tuple(self._placed)

    def is_placed(self, node: NodeId) -> bool:
        """Whether a RAP is already committed at ``node``."""
        return node in self._placed_set

    def is_touched(self, flow_index: int) -> bool:
        """Whether some placed RAP lies on the flow's path (any detour)."""
        return self._touched[flow_index]

    def is_covered(self, flow_index: int) -> bool:
        """Whether the flow is *covered* in the paper's sense (Def. 2):
        some placed RAP attracts a positive fraction of its drivers.

        Under the threshold utility this is exactly "a RAP includes the
        flow" (detour <= D); under decreasing utilities it means the best
        detour is inside the threshold.
        """
        return self._contribution[flow_index] > 0.0

    def best_detour(self, flow_index: int) -> float:
        """Current minimum detour for one flow (inf when untouched)."""
        return self._best_detour[flow_index]

    def _entry_gain(self, flow_index: int, detour: float) -> float:
        flow = self._scenario.flows[flow_index]
        new_contribution = (
            self._utility.probability(detour, flow.attractiveness) * flow.volume
        )
        return new_contribution - self._contribution[flow_index]

    def gain(self, node: NodeId) -> float:
        """Total marginal gain of placing a RAP at ``node`` now."""
        if node in self._placed_set:
            return 0.0
        total = 0.0
        for entry in self._coverage.covering(node):
            if entry.detour < self._best_detour[entry.flow_index]:
                delta = self._entry_gain(entry.flow_index, entry.detour)
                if delta > 0:
                    total += delta
        return total

    def gain_split(self, node: NodeId) -> Tuple[float, float]:
        """``(uncovered_gain, covered_gain)`` — Algorithm 2's two factors.

        ``uncovered_gain`` counts flows not yet covered (no positive
        contribution); ``covered_gain`` counts flows already covered that
        would switch to ``node`` for a smaller detour.  The two always sum
        to :meth:`gain`.
        """
        if node in self._placed_set:
            return 0.0, 0.0
        uncovered = 0.0
        covered = 0.0
        for entry in self._coverage.covering(node):
            if entry.detour >= self._best_detour[entry.flow_index]:
                continue
            # Lowering the best detour never lowers the contribution (the
            # utility is non-increasing), so delta >= 0 up to float noise.
            delta = max(0.0, self._entry_gain(entry.flow_index, entry.detour))
            if self._contribution[entry.flow_index] > 0.0:
                covered += delta
            else:
                uncovered += delta
        return uncovered, covered

    def covers_new_flows(self, node: NodeId) -> bool:
        """Whether ``node`` touches at least one currently untouched flow."""
        return any(
            not self._touched[entry.flow_index]
            for entry in self._coverage.covering(node)
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def place(self, node: NodeId) -> float:
        """Commit a RAP at ``node``; returns the realized gain."""
        if node in self._placed_set:
            raise InvalidScenarioError(f"RAP already placed at {node!r}")
        realized = 0.0
        for entry in self._coverage.covering(node):
            index = entry.flow_index
            self._touched[index] = True
            if entry.detour < self._best_detour[index]:
                delta = self._entry_gain(index, entry.detour)
                self._best_detour[index] = entry.detour
                self._contribution[index] += delta
                self._serving[index] = node
                self._serving_pos[index] = entry.position
                realized += delta
            elif (
                entry.detour == self._best_detour[index]
                and entry.position < self._serving_pos[index]
            ):
                # Theorem 1 tie-break: equal detour, earlier in travel
                # order — the serving RAP changes, the value does not.
                self._serving[index] = node
                self._serving_pos[index] = entry.position
        self._placed.append(node)
        self._placed_set.add(node)
        self._attracted += realized
        return realized

    def finish(self, algorithm: str = "") -> Placement:
        """Produce the full :class:`Placement` for the committed RAPs.

        Built from the evaluator's own cached per-flow state (best
        detour + serving RAP) — identical output to running
        :func:`evaluate_placement` on ``placed``, without re-walking any
        flow path.
        """
        outcomes: List[FlowOutcome] = []
        total = 0.0
        for index, flow in enumerate(self._scenario.flows):
            serving = self._serving[index]
            probability = (
                self._utility.probability(
                    self._best_detour[index], flow.attractiveness
                )
                if serving is not None
                else 0.0
            )
            customers = probability * flow.volume
            total += customers
            outcomes.append(
                FlowOutcome(
                    detour=self._best_detour[index],
                    probability=probability,
                    customers=customers,
                    serving_rap=serving,
                )
            )
        return Placement(
            raps=tuple(self._placed),
            attracted=total,
            outcomes=tuple(outcomes),
            algorithm=algorithm,
        )


def attracted_customers(scenario: Scenario, raps: Iterable[NodeId]) -> float:
    """Shortcut: total attracted customers for ``raps`` on ``scenario``."""
    return evaluate_placement(scenario, list(raps)).attracted
