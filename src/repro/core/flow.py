"""Traffic flows — the demand side of the placement problem.

A :class:`TrafficFlow` is the paper's ``T[i,j]``: a daily volume of
potential customers travelling a fixed path from intersection ``i`` to
intersection ``j``.  The path is normally a shortest path (the paper's
assumption) but the model accepts any simple path, e.g. one recovered by
map matching; detour distances always use true shortest-path distances to
and from the shop regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import InvalidFlowError
from ..graphs import NodeId, RoadNetwork, shortest_path
from .utility import PAPER_ALPHA


@dataclass(frozen=True)
class TrafficFlow:
    """A daily traffic flow from ``origin`` to ``destination``.

    Parameters
    ----------
    path:
        The node sequence driven every day; must start at ``origin``
        and end at ``destination``.
    volume:
        Expected number of potential customers per day on this flow
        (vehicles x occupants, for bus traces buses x passengers).
    attractiveness:
        The paper's ``alpha(T[i,j])`` — probability that a driver with zero
        detour distance goes shopping.  Defaults to the paper's 0.001.
    label:
        Optional human-readable identifier (e.g. a bus route id).
    """

    path: Tuple[NodeId, ...]
    volume: float
    attractiveness: float = PAPER_ALPHA
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise InvalidFlowError(
                f"flow path needs at least two intersections, got {self.path!r}"
            )
        if len(set(self.path)) != len(self.path):
            raise InvalidFlowError(
                f"flow path revisits an intersection: {self.path!r}"
            )
        if not (self.volume > 0):
            raise InvalidFlowError(f"flow volume must be positive, got {self.volume}")
        if not (0 <= self.attractiveness <= 1):
            raise InvalidFlowError(
                f"attractiveness must be in [0, 1], got {self.attractiveness}"
            )
        object.__setattr__(self, "path", tuple(self.path))

    @property
    def origin(self) -> NodeId:
        """The flow's starting intersection (paper's ``i``)."""
        return self.path[0]

    @property
    def destination(self) -> NodeId:
        """The flow's final intersection (paper's ``j``)."""
        return self.path[-1]

    def passes(self, node: NodeId) -> bool:
        """Whether the flow's fixed path visits ``node``."""
        return node in self.path

    def validate_on(self, network: RoadNetwork) -> None:
        """Check every hop of the path exists in ``network``."""
        if not network.is_path(self.path):
            raise InvalidFlowError(
                f"flow {self.describe()} path is not drivable on the network"
            )

    def describe(self) -> str:
        """Short human-readable identification for messages and reports."""
        name = self.label or f"{self.origin!r}->{self.destination!r}"
        return f"T[{name}] (volume={self.volume:g})"

    def __repr__(self) -> str:
        return (
            f"TrafficFlow({self.origin!r}->{self.destination!r}, "
            f"volume={self.volume:g}, hops={len(self.path)})"
        )


def flow_between(
    network: RoadNetwork,
    origin: NodeId,
    destination: NodeId,
    volume: float,
    attractiveness: float = PAPER_ALPHA,
    label: Optional[str] = None,
) -> TrafficFlow:
    """Build a flow along a shortest path (the paper's default).

    Raises :class:`repro.errors.NoPathError` when ``destination`` is
    unreachable.
    """
    path = shortest_path(network, origin, destination)
    return TrafficFlow(
        path=tuple(path),
        volume=volume,
        attractiveness=attractiveness,
        label=label,
    )


def total_volume(flows: Sequence[TrafficFlow]) -> float:
    """Sum of flow volumes — the ceiling on attracted customers / alpha."""
    return sum(flow.volume for flow in flows)
