"""rapflow — roadside advertisement dissemination in vehicular CPS.

A faithful, production-quality reproduction of

    Huanyang Zheng and Jie Wu, "Optimizing Roadside Advertisement
    Dissemination in Vehicular Cyber-Physical Systems", IEEE ICDCS 2015.

Quick start::

    from repro import (
        Scenario, LinearUtility, CompositeGreedy, flow_between,
        manhattan_grid,
    )

    network = manhattan_grid(9, 9, 500.0)
    flows = [flow_between(network, (0, 4), (8, 4), volume=1200)]
    scenario = Scenario(network, flows, shop=(4, 4),
                        utility=LinearUtility(4_000.0))
    placement = CompositeGreedy().place(scenario, k=3)
    print(placement.summary())

Subpackages
-----------
``repro.graphs``       road networks, shortest paths, city generators
``repro.core``         flows, utilities, detours, scenarios, evaluation
``repro.algorithms``   Algorithms 1-2, baselines, greedy variants
``repro.manhattan``    the Manhattan-grid special case (Algorithms 3-4)
``repro.traces``       synthetic bus traces, map matching, flow extraction
``repro.experiments``  the paper's evaluation figures as runnable specs
``repro.extensions``   multi-shop and budgeted placement (future work)
"""

from . import errors
from .algorithms import (
    BranchAndBoundOptimal,
    CompositeGreedy,
    ExhaustiveOptimal,
    GreedyCoverage,
    LazyGreedy,
    MarginalGainGreedy,
    MaxCardinality,
    MaxCustomers,
    MaxVehicles,
    PartialEnumerationGreedy,
    PlacementAlgorithm,
    RandomPlacement,
    SwapLocalSearch,
    algorithm_by_name,
    registered_algorithms,
)
from .core import (
    PAPER_ALPHA,
    CustomUtility,
    DetourCalculator,
    FlowOutcome,
    IncrementalEvaluator,
    LinearUtility,
    Placement,
    Scenario,
    SqrtUtility,
    ThresholdUtility,
    TrafficFlow,
    UtilityFunction,
    attracted_customers,
    evaluate_placement,
    flow_between,
    total_volume,
    utility_by_name,
)
from .graphs import (
    BoundingBox,
    NodeId,
    Point,
    RoadNetwork,
    ShortestPathDag,
    dublin_like_city,
    manhattan_grid,
    seattle_like_city,
    shortest_path,
    shortest_path_length,
)
from .manhattan import (
    FlowClass,
    ManhattanEvaluator,
    ManhattanScenario,
    ModifiedTwoStagePlacement,
    TwoStagePlacement,
    evaluate_manhattan,
)

__version__ = "1.0.0"


def package_version() -> str:
    """The installed distribution's version, else the source fallback.

    Reads ``importlib.metadata`` so an installed wheel reports its real
    version; running straight from a source checkout (no dist metadata)
    falls back to the in-tree ``__version__``.
    """
    from importlib.metadata import PackageNotFoundError, version

    try:
        return version("repro")
    except PackageNotFoundError:
        return __version__


__all__ = [
    "BoundingBox",
    "BranchAndBoundOptimal",
    "CompositeGreedy",
    "CustomUtility",
    "DetourCalculator",
    "ExhaustiveOptimal",
    "FlowClass",
    "FlowOutcome",
    "GreedyCoverage",
    "IncrementalEvaluator",
    "LazyGreedy",
    "LinearUtility",
    "ManhattanEvaluator",
    "ManhattanScenario",
    "MarginalGainGreedy",
    "MaxCardinality",
    "MaxCustomers",
    "MaxVehicles",
    "ModifiedTwoStagePlacement",
    "NodeId",
    "PAPER_ALPHA",
    "PartialEnumerationGreedy",
    "Placement",
    "PlacementAlgorithm",
    "Point",
    "RandomPlacement",
    "RoadNetwork",
    "Scenario",
    "SwapLocalSearch",
    "ShortestPathDag",
    "SqrtUtility",
    "ThresholdUtility",
    "TrafficFlow",
    "TwoStagePlacement",
    "UtilityFunction",
    "algorithm_by_name",
    "attracted_customers",
    "dublin_like_city",
    "errors",
    "evaluate_manhattan",
    "evaluate_placement",
    "flow_between",
    "manhattan_grid",
    "package_version",
    "registered_algorithms",
    "seattle_like_city",
    "shortest_path",
    "shortest_path_length",
    "total_volume",
    "utility_by_name",
    "__version__",
]
