"""Connectivity validation and repair for road networks.

City generators and map matching both need the same guarantees: every
intersection can reach every other (strong connectivity), otherwise detour
distances to/from the shop are undefined for part of the map.  This module
provides an iterative Tarjan SCC decomposition plus helpers to check and
restore strong connectivity.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import DisconnectedGraphError
from .digraph import NodeId, RoadNetwork


def reachable_from(network: RoadNetwork, source: NodeId) -> Set[NodeId]:
    """Every node reachable from ``source`` (including itself)."""
    seen: Set[NodeId] = {source}
    stack: List[NodeId] = [source]
    while stack:
        node = stack.pop()
        for head, _ in network.successors(node):
            if head not in seen:
                seen.add(head)
                stack.append(head)
    return seen


def can_reach(network: RoadNetwork, target: NodeId) -> Set[NodeId]:
    """Every node that can reach ``target`` (including itself)."""
    seen: Set[NodeId] = {target}
    stack: List[NodeId] = [target]
    while stack:
        node = stack.pop()
        for tail, _ in network.predecessors(node):
            if tail not in seen:
                seen.add(tail)
                stack.append(tail)
    return seen


def strongly_connected_components(network: RoadNetwork) -> List[Set[NodeId]]:
    """Tarjan's SCC algorithm, iterative to dodge recursion limits.

    Components are returned largest-first.
    """
    index_of: Dict[NodeId, int] = {}
    lowlink: Dict[NodeId, int] = {}
    on_stack: Set[NodeId] = set()
    stack: List[NodeId] = []
    components: List[Set[NodeId]] = []
    counter = 0

    for root in network.nodes():
        if root in index_of:
            continue
        # Each work-stack frame is (node, iterator over successors).
        work = [(root, iter([h for h, _ in network.successors(root)]))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for head in successors:
                if head not in index_of:
                    index_of[head] = lowlink[head] = counter
                    counter += 1
                    stack.append(head)
                    on_stack.add(head)
                    work.append(
                        (head, iter([h for h, _ in network.successors(head)]))
                    )
                    advanced = True
                    break
                if head in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[head])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[NodeId] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    components.sort(key=len, reverse=True)
    return components


def is_strongly_connected(network: RoadNetwork) -> bool:
    """Whether every intersection can reach every other."""
    if network.node_count == 0:
        return True
    first = next(iter(network.nodes()))
    if len(reachable_from(network, first)) != network.node_count:
        return False
    return len(can_reach(network, first)) == network.node_count


def require_strongly_connected(network: RoadNetwork) -> None:
    """Raise :class:`DisconnectedGraphError` unless strongly connected."""
    if not is_strongly_connected(network):
        components = strongly_connected_components(network)
        raise DisconnectedGraphError(
            f"network has {len(components)} strongly connected components; "
            f"largest covers {len(components[0])}/{network.node_count} nodes"
        )


def restrict_to_largest_scc(network: RoadNetwork) -> RoadNetwork:
    """A copy of ``network`` restricted to its largest SCC.

    Generators use this as a final repair step so that downstream code can
    always assume strong connectivity.
    """
    if network.node_count == 0:
        return network.copy()
    keep = strongly_connected_components(network)[0]
    restricted = RoadNetwork()
    for node in network.nodes():
        if node in keep:
            restricted.add_intersection(node, network.position(node))
    for tail, head, length in network.edges():
        if tail in keep and head in keep:
            restricted.add_road(tail, head, length)
    return restricted


def isolated_nodes(network: RoadNetwork) -> List[NodeId]:
    """Nodes with no incident edges at all."""
    return [
        node
        for node in network.nodes()
        if network.in_degree(node) == 0 and network.out_degree(node) == 0
    ]


def removable_without_disconnecting(
    network: RoadNetwork, tail: NodeId, head: NodeId
) -> bool:
    """Whether removing ``tail -> head`` keeps ``tail``..``head`` mutually
    reachable (hence preserves strong connectivity of a strongly connected
    network)."""
    length = network.edge_length(tail, head)
    network.remove_road(tail, head)
    try:
        still_reaches = head in reachable_from(network, tail)
    finally:
        network.add_road(tail, head, length)
    return still_reaches
