"""Shortest-path DAG queries.

The Manhattan-grid formulation (paper Section IV) relaxes the fixed-path
assumption: a flow from ``i`` to ``j`` may travel along *any* shortest
path, and will pick one that passes a RAP when such a path exists.  The
set of intersections reachable that way is exactly the set of nodes on the
*shortest-path DAG* of ``(i, j)``:

    ``v`` lies on some shortest ``i -> j`` path  iff
    ``dist(i, v) + dist(v, j) == dist(i, j)``.

:class:`ShortestPathDag` packages that membership test (plus path counting
and bounded enumeration used by tests and by the Manhattan evaluator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

from ..errors import NoPathError
from .digraph import NodeId, RoadNetwork
from .shortest_paths import INFINITY, dijkstra, distances_to_target

_REL_TOL = 1e-9


@dataclass(frozen=True)
class ShortestPathDag:
    """All shortest paths between one origin/destination pair.

    Build with :meth:`between`; reuse precomputed distance maps via the
    explicit constructor when evaluating many pairs against shared anchors
    (the Manhattan evaluator does this).
    """

    source: NodeId
    target: NodeId
    total_length: float
    from_source: Mapping[NodeId, float] = field(repr=False)
    to_target: Mapping[NodeId, float] = field(repr=False)

    @classmethod
    def between(
        cls, network: RoadNetwork, source: NodeId, target: NodeId
    ) -> "ShortestPathDag":
        """Build the DAG for one origin/destination pair (two Dijkstra runs)."""
        from_source, _ = dijkstra(network, source)
        if target not in from_source:
            raise NoPathError(source, target)
        to_target = distances_to_target(network, target).distances
        return cls(
            source=source,
            target=target,
            total_length=from_source[target],
            from_source=from_source,
            to_target=to_target,
        )

    def _tol(self) -> float:
        return _REL_TOL * max(1.0, self.total_length)

    def contains(self, node: NodeId) -> bool:
        """Whether ``node`` lies on at least one shortest path."""
        d_in = self.from_source.get(node, INFINITY)
        if d_in == INFINITY:
            return False
        d_out = self.to_target.get(node, INFINITY)
        if d_out == INFINITY:
            return False
        return d_in + d_out <= self.total_length + self._tol()

    def distance_from_source(self, node: NodeId) -> float:
        """``dist(source, node)`` (inf when unreachable)."""
        return self.from_source.get(node, INFINITY)

    def distance_to_target(self, node: NodeId) -> float:
        """``dist(node, target)`` (inf when it cannot reach the target)."""
        return self.to_target.get(node, INFINITY)

    def nodes(self) -> List[NodeId]:
        """Every node on some shortest path, ordered by distance from source."""
        members = [node for node in self.from_source if self.contains(node)]
        members.sort(key=lambda n: (self.from_source[n],))
        return members

    def tight_successors(
        self, network: RoadNetwork, node: NodeId
    ) -> Iterator[NodeId]:
        """Successors of ``node`` along shortest-path (tight) edges."""
        tol = self._tol()
        d_in = self.from_source.get(node, INFINITY)
        if d_in == INFINITY:
            return
        for head, length in network.successors(node):
            d_out = self.to_target.get(head, INFINITY)
            if d_out == INFINITY:
                continue
            if d_in + length + d_out <= self.total_length + tol:
                yield head

    def count_paths(self, network: RoadNetwork) -> int:
        """Number of distinct shortest paths (exact; may be exponential-free
        thanks to DAG dynamic programming)."""
        counts: Dict[NodeId, int] = {}

        order = self.nodes()
        # Process in decreasing distance-from-source so successors are done
        # before their predecessors.
        for node in reversed(order):
            if node == self.target:
                counts[node] = 1
                continue
            counts[node] = sum(
                counts.get(head, 0)
                for head in self.tight_successors(network, node)
            )
        return counts.get(self.source, 0)

    def enumerate_paths(
        self, network: RoadNetwork, limit: Optional[int] = None
    ) -> List[List[NodeId]]:
        """Materialize shortest paths (at most ``limit`` if given).

        Intended for tests and small grids; the evaluator never enumerates.
        """
        paths: List[List[NodeId]] = []
        stack: List[List[NodeId]] = [[self.source]]
        while stack:
            prefix = stack.pop()
            tip = prefix[-1]
            if tip == self.target:
                paths.append(prefix)
                if limit is not None and len(paths) >= limit:
                    break
                continue
            for head in sorted(
                self.tight_successors(network, tip), key=repr, reverse=True
            ):
                stack.append(prefix + [head])
        return paths

    def path_through(
        self, network: RoadNetwork, waypoint: NodeId
    ) -> List[NodeId]:
        """A shortest ``source -> target`` path passing ``waypoint``.

        Raises :class:`NoPathError` when ``waypoint`` is not on the DAG.
        This realizes the paper's "the driver chooses the shortest path
        with a RAP on it" behaviour.
        """
        if not self.contains(waypoint):
            raise NoPathError(self.source, self.target)
        # Because `waypoint` lies on the DAG, dist(source, waypoint) +
        # dist(waypoint, target) == dist(source, target), so concatenating
        # any two shortest sub-paths yields a shortest full path.
        from .shortest_paths import shortest_path

        first = shortest_path(network, self.source, waypoint)
        second = shortest_path(network, waypoint, self.target)
        return first + second[1:]
