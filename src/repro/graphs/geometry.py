"""Planar geometry helpers used across the road-network substrate.

Road networks in this library are embedded in the plane: every intersection
carries an ``(x, y)`` position in feet (matching the paper's use of
square-feet city extents).  The helpers here are deliberately small and
dependency-free; they exist so that the rest of the code never open-codes
coordinate math.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A point in the plane, coordinates in feet."""

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 (taxicab) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle, used for spatial filtering of RAP sites.

    The box is closed: points on the boundary are contained.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BoundingBox":
        """Smallest box containing ``points`` (at least one required)."""
        points = list(points)
        if not points:
            raise ValueError("cannot build a bounding box from zero points")
        return cls(
            min(p.x for p in points),
            min(p.y for p in points),
            max(p.x for p in points),
            max(p.y for p in points),
        )

    @classmethod
    def square_around(cls, center: Point, side: float) -> "BoundingBox":
        """The axis-aligned square of side ``side`` centered at ``center``.

        This is the paper's ``D x D`` region around the shop in the
        Manhattan-grid formulation.
        """
        if side < 0:
            raise ValueError(f"side must be non-negative, got {side}")
        half = side / 2.0
        return cls(center.x - half, center.y - half, center.x + half, center.y + half)

    @property
    def width(self) -> float:
        """Horizontal extent."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        """The box's center point."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """Corners in (SW, SE, NE, NW) order."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )

    def contains(self, point: Point, tolerance: float = 0.0) -> bool:
        """Whether ``point`` lies inside the (closed) box.

        ``tolerance`` expands the box on every side; useful when snapping
        noisy GPS samples.
        """
        return (
            self.min_x - tolerance <= point.x <= self.max_x + tolerance
            and self.min_y - tolerance <= point.y <= self.max_y + tolerance
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """A copy grown by ``margin`` on every side."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )


def midpoint(a: Point, b: Point) -> Point:
    """The midpoint of segment ``a``–``b``.

    Algorithm 4 places corner RAPs "in the middle of that corner and the
    shop"; this is the primitive it uses.
    """
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """The point ``fraction`` of the way from ``a`` to ``b``.

    ``fraction`` is clamped to ``[0, 1]`` so callers iterating slightly past
    a segment end (float accumulation) stay on the segment.
    """
    t = min(1.0, max(0.0, fraction))
    return Point(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)


def polyline_length(points: Iterable[Point]) -> float:
    """Total Euclidean length of the polyline through ``points``."""
    total = 0.0
    previous = None
    for point in points:
        if previous is not None:
            total += previous.distance_to(point)
        previous = point
    return total
