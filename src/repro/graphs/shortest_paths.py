"""Shortest-path machinery for :class:`~repro.graphs.digraph.RoadNetwork`.

Everything the placement model needs reduces to Dijkstra runs:

* :func:`dijkstra` — one source, distances (and parents) to all nodes;
* :func:`distances_to_target` — reverse Dijkstra, distances from all nodes
  *to* one target (used for "distance to the shop" and "distance to the
  flow destination" fields);
* :func:`shortest_path` — a single reconstructed path;
* :func:`all_pairs_distances` — the paper's ``O(|V|^3)`` preprocessing,
  kept for small instances and for tests;
* :class:`DistanceField` — an immutable mapping wrapper tagging a Dijkstra
  result with its orientation.

Edge lengths are validated non-negative at insertion time, so Dijkstra's
invariants hold by construction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import NodeNotFoundError, NoPathError
from .digraph import NodeId, RoadNetwork

INFINITY = float("inf")


@dataclass(frozen=True)
class DistanceField:
    """Distances anchored at one node, in one direction.

    ``origin`` is the anchor node.  When ``toward_origin`` is False the
    field holds ``dist(origin, v)`` for every reachable ``v``; when True it
    holds ``dist(v, origin)``.  Unreachable nodes are absent; :meth:`get`
    returns ``inf`` for them, which composes cleanly with the utility
    functions (``f(inf) == 0``).
    """

    origin: NodeId
    toward_origin: bool
    distances: Mapping[NodeId, float] = field(repr=False)

    def get(self, node: NodeId) -> float:
        """Distance for ``node`` (inf when unreachable)."""
        return self.distances.get(node, INFINITY)

    def __getitem__(self, node: NodeId) -> float:
        return self.get(node)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.distances

    def reachable(self) -> Iterable[NodeId]:
        """Nodes with a finite distance."""
        return self.distances.keys()


def dijkstra(
    network: RoadNetwork,
    source: NodeId,
    *,
    with_parents: bool = False,
    cutoff: Optional[float] = None,
) -> Tuple[Dict[NodeId, float], Dict[NodeId, NodeId]]:
    """Single-source Dijkstra.

    Returns ``(distances, parents)``; ``parents`` is empty unless
    ``with_parents`` is set.  ``cutoff`` prunes the search once settled
    distances exceed it (the returned map still contains every node whose
    distance is ``<= cutoff``).
    """
    if source not in network:
        raise NodeNotFoundError(source)
    distances: Dict[NodeId, float] = {}
    parents: Dict[NodeId, NodeId] = {}
    heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in distances:
            continue
        if cutoff is not None and dist > cutoff:
            break
        distances[node] = dist
        for head, length in network.successors(node):
            if head in distances:
                continue
            candidate = dist + length
            if cutoff is not None and candidate > cutoff:
                continue
            counter += 1
            heapq.heappush(heap, (candidate, counter, head))
    if with_parents:
        parents = _exact_parents(network, distances, source)
    return distances, parents


def _exact_parents(
    network: RoadNetwork, distances: Dict[NodeId, float], source: NodeId
) -> Dict[NodeId, NodeId]:
    """Parents derived from the settled distance map.

    ``parent(v)`` is a predecessor ``u`` with ``dist(u) + len(u,v) ==
    dist(v)`` (tight edge).  Deterministic: the smallest-distance, then
    insertion-order-first predecessor wins.
    """
    parents: Dict[NodeId, NodeId] = {}
    for node, dist in distances.items():
        if node == source:
            continue
        for tail, length in network.predecessors(node):
            tail_dist = distances.get(tail)
            if tail_dist is None:
                continue
            if abs(tail_dist + length - dist) <= 1e-9 * max(1.0, dist):
                parents[node] = tail
                break
    return parents


def distances_from(network: RoadNetwork, source: NodeId) -> DistanceField:
    """``dist(source, v)`` for every reachable ``v``."""
    distances, _ = dijkstra(network, source)
    return DistanceField(origin=source, toward_origin=False, distances=distances)


def distances_to_target(network: RoadNetwork, target: NodeId) -> DistanceField:
    """``dist(v, target)`` for every ``v`` that can reach ``target``.

    Implemented as a forward Dijkstra over the reversed adjacency, without
    materialising a reversed copy of the network.
    """
    if target not in network:
        raise NodeNotFoundError(target)
    distances: Dict[NodeId, float] = {}
    heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, target)]
    counter = 0
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in distances:
            continue
        distances[node] = dist
        for tail, length in network.predecessors(node):
            if tail not in distances:
                counter += 1
                heapq.heappush(heap, (dist + length, counter, tail))
    return DistanceField(origin=target, toward_origin=True, distances=distances)


def shortest_path(
    network: RoadNetwork, source: NodeId, target: NodeId
) -> List[NodeId]:
    """One shortest path from ``source`` to ``target`` as a node list.

    Deterministic for a fixed network (ties broken by predecessor
    insertion order).  Raises :class:`NoPathError` when unreachable.
    """
    if target not in network:
        raise NodeNotFoundError(target)
    distances, parents = dijkstra(network, source, with_parents=True)
    if target not in distances:
        raise NoPathError(source, target)
    path = [target]
    while path[-1] != source:
        parent = parents.get(path[-1])
        if parent is None:
            # The tolerance check in _exact_parents found no tight
            # predecessor for this settled node; surface a taxonomy
            # error instead of a raw KeyError mid-reconstruction.
            raise NoPathError(
                source,
                target,
                detail=(
                    f"no tight predecessor recovered for settled node "
                    f"{path[-1]!r} during path reconstruction"
                ),
            )
        path.append(parent)
    path.reverse()
    return path


def shortest_path_length(
    network: RoadNetwork, source: NodeId, target: NodeId
) -> float:
    """Length of the shortest path from ``source`` to ``target``."""
    if target not in network:
        raise NodeNotFoundError(target)
    distances, _ = dijkstra(network, source)
    if target not in distances:
        raise NoPathError(source, target)
    return distances[target]


def all_pairs_distances(
    network: RoadNetwork,
) -> Dict[NodeId, Dict[NodeId, float]]:
    """All-pairs shortest distances (one Dijkstra per node).

    This mirrors the paper's ``O(|V|^3)`` preprocessing step.  The
    placement engine avoids it (see :mod:`repro.core.detour`), but small
    instances, tests, and the exhaustive optimal solver use it freely.
    """
    return {node: dijkstra(network, node)[0] for node in network.nodes()}


def is_shortest_path(
    network: RoadNetwork, path: List[NodeId], tolerance: float = 1e-9
) -> bool:
    """Whether ``path`` is a shortest path between its endpoints."""
    if len(path) < 2:
        return bool(path) and path[0] in network
    if not network.is_path(path):
        return False
    actual = network.path_length(path)
    best = shortest_path_length(network, path[0], path[-1])
    return actual <= best + tolerance * max(1.0, best)
