"""Road-network substrate: directed graphs, shortest paths, city generators.

This subpackage is self-contained (no dependency on the rest of the
library) and implements everything the placement model needs from graph
theory: a directed weighted road network embedded in the plane, Dijkstra
variants, shortest-path DAG queries, strongly-connected-component
validation, and synthetic city generators matching the paper's Dublin /
Seattle / Manhattan-grid settings.
"""

from .astar import astar, bidirectional_dijkstra
from .digraph import NodeId, RoadNetwork
from .geometry import BoundingBox, Point, interpolate, midpoint, polyline_length
from .generators import (
    GridNode,
    dublin_like_city,
    grid_center_node,
    manhattan_grid,
    ring_city,
    seattle_like_city,
)
from .io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from .metrics import (
    NetworkMetrics,
    circuity,
    network_metrics,
    orientation_entropy,
)
from .shortest_paths import (
    INFINITY,
    DistanceField,
    all_pairs_distances,
    dijkstra,
    distances_from,
    distances_to_target,
    is_shortest_path,
    shortest_path,
    shortest_path_length,
)
from .spdag import ShortestPathDag
from .validation import (
    is_strongly_connected,
    require_strongly_connected,
    restrict_to_largest_scc,
    strongly_connected_components,
)

__all__ = [
    "BoundingBox",
    "DistanceField",
    "GridNode",
    "INFINITY",
    "NetworkMetrics",
    "NodeId",
    "Point",
    "RoadNetwork",
    "circuity",
    "network_metrics",
    "orientation_entropy",
    "ShortestPathDag",
    "all_pairs_distances",
    "astar",
    "bidirectional_dijkstra",
    "dijkstra",
    "distances_from",
    "distances_to_target",
    "dublin_like_city",
    "grid_center_node",
    "interpolate",
    "is_shortest_path",
    "is_strongly_connected",
    "load_network",
    "manhattan_grid",
    "midpoint",
    "network_from_dict",
    "network_to_dict",
    "save_network",
    "polyline_length",
    "require_strongly_connected",
    "restrict_to_largest_scc",
    "ring_city",
    "seattle_like_city",
    "shortest_path",
    "shortest_path_length",
    "strongly_connected_components",
]
