"""Goal-directed shortest paths: A* and bidirectional Dijkstra.

The detour engine's bulk work is *field* computation (one-to-all), where
plain Dijkstra is optimal.  Point-to-point queries — map-matching gap
repair, `ShortestPathDag.path_through`, ad-hoc user queries — benefit
from goal direction instead:

* :func:`astar` — A* with the Euclidean heuristic.  Road-network edge
  lengths are at least the straight-line distance between endpoints
  (they default to it), so the heuristic is admissible and consistent
  and A* returns exact shortest paths while settling far fewer nodes.
* :func:`bidirectional_dijkstra` — meets in the middle; no geometry
  needed, useful when edge lengths are custom (e.g. travel times).

Both match Dijkstra's output exactly; the test suite checks this on
random networks, and a benchmark counts the settled-node savings.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..errors import NodeNotFoundError, NoPathError
from .digraph import NodeId, RoadNetwork

INFINITY = float("inf")


def astar(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
) -> Tuple[List[NodeId], float, int]:
    """A* shortest path; returns ``(path, length, settled_count)``.

    ``settled_count`` (nodes permanently labelled) is exposed so callers
    and benchmarks can observe the goal-direction savings.
    """
    if source not in network:
        raise NodeNotFoundError(source)
    if target not in network:
        raise NodeNotFoundError(target)
    target_position = network.position(target)

    def heuristic(node: NodeId) -> float:
        return network.position(node).distance_to(target_position)

    best_g: Dict[NodeId, float] = {source: 0.0}
    parents: Dict[NodeId, NodeId] = {}
    settled: set = set()
    counter = 0
    heap: List[Tuple[float, int, NodeId]] = [(heuristic(source), 0, source)]
    while heap:
        _, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            path = [target]
            while path[-1] != source:
                path.append(parents[path[-1]])
            path.reverse()
            return path, best_g[target], len(settled)
        g = best_g[node]
        for head, length in network.successors(node):
            if head in settled:
                continue
            candidate = g + length
            if candidate < best_g.get(head, INFINITY):
                best_g[head] = candidate
                parents[head] = node
                counter += 1
                heapq.heappush(
                    heap, (candidate + heuristic(head), counter, head)
                )
    raise NoPathError(source, target)


def bidirectional_dijkstra(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
) -> Tuple[List[NodeId], float, int]:
    """Bidirectional Dijkstra; returns ``(path, length, settled_count)``."""
    if source not in network:
        raise NodeNotFoundError(source)
    if target not in network:
        raise NodeNotFoundError(target)
    if source == target:
        return [source], 0.0, 1

    dist_f: Dict[NodeId, float] = {source: 0.0}
    dist_b: Dict[NodeId, float] = {target: 0.0}
    parent_f: Dict[NodeId, NodeId] = {}
    parent_b: Dict[NodeId, NodeId] = {}
    settled_f: set = set()
    settled_b: set = set()
    heap_f: List[Tuple[float, int, NodeId]] = [(0.0, 0, source)]
    heap_b: List[Tuple[float, int, NodeId]] = [(0.0, 0, target)]
    counter = 0
    best = INFINITY
    meeting: Optional[NodeId] = None

    def consider(node: NodeId) -> None:
        """Update the best meeting point from the stored labels, so
        ``best`` always equals the length of the reconstructable path."""
        nonlocal best, meeting
        total = dist_f.get(node, INFINITY) + dist_b.get(node, INFINITY)
        if total < best:
            best = total
            meeting = node

    def relax_forward() -> None:
        nonlocal counter
        dist, _, node = heapq.heappop(heap_f)
        if node in settled_f:
            return
        settled_f.add(node)
        consider(node)
        for head, length in network.successors(node):
            candidate = dist + length
            if candidate < dist_f.get(head, INFINITY):
                dist_f[head] = candidate
                parent_f[head] = node
                counter += 1
                heapq.heappush(heap_f, (candidate, counter, head))
            consider(head)

    def relax_backward() -> None:
        nonlocal counter
        dist, _, node = heapq.heappop(heap_b)
        if node in settled_b:
            return
        settled_b.add(node)
        consider(node)
        for tail, length in network.predecessors(node):
            candidate = dist + length
            if candidate < dist_b.get(tail, INFINITY):
                dist_b[tail] = candidate
                parent_b[tail] = node
                counter += 1
                heapq.heappush(heap_b, (candidate, counter, tail))
            consider(tail)

    while heap_f and heap_b:
        top_f = heap_f[0][0]
        top_b = heap_b[0][0]
        # Standard stopping criterion: fronts have met and crossed.
        if best <= top_f + top_b:
            break
        if top_f <= top_b:
            relax_forward()
        else:
            relax_backward()

    if meeting is None:
        raise NoPathError(source, target)

    forward_half = [meeting]
    while forward_half[-1] != source:
        forward_half.append(parent_f[forward_half[-1]])
    forward_half.reverse()
    backward_half: List[NodeId] = []
    node = meeting
    while node != target:
        node = parent_b[node]
        backward_half.append(node)
    path = forward_half + backward_half
    return path, best, len(settled_f) + len(settled_b)
