"""Road-network shape metrics.

Used to *quantify* the data-substitution argument (DESIGN.md): the
synthetic Dublin must actually look irregular and the synthetic Seattle
must actually look grid-like, by measurable criteria rather than by
construction intent:

* **circuity** — mean (network distance / straight-line distance) over
  sampled pairs; 1.0 on a dense mesh, ~1.27 for a perfect grid's L1
  vs L2 average, higher where streets wander or are missing;
* **orientation entropy** — street bearings bucketed into 8 bins;
  a perfect grid concentrates on 2 axes (low entropy), an organic plan
  spreads out (high entropy) — the standard measure in street-network
  morphology;
* **four-way share** — fraction of intersections with degree 4 (counting
  unique neighbours), the classic gridness indicator;
* plus degree statistics and one-way share.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Set

from .digraph import NodeId, RoadNetwork
from .shortest_paths import dijkstra

ORIENTATION_BINS = 8


@dataclass(frozen=True)
class NetworkMetrics:
    """Shape statistics for one road network."""

    node_count: int
    edge_count: int
    mean_degree: float
    four_way_share: float
    one_way_share: float
    circuity: float
    orientation_entropy: float
    """Entropy (bits) of street bearings over 8 bins, axis-folded;
    0 bits = one direction, max 3 bits = uniform."""


def _unique_neighbours(network: RoadNetwork, node: NodeId) -> Set[NodeId]:
    neighbours = {head for head, _ in network.successors(node)}
    neighbours.update(tail for tail, _ in network.predecessors(node))
    return neighbours


def orientation_entropy(network: RoadNetwork) -> float:
    """Entropy of (axis-folded) street bearings, in bits."""
    counts = [0] * ORIENTATION_BINS
    for tail, head, _ in network.edges():
        a = network.position(tail)
        b = network.position(head)
        angle = math.atan2(b.y - a.y, b.x - a.x) % math.pi  # fold 180°
        index = min(
            ORIENTATION_BINS - 1, int(angle / math.pi * ORIENTATION_BINS)
        )
        counts[index] += 1
    total = sum(counts)
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        if count:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy


def circuity(
    network: RoadNetwork,
    samples: int = 100,
    rng: Optional[random.Random] = None,
) -> float:
    """Mean network/straight-line distance ratio over sampled pairs.

    Unreachable pairs are skipped; returns ``nan`` if every sampled pair
    is unreachable or coincident.
    """
    rng = rng or random.Random(0)
    nodes = list(network.nodes())
    if len(nodes) < 2:
        return float("nan")
    ratios = []
    attempts = 0
    while len(ratios) < samples and attempts < samples * 10:
        attempts += 1
        a, b = rng.sample(nodes, 2)
        straight = network.euclidean_distance(a, b)
        if straight <= 0:
            continue
        distances, _ = dijkstra(network, a, cutoff=None)
        if b not in distances:
            continue
        ratios.append(distances[b] / straight)
    if not ratios:
        return float("nan")
    return sum(ratios) / len(ratios)


def network_metrics(
    network: RoadNetwork,
    circuity_samples: int = 60,
    rng: Optional[random.Random] = None,
) -> NetworkMetrics:
    """Compute every :class:`NetworkMetrics` field."""
    nodes = list(network.nodes())
    degrees = [len(_unique_neighbours(network, node)) for node in nodes]
    one_way = sum(
        1
        for tail, head, _ in network.edges()
        if not network.has_road(head, tail)
    )
    return NetworkMetrics(
        node_count=network.node_count,
        edge_count=network.edge_count,
        mean_degree=sum(degrees) / len(degrees) if degrees else 0.0,
        four_way_share=(
            sum(1 for d in degrees if d == 4) / len(degrees) if degrees else 0.0
        ),
        one_way_share=one_way / network.edge_count if network.edge_count else 0.0,
        circuity=circuity(network, samples=circuity_samples, rng=rng),
        orientation_entropy=orientation_entropy(network),
    )
