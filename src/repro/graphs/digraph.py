"""The directed road-network substrate.

:class:`RoadNetwork` is a purpose-built directed weighted graph: nodes are
street intersections with planar positions, edges are one-way street
segments with positive lengths.  Two-way streets are modelled as a pair of
anti-parallel edges (:meth:`RoadNetwork.add_street`).

The class is intentionally independent of networkx — the substrate is part
of the reproduction — but exposes enough introspection that tests can
cross-check it against networkx as an oracle.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from ..errors import (
    DuplicateNodeError,
    EdgeNotFoundError,
    NegativeWeightError,
    NodeNotFoundError,
)
from .geometry import BoundingBox, Point

NodeId = Hashable


class RoadNetwork:
    """A directed, positively weighted graph of street intersections.

    Example
    -------
    >>> net = RoadNetwork()
    >>> net.add_intersection("a", Point(0, 0))
    >>> net.add_intersection("b", Point(100, 0))
    >>> net.add_street("a", "b")          # two-way, length from geometry
    >>> net.edge_length("a", "b")
    100.0
    """

    def __init__(self) -> None:
        self._positions: Dict[NodeId, Point] = {}
        self._succ: Dict[NodeId, Dict[NodeId, float]] = {}
        self._pred: Dict[NodeId, Dict[NodeId, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_intersection(self, node: NodeId, position: Point) -> None:
        """Add an intersection at ``position``.

        Raises :class:`DuplicateNodeError` if ``node`` already exists.
        """
        if node in self._positions:
            raise DuplicateNodeError(node)
        self._positions[node] = position
        self._succ[node] = {}
        self._pred[node] = {}

    def add_road(
        self, tail: NodeId, head: NodeId, length: Optional[float] = None
    ) -> None:
        """Add a one-way street segment from ``tail`` to ``head``.

        ``length`` defaults to the Euclidean distance between the two
        intersections.  Re-adding an existing edge overwrites its length,
        keeping the network simple (no parallel edges).
        """
        if tail not in self._positions:
            raise NodeNotFoundError(tail)
        if head not in self._positions:
            raise NodeNotFoundError(head)
        if tail == head:
            raise ValueError(f"self-loop at {tail!r} is not a street segment")
        if length is None:
            length = self._positions[tail].distance_to(self._positions[head])
        if length <= 0 or math.isnan(length) or math.isinf(length):
            # Strictly positive lengths keep Dijkstra's tight-edge parent
            # graph acyclic (see shortest_paths._exact_parents).
            raise NegativeWeightError(
                f"street {tail!r} -> {head!r} has invalid length {length}"
            )
        self._succ[tail][head] = float(length)
        self._pred[head][tail] = float(length)

    def add_street(
        self, a: NodeId, b: NodeId, length: Optional[float] = None
    ) -> None:
        """Add a two-way street between ``a`` and ``b`` (two directed edges)."""
        self.add_road(a, b, length)
        self.add_road(b, a, length)

    def remove_road(self, tail: NodeId, head: NodeId) -> None:
        """Remove the directed segment ``tail -> head``."""
        if tail not in self._succ or head not in self._succ[tail]:
            raise EdgeNotFoundError(tail, head)
        del self._succ[tail][head]
        del self._pred[head][tail]

    def remove_intersection(self, node: NodeId) -> None:
        """Remove ``node`` and every incident segment."""
        if node not in self._positions:
            raise NodeNotFoundError(node)
        for head in list(self._succ[node]):
            self.remove_road(node, head)
        for tail in list(self._pred[node]):
            self.remove_road(tail, node)
        del self._succ[node]
        del self._pred[node]
        del self._positions[node]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._positions)

    @property
    def node_count(self) -> int:
        """Number of intersections."""
        return len(self._positions)

    @property
    def edge_count(self) -> int:
        """Number of directed street segments."""
        return sum(len(heads) for heads in self._succ.values())

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over intersection ids (insertion order)."""
        return iter(self._positions)

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, float]]:
        """Iterate over ``(tail, head, length)`` triples."""
        for tail, heads in self._succ.items():
            for head, length in heads.items():
                yield tail, head, length

    def has_road(self, tail: NodeId, head: NodeId) -> bool:
        """Whether the directed segment ``tail -> head`` exists."""
        return tail in self._succ and head in self._succ[tail]

    def position(self, node: NodeId) -> Point:
        """The planar position of ``node``."""
        try:
            return self._positions[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def edge_length(self, tail: NodeId, head: NodeId) -> float:
        """Length of the directed segment ``tail -> head``."""
        try:
            return self._succ[tail][head]
        except KeyError:
            if tail not in self._positions:
                raise NodeNotFoundError(tail) from None
            raise EdgeNotFoundError(tail, head) from None

    def successors(self, node: NodeId) -> Iterator[Tuple[NodeId, float]]:
        """Iterate over ``(head, length)`` for outgoing segments."""
        try:
            items = self._succ[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        return iter(items.items())

    def predecessors(self, node: NodeId) -> Iterator[Tuple[NodeId, float]]:
        """Iterate over ``(tail, length)`` for incoming segments."""
        try:
            items = self._pred[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        return iter(items.items())

    def out_degree(self, node: NodeId) -> int:
        """Number of outgoing segments at ``node``."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return len(self._succ[node])

    def in_degree(self, node: NodeId) -> int:
        """Number of incoming segments at ``node``."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return len(self._pred[node])

    def path_length(self, path: Iterable[NodeId]) -> float:
        """Total length of a node path; raises if any hop is missing."""
        total = 0.0
        previous: Optional[NodeId] = None
        for node in path:
            if previous is not None:
                total += self.edge_length(previous, node)
            previous = node
        return total

    def is_path(self, path: Iterable[NodeId]) -> bool:
        """Whether consecutive nodes in ``path`` are connected by segments."""
        previous: Optional[NodeId] = None
        for node in path:
            if node not in self._positions:
                return False
            if previous is not None and not self.has_road(previous, node):
                return False
            previous = node
        return True

    # ------------------------------------------------------------------
    # spatial queries
    # ------------------------------------------------------------------
    def bounding_box(self) -> BoundingBox:
        """Smallest box containing every intersection."""
        return BoundingBox.from_points(self._positions.values())

    def nearest_intersection(self, point: Point) -> NodeId:
        """The intersection closest to ``point`` (Euclidean).

        Linear scan; the networks in this library are small enough
        (thousands of intersections) that an index is unnecessary, and map
        matching batches its queries through :class:`GridIndex` in
        :mod:`repro.traces.mapmatch` instead.
        """
        if not self._positions:
            raise NodeNotFoundError(point)
        return min(
            self._positions,
            key=lambda node: self._positions[node].distance_to(point),
        )

    def nodes_within(self, box: BoundingBox) -> List[NodeId]:
        """All intersections inside ``box`` (closed boundary)."""
        return [
            node for node, pos in self._positions.items() if box.contains(pos)
        ]

    def euclidean_distance(self, a: NodeId, b: NodeId) -> float:
        """Straight-line distance between two intersections."""
        return self.position(a).distance_to(self.position(b))

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "RoadNetwork":
        """A copy with every segment direction flipped.

        Used to run a forward Dijkstra that answers "distance *to* a
        target" queries.
        """
        flipped = RoadNetwork()
        for node, pos in self._positions.items():
            flipped.add_intersection(node, pos)
        for tail, head, length in self.edges():
            flipped.add_road(head, tail, length)
        return flipped

    def copy(self) -> "RoadNetwork":
        """A deep structural copy."""
        duplicate = RoadNetwork()
        for node, pos in self._positions.items():
            duplicate.add_intersection(node, pos)
        for tail, head, length in self.edges():
            duplicate.add_road(tail, head, length)
        return duplicate

    def __repr__(self) -> str:
        return (
            f"RoadNetwork(nodes={self.node_count}, edges={self.edge_count})"
        )
