"""Road-network serialization (JSON).

City generation is cheap here, but users bringing their *own* street
plans (e.g. exported from OSM tooling) need a stable interchange format.
The format is deliberately simple:

.. code-block:: json

    {
      "format": "rapflow-network",
      "version": 1,
      "nodes": [{"id": ..., "x": 0.0, "y": 0.0}, ...],
      "edges": [{"tail": ..., "head": ..., "length": 1.0}, ...]
    }

Node ids may be strings, numbers, or (as the generators produce) small
lists/tuples; tuples round-trip via lists with a tagged restore.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from ..errors import GraphError
from .digraph import RoadNetwork
from .geometry import Point

PathLike = Union[str, Path]

FORMAT_NAME = "rapflow-network"
FORMAT_VERSION = 1


def _encode_id(node: Any) -> Any:
    if isinstance(node, tuple):
        return {"t": list(node)}
    return node


def _decode_id(raw: Any) -> Any:
    if isinstance(raw, dict) and set(raw) == {"t"}:
        return tuple(raw["t"])
    if isinstance(raw, list):
        # Plain lists are not hashable; accept them as tuples for
        # tolerance of hand-written files.
        return tuple(raw)
    return raw


def network_to_dict(network: RoadNetwork) -> dict:
    """Serialize to a JSON-compatible dict."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "nodes": [
            {
                "id": _encode_id(node),
                "x": network.position(node).x,
                "y": network.position(node).y,
            }
            for node in network.nodes()
        ],
        "edges": [
            {"tail": _encode_id(tail), "head": _encode_id(head), "length": length}
            for tail, head, length in network.edges()
        ],
    }


def network_from_dict(data: dict) -> RoadNetwork:
    """Deserialize; validates format/version and structure."""
    if not isinstance(data, dict):
        raise GraphError("network document must be a JSON object")
    if data.get("format") != FORMAT_NAME:
        raise GraphError(
            f"unexpected format {data.get('format')!r}; expected "
            f"{FORMAT_NAME!r}"
        )
    if data.get("version") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported network format version {data.get('version')!r}"
        )
    network = RoadNetwork()
    for entry in data.get("nodes", []):
        try:
            network.add_intersection(
                _decode_id(entry["id"]), Point(float(entry["x"]), float(entry["y"]))
            )
        except (KeyError, TypeError, ValueError) as error:
            raise GraphError(f"bad node entry {entry!r}: {error}") from None
    for entry in data.get("edges", []):
        try:
            network.add_road(
                _decode_id(entry["tail"]),
                _decode_id(entry["head"]),
                float(entry["length"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise GraphError(f"bad edge entry {entry!r}: {error}") from None
    return network


def save_network(network: RoadNetwork, path: PathLike) -> None:
    """Write a network to a JSON file."""
    with open(path, "w") as handle:
        json.dump(network_to_dict(network), handle)


def load_network(path: PathLike) -> RoadNetwork:
    """Read a network from a JSON file."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise GraphError(f"{path}: invalid JSON ({error})") from None
    return network_from_dict(data)
