"""Synthetic city generators.

Three city archetypes cover the paper's evaluation:

* :func:`manhattan_grid` — the idealized grid of Section IV;
* :func:`seattle_like_city` — a *partially* grid-based city (the paper
  notes Seattle's plan is only partially a grid, and expects Algorithms
  3/4 to degrade gracefully on it);
* :func:`dublin_like_city` — an irregular, non-grid city (Dublin's plan is
  not grid-based, so only the general algorithms apply).

All generators are deterministic given a seed, produce strongly connected
networks, and embed nodes in feet to match the paper's spatial extents
(80,000 x 80,000 ft for central Dublin; 10,000 x 10,000 ft for central
Seattle).
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from .digraph import NodeId, RoadNetwork
from .geometry import Point
from .validation import (
    removable_without_disconnecting,
    restrict_to_largest_scc,
)

GridNode = Tuple[int, int]


def manhattan_grid(
    rows: int,
    cols: int,
    block: float = 500.0,
    origin: Point = Point(0.0, 0.0),
) -> RoadNetwork:
    """A perfect Manhattan grid with two-way streets.

    Node ids are ``(row, col)`` tuples; ``(0, 0)`` sits at ``origin``, rows
    grow northward (+y) and columns grow eastward (+x).  Every street
    segment has length ``block``.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    if block <= 0:
        raise ValueError(f"block size must be positive, got {block}")
    network = RoadNetwork()
    for r in range(rows):
        for c in range(cols):
            network.add_intersection(
                (r, c), Point(origin.x + c * block, origin.y + r * block)
            )
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                network.add_street((r, c), (r, c + 1), block)
            if r + 1 < rows:
                network.add_street((r, c), (r + 1, c), block)
    return network


def grid_center_node(rows: int, cols: int) -> GridNode:
    """The node closest to the geometric center of a ``rows x cols`` grid."""
    return (rows // 2, cols // 2)


def seattle_like_city(
    rows: int = 21,
    cols: int = 21,
    extent: float = 10_000.0,
    *,
    removal_fraction: float = 0.08,
    diagonal_fraction: float = 0.03,
    one_way_fraction: float = 0.05,
    jitter: float = 0.0,
    seed: int = 7,
) -> RoadNetwork:
    """A partially grid-based city on a square ``extent x extent`` region.

    Starts from a perfect grid, then (all preserving strong connectivity):

    * deletes ``removal_fraction`` of the two-way streets,
    * converts ``one_way_fraction`` of the remaining streets to one-way,
    * adds ``diagonal_fraction`` diagonal shortcut streets,
    * optionally jitters intersection positions by up to ``jitter`` feet
      (positions only; segment lengths stay as built, mimicking streets
      that bend between intersections).
    """
    if rows < 2 or cols < 2:
        raise ValueError("seattle_like_city needs at least a 2x2 grid")
    rng = random.Random(seed)
    block = extent / (max(rows, cols) - 1)
    network = manhattan_grid(rows, cols, block)

    _delete_streets(network, rng, removal_fraction)
    _make_one_way(network, rng, one_way_fraction)
    _add_diagonals(network, rng, diagonal_fraction, rows, cols)
    if jitter > 0:
        network = _jitter_positions(network, rng, jitter)
    return restrict_to_largest_scc(network)


def dublin_like_city(
    rows: int = 17,
    cols: int = 17,
    extent: float = 80_000.0,
    *,
    removal_fraction: float = 0.22,
    diagonal_fraction: float = 0.12,
    one_way_fraction: float = 0.15,
    jitter_fraction: float = 0.25,
    seed: int = 11,
) -> RoadNetwork:
    """An irregular, non-grid city on a square ``extent x extent`` region.

    The construction perturbs a grid much more aggressively than
    :func:`seattle_like_city` — heavy jitter destroys axis alignment,
    many deletions and diagonals destroy the lattice — yielding a planar-ish
    irregular street plan comparable to central Dublin.  Segment lengths are
    the Euclidean distances between the jittered intersections.
    """
    if rows < 2 or cols < 2:
        raise ValueError("dublin_like_city needs at least a 2x2 grid")
    rng = random.Random(seed)
    block = extent / (max(rows, cols) - 1)

    # Jitter positions FIRST so that edge lengths reflect the irregular
    # geometry (unlike the Seattle generator, which keeps grid lengths).
    network = RoadNetwork()
    for r in range(rows):
        for c in range(cols):
            dx = rng.uniform(-jitter_fraction, jitter_fraction) * block
            dy = rng.uniform(-jitter_fraction, jitter_fraction) * block
            network.add_intersection((r, c), Point(c * block + dx, r * block + dy))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                network.add_street((r, c), (r, c + 1))
            if r + 1 < rows:
                network.add_street((r, c), (r + 1, c))

    _add_diagonals(network, rng, diagonal_fraction, rows, cols)
    _delete_streets(network, rng, removal_fraction)
    _make_one_way(network, rng, one_way_fraction)
    return restrict_to_largest_scc(network)


# ----------------------------------------------------------------------
# perturbation helpers
# ----------------------------------------------------------------------
def _two_way_pairs(network: RoadNetwork) -> List[Tuple[NodeId, NodeId]]:
    """Unordered two-way street pairs, each reported once."""
    pairs = []
    for tail, head, _ in network.edges():
        if network.has_road(head, tail) and repr(tail) < repr(head):
            pairs.append((tail, head))
    return pairs


def _delete_streets(
    network: RoadNetwork, rng: random.Random, fraction: float
) -> None:
    """Delete up to ``fraction`` of two-way streets, keeping connectivity."""
    pairs = _two_way_pairs(network)
    rng.shuffle(pairs)
    target = int(len(pairs) * fraction)
    removed = 0
    for tail, head in pairs:
        if removed >= target:
            break
        if not network.has_road(tail, head) or not network.has_road(head, tail):
            continue
        length = network.edge_length(tail, head)
        network.remove_road(tail, head)
        network.remove_road(head, tail)
        # Keep the street only if dropping it would disconnect the city.
        from .validation import reachable_from

        if head not in reachable_from(network, tail) or tail not in reachable_from(
            network, head
        ):
            network.add_street(tail, head, length)
        else:
            removed += 1


def _make_one_way(
    network: RoadNetwork, rng: random.Random, fraction: float
) -> None:
    """Convert up to ``fraction`` of two-way streets to one-way."""
    pairs = _two_way_pairs(network)
    rng.shuffle(pairs)
    target = int(len(pairs) * fraction)
    converted = 0
    for tail, head in pairs:
        if converted >= target:
            break
        if not network.has_road(tail, head) or not network.has_road(head, tail):
            continue
        drop_tail, drop_head = (tail, head) if rng.random() < 0.5 else (head, tail)
        if removable_without_disconnecting(network, drop_tail, drop_head):
            network.remove_road(drop_tail, drop_head)
            converted += 1


def _add_diagonals(
    network: RoadNetwork,
    rng: random.Random,
    fraction: float,
    rows: int,
    cols: int,
) -> None:
    """Add diagonal shortcut streets between grid-adjacent block corners."""
    target = int(network.edge_count / 2 * fraction)
    attempts = 0
    added = 0
    while added < target and attempts < target * 20 + 20:
        attempts += 1
        r = rng.randrange(rows - 1)
        c = rng.randrange(cols - 1)
        if rng.random() < 0.5:
            a, b = (r, c), (r + 1, c + 1)
        else:
            a, b = (r + 1, c), (r, c + 1)
        if a not in network or b not in network or network.has_road(a, b):
            continue
        network.add_street(a, b)
        added += 1


def _jitter_positions(
    network: RoadNetwork, rng: random.Random, jitter: float
) -> RoadNetwork:
    """Copy with positions perturbed but edge lengths preserved."""
    moved = RoadNetwork()
    for node in network.nodes():
        pos = network.position(node)
        moved.add_intersection(
            node,
            Point(
                pos.x + rng.uniform(-jitter, jitter),
                pos.y + rng.uniform(-jitter, jitter),
            ),
        )
    for tail, head, length in network.edges():
        moved.add_road(tail, head, length)
    return moved


def ring_city(
    spokes: int = 8, rings: int = 3, ring_gap: float = 1_000.0
) -> RoadNetwork:
    """A radial/ring city (spider-web) — a stress-test topology for tests.

    Nodes: ``("hub",)`` at the center plus ``(ring, spoke)`` intersections.
    """
    if spokes < 3 or rings < 1:
        raise ValueError("ring_city needs >= 3 spokes and >= 1 ring")
    network = RoadNetwork()
    hub: NodeId = ("hub",)
    network.add_intersection(hub, Point(0.0, 0.0))
    for ring in range(1, rings + 1):
        radius = ring * ring_gap
        for spoke in range(spokes):
            angle = 2 * math.pi * spoke / spokes
            network.add_intersection(
                (ring, spoke), Point(radius * math.cos(angle), radius * math.sin(angle))
            )
    for spoke in range(spokes):
        network.add_street(hub, (1, spoke))
        for ring in range(1, rings):
            network.add_street((ring, spoke), (ring + 1, spoke))
    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            network.add_street((ring, spoke), (ring, (spoke + 1) % spokes))
    return network
