"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for road-network errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the network."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the network")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the network."""

    def __init__(self, tail: object, head: object) -> None:
        super().__init__(f"edge {tail!r} -> {head!r} is not in the network")
        self.tail = tail
        self.head = head


class DuplicateNodeError(GraphError, ValueError):
    """A node was added twice."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists in the network")
        self.node = node


class NegativeWeightError(GraphError, ValueError):
    """An edge with a negative length was supplied to a shortest-path query."""


class DisconnectedGraphError(GraphError):
    """The network is not (strongly) connected where the caller requires it."""


class NoPathError(GraphError):
    """There is no path between the requested endpoints.

    ``detail`` optionally names the specific failure (e.g. the settled
    node whose tight predecessor could not be recovered during path
    reconstruction).
    """

    def __init__(
        self, source: object, target: object, detail: str = ""
    ) -> None:
        message = f"no path from {source!r} to {target!r}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.source = source
        self.target = target
        self.detail = detail


class ModelError(ReproError):
    """Base class for scenario/model construction errors."""


class InvalidFlowError(ModelError, ValueError):
    """A traffic flow is malformed (empty path, broken path, bad volume...)."""


class InvalidUtilityError(ModelError, ValueError):
    """A utility function was constructed with invalid parameters."""


class InvalidScenarioError(ModelError, ValueError):
    """A scenario is inconsistent (shop off-graph, flows off-graph...)."""


class PlacementError(ReproError):
    """Base class for placement-algorithm errors."""


class InfeasiblePlacementError(PlacementError, ValueError):
    """The requested placement cannot be produced (e.g. k > |V|)."""


class TraceError(ReproError):
    """Base class for trace generation / parsing / map-matching errors."""


class TraceFormatError(TraceError, ValueError):
    """A trace file or record is malformed.

    ``fault_class`` tags the failure mode (``"non-numeric"``,
    ``"empty-id"``, ``"short-row"``, ``"missing-column"``,
    ``"invalid-record"``) so lenient ingestion can quarantine and count
    per class; plain ``TraceFormatError(msg)`` construction keeps working.

    >>> TraceFormatError("bad row").fault_class
    'invalid-record'
    """

    def __init__(
        self, message: object = "", fault_class: str = "invalid-record"
    ) -> None:
        super().__init__(message)
        self.fault_class = fault_class


class MapMatchError(TraceError):
    """A GPS journey could not be matched onto the road network."""


class ReliabilityError(ReproError):
    """Base class for reliability-layer errors (fault injection,
    lenient ingestion, checkpointed runs).

    >>> issubclass(ReliabilityError, ReproError)
    True
    """


class ErrorBudgetExceeded(ReliabilityError, TraceError):
    """Lenient ingestion gave up: bad records outnumbered the budget.

    Raised by the lenient trace pipeline once the fraction (or count) of
    quarantined records/journeys passes the configured
    :class:`~repro.reliability.ErrorBudget`.  It derives from both
    :class:`ReliabilityError` and :class:`TraceError`, so existing
    trace-level handlers keep working:

    >>> issubclass(ErrorBudgetExceeded, TraceError)
    True
    >>> issubclass(ErrorBudgetExceeded, ReproError)
    True
    >>> try:
    ...     raise ErrorBudgetExceeded("3 of 10 rows malformed (budget 0.1)")
    ... except TraceError as error:
    ...     print(error)
    3 of 10 rows malformed (budget 0.1)
    """


class CheckpointError(ReliabilityError):
    """A checkpoint store is unreadable, corrupt, or inconsistent.

    >>> issubclass(CheckpointError, ReliabilityError)
    True
    """


class DevtoolsError(ReproError):
    """Base class for correctness-tooling errors (lint, sanitizer).

    >>> issubclass(DevtoolsError, ReproError)
    True
    """


class LintConfigError(DevtoolsError, ValueError):
    """A ``[tool.rapflow-lint]`` table (or ``--select``) is invalid.

    >>> issubclass(LintConfigError, DevtoolsError)
    True
    """


class SanitizerViolation(DevtoolsError, AssertionError):
    """A runtime contract check failed under ``RAPFLOW_SANITIZE=1``.

    ``check`` names the violated contract (``"monotonicity"``,
    ``"submodularity"``, ``"edge-weights"``, ``"first-rap"``) so test
    harnesses can assert on the failure class:

    >>> SanitizerViolation("gain decreased", check="monotonicity").check
    'monotonicity'
    >>> issubclass(SanitizerViolation, AssertionError)
    True
    """

    def __init__(self, message: object = "", check: str = "invariant") -> None:
        super().__init__(message)
        self.check = check


class ObsError(ReproError):
    """Base class for observability-layer errors (spans, sinks).

    Raised for misuse of the tracing API (ending a span twice, closing a
    context with open spans) and for event-sink I/O failures.

    >>> issubclass(ObsError, ReproError)
    True
    """


class ServeError(ReproError):
    """Base class for placement-query-service errors (:mod:`repro.serve`).

    >>> issubclass(ServeError, ReproError)
    True
    """


class ServeArtifactError(ServeError):
    """A scenario artifact cannot be compiled, persisted, or loaded.

    Raised for unserializable scenarios (e.g. a ``CustomUtility`` whose
    shape callable cannot round-trip through JSON), corrupt cache
    entries, and digest mismatches between a cached artifact and the
    scenario spec stored next to it.
    """


class ServeRequestError(ServeError, ValueError):
    """A query request is malformed (unknown kind, bad field, bad site).

    The HTTP front end maps this family to status 400.
    """


class ServeOverloadError(ServeError):
    """The admission queue is full; the request was rejected, not queued.

    The HTTP front end maps this to status 429 so callers can back off;
    a draining (shutting-down) server answers 503 instead.
    """


class ServeTimeoutError(ServeError):
    """A request exceeded the server's per-request deadline (HTTP 504)."""


class ServeFaultError(ServeError):
    """An injected request fault fired (see ``FaultConfig.request_error_rate``).

    Only ever raised when a :class:`~repro.reliability.FaultInjector` is
    plugged into the query engine, so production configurations without
    fault injection can never see it.
    """


class ServeClientError(ServeError):
    """The typed client got a non-success response or a transport failure.

    ``status`` carries the HTTP status code when one was received
    (``None`` for transport-level failures); ``retry_after`` carries the
    server's ``Retry-After`` hint in seconds when one was sent.

    >>> ServeClientError("boom", status=500).status
    500
    >>> ServeClientError("busy", status=429).retryable
    True
    """

    def __init__(
        self,
        message: object = "",
        status: "int | None" = None,
        retry_after: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        """Whether retrying the same request can reasonably succeed.

        Transport failures (``status is None``), overload rejections
        (429), and draining servers (503) are retryable; definitive
        answers (400, 404, 500, ...) are not.
        """
        return self.status is None or self.status in (429, 503)


class ServeWorkerError(ServeError):
    """A fleet worker failed to spawn, respond, or stay alive.

    Raised by the :mod:`repro.serve.fleet` supervisor when a worker
    process/thread cannot be started (bad spawn command, ready-file
    timeout) or when the fleet is asked to route with no shard to route
    to.
    """


class ExperimentError(ReproError):
    """Base class for experiment-harness errors."""


class UnknownFigureError(ExperimentError, KeyError):
    """An experiment/figure id is not registered."""

    def __init__(self, figure_id: str) -> None:
        super().__init__(f"unknown figure id {figure_id!r}")
        self.figure_id = figure_id


class StreamError(ReproError):
    """Base class for streaming-pipeline errors (:mod:`repro.stream`).

    >>> issubclass(StreamError, ReproError)
    True
    """


class JournalError(StreamError):
    """The append-only journey journal cannot be written, rotated, or
    replayed (bad directory, torn segment beyond recovery, IO failure)."""


class StreamConfigError(StreamError, ValueError):
    """A streaming component was configured with invalid parameters
    (non-positive window, negative skew, unknown refresh mode, ...)."""


class StreamDeltaError(StreamError, ValueError):
    """A traffic delta cannot be applied to the serving artifact
    (unknown flow, volume driven non-positive, mismatched scenario)."""
