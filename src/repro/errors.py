"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for road-network errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the network."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the network")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the network."""

    def __init__(self, tail: object, head: object) -> None:
        super().__init__(f"edge {tail!r} -> {head!r} is not in the network")
        self.tail = tail
        self.head = head


class DuplicateNodeError(GraphError, ValueError):
    """A node was added twice."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists in the network")
        self.node = node


class NegativeWeightError(GraphError, ValueError):
    """An edge with a negative length was supplied to a shortest-path query."""


class DisconnectedGraphError(GraphError):
    """The network is not (strongly) connected where the caller requires it."""


class NoPathError(GraphError):
    """There is no path between the requested endpoints."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"no path from {source!r} to {target!r}")
        self.source = source
        self.target = target


class ModelError(ReproError):
    """Base class for scenario/model construction errors."""


class InvalidFlowError(ModelError, ValueError):
    """A traffic flow is malformed (empty path, broken path, bad volume...)."""


class InvalidUtilityError(ModelError, ValueError):
    """A utility function was constructed with invalid parameters."""


class InvalidScenarioError(ModelError, ValueError):
    """A scenario is inconsistent (shop off-graph, flows off-graph...)."""


class PlacementError(ReproError):
    """Base class for placement-algorithm errors."""


class InfeasiblePlacementError(PlacementError, ValueError):
    """The requested placement cannot be produced (e.g. k > |V|)."""


class TraceError(ReproError):
    """Base class for trace generation / parsing / map-matching errors."""


class TraceFormatError(TraceError, ValueError):
    """A trace file or record is malformed."""


class MapMatchError(TraceError):
    """A GPS journey could not be matched onto the road network."""


class ExperimentError(ReproError):
    """Base class for experiment-harness errors."""


class UnknownFigureError(ExperimentError, KeyError):
    """An experiment/figure id is not registered."""

    def __init__(self, figure_id: str) -> None:
        super().__init__(f"unknown figure id {figure_id!r}")
        self.figure_id = figure_id
