#!/usr/bin/env python3
"""Render archived figure results (results/*.json) as SVG plots.

Run from the repository root after ``python results/generate_all.py``:
``python scripts/render_figures.py`` writes one paper-style plot per
panel to ``results/figures/``.
"""

import pathlib

from repro.experiments import load_figure_json
from repro.experiments.report import display_name
from repro.viz import save_svg, svg_line_plot

FIGURES = ("fig10", "fig11", "fig12", "fig13")


def main() -> None:
    out = pathlib.Path("results/figures")
    out.mkdir(parents=True, exist_ok=True)
    count = 0
    for figure_id in FIGURES:
        archive = load_figure_json(f"results/{figure_id}.json")
        for panel_id, panel in archive.panels.items():
            series = {
                display_name(name): list(s.means)
                for name, s in panel.items()
            }
            ks = [float(k) for k in next(iter(panel.values())).ks]
            save_svg(
                svg_line_plot(series, ks, title=panel_id),
                out / f"{panel_id}.svg",
            )
            count += 1
    print(f"wrote {count} panel plots to {out}")


if __name__ == "__main__":
    main()
