#!/usr/bin/env python3
"""Serving benchmark: throughput + tail latency, batching on vs off.

Starts one :class:`repro.serve.server.PlacementServer` over the small
Dublin scenario and drives it with a thread pool of synchronous
:class:`repro.serve.client.ServeClient` workers posting hot ``evaluate``
queries (each request scores one placement drawn from a small pool, the
workload micro-batching is built for).  Every concurrency level runs
twice — micro-batching enabled (2 ms window) and disabled
(``max_batch=1``, every request its own kernel call) — and the snapshot
records per-level throughput and p50/p95/p99 latency plus the server's
batching tallies, so the coalescing win is measured, not asserted.

Writes ``BENCH_serve.json``::

    {
      "schema": "rapflow-bench-serve/1",
      "git_sha": ..., "scale": "small",
      "levels": [{"concurrency", "mode", "requests", "throughput_rps",
                  "p50_ms", "p95_ms", "p99_ms", "errors", "batching"}],
      "batching_speedup": {"8": 1.7, ...}   # batched/unbatched throughput
    }

Usage::

    PYTHONPATH=src python scripts/bench_serve.py [--out BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Scenario, utility_by_name  # noqa: E402
from repro.experiments import (  # noqa: E402
    LocationClass,
    TraceProvider,
    classify_intersections,
    locations_of_class,
)
from repro.serve import QueryEngine, ScenarioArtifact, ServerThread  # noqa: E402


def git_sha() -> str:
    """Current commit SHA (``unknown`` outside a git checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def build_scenario(scale: str, seed: int = 42) -> Scenario:
    provider = TraceProvider(scale=scale)
    bundle = provider.get("dublin")
    classes = classify_intersections(bundle.network, bundle.flows)
    import random

    shop = random.Random(seed).choice(
        locations_of_class(classes, LocationClass.CITY)
    )
    return Scenario(
        bundle.network, bundle.flows, shop, utility_by_name("linear", 20_000.0)
    )


def hot_placements(
    engine: QueryEngine, pool_size: int, k: int
) -> List[List[object]]:
    """A pool of plausible placements built from the top-gain sites."""
    response = engine.handle(
        {"kind": "top_gains", "placement": [], "limit": pool_size + k}
    )
    sites = [entry["site"] for entry in response["gains"]]
    if len(sites) < k:
        sites = sites + [
            entry if not isinstance(entry, tuple) else {"t": list(entry)}
            for entry in engine.scenario.candidate_sites[: k - len(sites)]
        ]
    pool = []
    for start in range(max(1, min(pool_size, len(sites)))):
        placement = [sites[(start + j) % len(sites)] for j in range(k)]
        pool.append(placement)
    return pool


def run_level(
    port: int,
    concurrency: int,
    requests: int,
    pool: Sequence[Sequence[object]],
    backend: str,
) -> Dict[str, object]:
    """Drive one concurrency level; returns throughput + tail latencies."""
    from repro.serve import ServeClient

    latencies: List[float] = []
    errors = 0

    def worker(worker_id: int) -> List[float]:
        client = ServeClient("127.0.0.1", port, timeout=30.0)
        mine: List[float] = []
        nonlocal errors
        for i in range(requests // concurrency):
            placement = pool[(worker_id + i) % len(pool)]
            body = {
                "kind": "evaluate",
                "placements": [list(placement)],
                "backend": backend,
            }
            t0 = time.perf_counter()
            try:
                client.query(body)
            except Exception:  # bench: count, keep hammering
                errors += 1
                continue
            mine.append(time.perf_counter() - t0)
        return mine

    t_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as executor:
        for result in executor.map(worker, range(concurrency)):
            latencies.extend(result)
    elapsed = time.perf_counter() - t_start
    latencies.sort()

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(p * len(latencies)))
        return latencies[index] * 1000.0

    return {
        "concurrency": concurrency,
        "requests": len(latencies),
        "errors": errors,
        "elapsed_s": elapsed,
        "throughput_rps": len(latencies) / elapsed if elapsed else 0.0,
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "p99_ms": pct(0.99),
        "mean_ms": statistics.fmean(latencies) * 1000 if latencies else 0.0,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_serve.json"))
    parser.add_argument(
        "--requests", type=int, default=400,
        help="requests per (level, mode) pair (default: 400)",
    )
    parser.add_argument(
        "--levels", default="1,2,4,8,16",
        help="comma-separated concurrency levels",
    )
    parser.add_argument("--pool", type=int, default=4,
                        help="hot-placement pool size")
    parser.add_argument("--k", type=int, default=5,
                        help="sites per evaluated placement")
    parser.add_argument("--scale", default="paper",
                        choices=("paper", "small"))
    parser.add_argument(
        "--backend", default="python", choices=("python", "numpy"),
        help="evaluation backend for the workload (default: python — "
        "evaluation cost is what the batcher's dedup amortizes)",
    )
    parser.add_argument("--window", type=float, default=0.001,
                        help="batching window in seconds for batched mode")
    args = parser.parse_args()
    levels = [int(v) for v in args.levels.split(",") if v.strip()]

    scenario = build_scenario(args.scale)
    artifact = ScenarioArtifact.compile(scenario)
    pool = hot_placements(QueryEngine(artifact), args.pool, args.k)
    print(
        f"artifact {artifact.digest[:12]}: {artifact.stats['incidences']} "
        f"incidences; pool of {len(pool)} hot placements (k={args.k})"
    )

    results: List[Dict[str, object]] = []
    throughput: Dict[str, Dict[int, float]] = {"batched": {}, "unbatched": {}}
    for mode, batch_kwargs in (
        ("batched", {"batch_window": args.window, "max_batch": 256}),
        ("unbatched", {"batch_window": 0.0, "max_batch": 1}),
    ):
        for concurrency in levels:
            # Fresh engine per run: the result LRU must not serve one
            # mode's numbers to the other (identical requests recur by
            # design in this workload), and batching tallies start at 0.
            engine = QueryEngine(artifact, cache_size=0)
            with ServerThread(
                engine, max_inflight=max(64, 4 * concurrency), **batch_kwargs
            ) as handle:
                # One warm-up round outside the timed window.
                run_level(
                    handle.port, concurrency, concurrency * 4, pool,
                    args.backend,
                )
                level = run_level(
                    handle.port, concurrency, args.requests, pool,
                    args.backend,
                )
                level["mode"] = mode
                level["batching"] = handle.client().healthz()["batching"]
                results.append(level)
                throughput[mode][concurrency] = float(
                    level["throughput_rps"]
                )
                print(
                    f"{mode:>9} c={concurrency:<3} "
                    f"{level['throughput_rps']:8.1f} req/s  "
                    f"p50={level['p50_ms']:6.2f}ms "
                    f"p95={level['p95_ms']:6.2f}ms "
                    f"p99={level['p99_ms']:6.2f}ms "
                    f"(errors={level['errors']})"
                )

    speedup = {
        str(c): throughput["batched"][c] / throughput["unbatched"][c]
        for c in levels
        if throughput["unbatched"].get(c)
    }
    snapshot = {
        "schema": "rapflow-bench-serve/1",
        "git_sha": git_sha(),
        "scale": args.scale,
        "backend": args.backend,
        "batch_window_s": args.window,
        "requests_per_level": args.requests,
        "pool_size": len(pool),
        "placement_k": args.k,
        "levels": results,
        "batching_speedup": speedup,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out_path}")
    for concurrency, ratio in sorted(
        ((int(c), r) for c, r in speedup.items())
    ):
        print(f"  batching speedup @ c={concurrency:<3}: {ratio:5.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
