#!/usr/bin/env python3
"""Serving benchmark: throughput + tail latency, batching on vs off.

Starts one :class:`repro.serve.server.PlacementServer` over the small
Dublin scenario and drives it with a thread pool of synchronous
:class:`repro.serve.client.ServeClient` workers posting hot ``evaluate``
queries (each request scores one placement drawn from a small pool, the
workload micro-batching is built for).  Every concurrency level runs
twice — micro-batching enabled (2 ms window) and disabled
(``max_batch=1``, every request its own kernel call) — and the snapshot
records per-level throughput and p50/p95/p99 latency plus the server's
batching tallies, so the coalescing win is measured, not asserted.

A third tier benchmarks the supervised fleet: N in-process workers
behind the routing front, driven at high concurrency with one worker
killed mid-run, so the recorded throughput includes failure detection,
retry, and respawn.

A fourth tier (``shm_fleet``) is the scale-out proof: N **real
subprocess** workers attach one shared-memory published artifact
zero-copy (no npz read, no private array copies) behind a front running
per-shard micro-batching, driven at c=256.  It records throughput and
tails, each worker's restore mode/latency/memory read back through
worker health, a direct attach-vs-load latency comparison, and the
copy-count evidence: total private-memory growth across N workers
versus the artifact's segment size.

A fifth tier (``stream``) measures the streaming pipeline end to end:
the windowed estimator's fold rate over a synthetic closed-journey
feed, the incremental artifact patch against a full recompile of the
same deltas (bit-identical digests, median seconds each), and the
swap-induced p99 blip — a live fleet driven in a baseline window and
again while a background thread hot-swaps the default shard
continuously.  Writes ``BENCH_serve.json``::

    {
      "schema": "rapflow-bench-serve/5",
      "git_sha": ..., "git_dirty": false, "scale": "small",
      "levels": [{"concurrency", "mode", "requests", "throughput_rps",
                  "p50_ms", "p95_ms", "p99_ms", "errors", "batching"}],
      "batching_speedup": {"8": 1.7, ...},  # batched/unbatched throughput
      "fleet": {"workers", "concurrency", "throughput_rps", "p99_ms",
                "per_worker": [{"id", "state", "respawns", "p99_ms"}],
                "respawns", "shed_rate", "degraded_rate"},
      "shm_fleet": {"workers", "concurrency", "throughput_rps",
                    "p95_ms", "p99_ms", "artifact_nbytes",
                    "attach_seconds", "load_seconds",
                    "per_worker": [{"restore", ...}],
                    "total_restore_private_delta_bytes", "front_batching",
                    "fleet_metrics": {  # server-side GET /metrics view
                        "latency": {"buckets_ms", "counts", "p95_ms", ...},
                        "workers_latency", "workers_reporting", "counters"}},
      "stream": {"fold": {"journeys_per_s", "deltas_emitted", ...},
                 "refresh": {"patch_seconds", "recompile_seconds",
                             "patch_speedup", "digests_agree"},
                 "swap": {"swaps", "availability", "baseline_p99_ms",
                          "under_swap_p99_ms", "p99_blip_ratio", ...}}
    }

Schema /4 adds ``shm_fleet.fleet_metrics``: the front's fixed-bucket
latency histogram and fleet-aggregated counters read from ``GET
/metrics`` after the timed window, so the snapshot carries server-side
percentiles alongside the bench's client-side ones (they must agree
within one histogram bucket — the schema test enforces it).

Schema /5 adds the ``stream`` tier: the estimator fold rate, the
incremental-patch vs full-recompile refresh timing, and the hot-swap
p99 blip measured against a no-swap baseline window.

Usage::

    PYTHONPATH=src python scripts/bench_serve.py [--out BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import statistics
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Scenario, utility_by_name  # noqa: E402
from repro.experiments import (  # noqa: E402
    LocationClass,
    TraceProvider,
    classify_intersections,
    locations_of_class,
)
from repro.serve import QueryEngine, ScenarioArtifact, ServerThread  # noqa: E402


def git_sha() -> str:
    """Current commit SHA (``unknown`` outside a git checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def git_dirty() -> bool:
    """True when the working tree differs from HEAD at run time.

    A snapshot stamped with a clean sha but produced from a dirty tree
    misattributes the numbers to the wrong code; recording the flag
    makes the provenance honest either way.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return bool(out.stdout.strip())
    except (OSError, subprocess.CalledProcessError):
        return True


def build_scenario(scale: str, seed: int = 42) -> Scenario:
    provider = TraceProvider(scale=scale)
    bundle = provider.get("dublin")
    classes = classify_intersections(bundle.network, bundle.flows)
    import random

    shop = random.Random(seed).choice(
        locations_of_class(classes, LocationClass.CITY)
    )
    return Scenario(
        bundle.network, bundle.flows, shop, utility_by_name("linear", 20_000.0)
    )


def hot_placements(
    engine: QueryEngine, pool_size: int, k: int
) -> List[List[object]]:
    """A pool of plausible placements built from the top-gain sites."""
    response = engine.handle(
        {"kind": "top_gains", "placement": [], "limit": pool_size + k}
    )
    sites = [entry["site"] for entry in response["gains"]]
    if len(sites) < k:
        sites = sites + [
            entry if not isinstance(entry, tuple) else {"t": list(entry)}
            for entry in engine.scenario.candidate_sites[: k - len(sites)]
        ]
    pool = []
    for start in range(max(1, min(pool_size, len(sites)))):
        placement = [sites[(start + j) % len(sites)] for j in range(k)]
        pool.append(placement)
    return pool


def run_level(
    port: int,
    concurrency: int,
    requests: int,
    pool: Sequence[Sequence[object]],
    backend: str,
    keep_latencies: bool = False,
) -> Dict[str, object]:
    """Drive one concurrency level; returns throughput + tail latencies."""
    from repro.serve import ServeClient

    latencies: List[float] = []
    errors = 0

    def worker(worker_id: int) -> List[float]:
        client = ServeClient("127.0.0.1", port, timeout=30.0)
        mine: List[float] = []
        nonlocal errors
        for i in range(requests // concurrency):
            placement = pool[(worker_id + i) % len(pool)]
            body = {
                "kind": "evaluate",
                "placements": [list(placement)],
                "backend": backend,
            }
            t0 = time.perf_counter()
            try:
                client.query(body)
            except Exception:  # bench: count, keep hammering
                errors += 1
                continue
            mine.append(time.perf_counter() - t0)
        return mine

    t_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as executor:
        for result in executor.map(worker, range(concurrency)):
            latencies.extend(result)
    elapsed = time.perf_counter() - t_start
    latencies.sort()

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(p * len(latencies)))
        return latencies[index] * 1000.0

    level: Dict[str, object] = {
        "concurrency": concurrency,
        "requests": len(latencies),
        "errors": errors,
        "elapsed_s": elapsed,
        "throughput_rps": len(latencies) / elapsed if elapsed else 0.0,
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "p99_ms": pct(0.99),
        "mean_ms": statistics.fmean(latencies) * 1000 if latencies else 0.0,
    }
    if keep_latencies:
        level["_latencies"] = latencies
    return level


def run_raw_level(
    port: int,
    concurrency: int,
    requests: int,
    pool: Sequence[Sequence[object]],
    backend: str,
) -> Dict[str, object]:
    """Drive one concurrency level with a raw-socket asyncio generator.

    ``run_level``'s thread-pool driver burns far more CPU per request
    than the serving plane's own hot path (``http.client`` framing,
    header re-parsing, a JSON round-trip, thread switching).  The driver
    shares cores with the front and the workers, so on a small box that
    overhead is charged *against* the plane being measured.  This driver
    prebuilds one HTTP request byte-string per hot placement and runs
    every connection on a single asyncio loop — tens of microseconds per
    request — so at c=256 the plane, not the driver, is what saturates.

    Correctness is still spot-checked: the first response on every
    connection is fully JSON-decoded and must carry a ``totals`` list;
    later responses are only framed (status line + ``Content-Length``).
    """
    from repro.serve.engine import encode_site

    payloads: List[bytes] = []
    for placement in pool:
        body = json.dumps(
            {
                "kind": "evaluate",
                "placements": [[encode_site(site) for site in placement]],
                "backend": backend,
            }
        ).encode("utf-8")
        head = (
            "POST /query HTTP/1.1\r\n"
            "Host: bench\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        payloads.append(head + body)

    latencies: List[float] = []
    errors = 0
    per_connection = requests // concurrency

    async def connection(conn_id: int) -> None:
        nonlocal errors
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
        except OSError:
            errors += per_connection
            return
        mine: List[float] = []
        try:
            for i in range(per_connection):
                payload = payloads[(conn_id + i) % len(payloads)]
                t0 = time.perf_counter()
                writer.write(payload)
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                marker = head.index(b"Content-Length: ") + 16
                length = int(head[marker:head.index(b"\r", marker)])
                raw = await reader.readexactly(length)
                elapsed = time.perf_counter() - t0
                if head[9:12] != b"200":
                    errors += 1
                    continue
                if i == 0:  # correctness canary, once per connection
                    decoded = json.loads(raw)
                    if not isinstance(decoded.get("totals"), list):
                        errors += 1
                        continue
                mine.append(elapsed)
        except (OSError, asyncio.IncompleteReadError, ValueError):
            errors += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass
        latencies.extend(mine)

    async def drive() -> None:
        await asyncio.gather(
            *(connection(conn_id) for conn_id in range(concurrency))
        )

    t_start = time.perf_counter()
    asyncio.run(drive())
    elapsed = time.perf_counter() - t_start
    latencies.sort()

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(p * len(latencies)))
        return latencies[index] * 1000.0

    return {
        "concurrency": concurrency,
        "requests": len(latencies),
        "errors": errors,
        "elapsed_s": elapsed,
        "throughput_rps": len(latencies) / elapsed if elapsed else 0.0,
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "p99_ms": pct(0.99),
        "mean_ms": statistics.fmean(latencies) * 1000 if latencies else 0.0,
    }


def run_fleet_tier(
    artifact: ScenarioArtifact,
    pool: Sequence[Sequence[object]],
    backend: str,
    workers: int,
    concurrency: int,
    requests: int,
) -> Dict[str, object]:
    """The fleet tier: N supervised workers, one mid-run worker kill.

    Drives the fleet front at high concurrency in two halves, killing
    one worker between them, so the recorded numbers include detection,
    retry, and respawn — not just the happy path.  Records per-worker
    tail latency plus respawn, shed, and degraded rates.
    """
    from repro.serve import (
        FleetConfig,
        FleetThread,
        PlacementFleet,
        RetryPolicy,
        local_worker_factory,
    )

    config = FleetConfig(
        workers=workers,
        max_inflight=max(128, 2 * concurrency),
        timeout=10.0,
        heartbeat_interval=0.05,
        heartbeat_timeout=0.3,
        max_missed=2,
        respawn_backoff=0.05,
        respawn_backoff_cap=0.5,
        retry=RetryPolicy(retries=3, backoff=0.02, backoff_cap=0.2),
        seed=0,
    )
    fleet = PlacementFleet(
        local_worker_factory(lambda: QueryEngine(artifact, cache_size=0)),
        digest=artifact.digest,
        config=config,
    )
    with FleetThread(fleet) as handle:
        run_level(  # warm-up outside the timed window
            handle.port, concurrency, concurrency * 2, pool, backend
        )
        first = run_level(
            handle.port, concurrency, requests // 2, pool, backend,
            keep_latencies=True,
        )
        fleet.worker_handle(0).kill()
        second = run_level(
            handle.port, concurrency, requests - requests // 2, pool,
            backend, keep_latencies=True,
        )
        client = handle.client()
        deadline = time.perf_counter() + 10.0
        health = client.healthz()
        while (
            health.get("respawns", 0) < 1
            and time.perf_counter() < deadline
        ):
            time.sleep(0.1)
            health = client.healthz()

    latencies = sorted(first["_latencies"] + second["_latencies"])

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(p * len(latencies)))] * 1000.0

    elapsed = float(first["elapsed_s"]) + float(second["elapsed_s"])
    requests_doc = health["requests"]
    tiers = health["admission"]["tiers"]
    shed_total = sum(int(doc["shed"]) for doc in tiers.values())
    served = int(requests_doc["served"])
    attempted = served + int(requests_doc["rejected"])
    return {
        "mode": "fleet",
        "workers": workers,
        "concurrency": concurrency,
        "requests": len(latencies),
        "errors": int(first["errors"]) + int(second["errors"]),
        "elapsed_s": elapsed,
        "throughput_rps": len(latencies) / elapsed if elapsed else 0.0,
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "p99_ms": pct(0.99),
        "per_worker": [
            {
                "id": doc["id"],
                "state": doc["state"],
                "respawns": doc["respawns"],
                "p95_ms": (doc["p95"] or 0.0) * 1000.0,
                "p99_ms": (doc["p99"] or 0.0) * 1000.0,
            }
            for doc in health["workers"]
        ],
        "respawns": int(health["respawns"]),
        "retries": int(requests_doc["retries"]),
        "shed_rate": shed_total / attempted if attempted else 0.0,
        "degraded_rate": (
            int(requests_doc["degraded"]) / served if served else 0.0
        ),
        "corrupt_detected": int(requests_doc["corrupt_detected"]),
    }


def run_shm_fleet_tier(
    artifact: ScenarioArtifact,
    pool: Sequence[Sequence[object]],
    backend: str,
    workers: int,
    concurrency: int,
    requests: int,
) -> Dict[str, object]:
    """The scale-out tier: subprocess workers over one shm segment.

    Publishes the artifact into a shared-memory pool once, spawns
    ``workers`` real ``python -m repro serve --shm-attach`` subprocesses
    that map it zero-copy, and drives the front (per-shard
    micro-batching on) at ``concurrency``.  Also times attach vs
    disk-load directly, and reads each worker's restore record back
    through the front's shard health — the private-memory deltas across
    N workers against the segment size are the copy-count proof.
    """
    import tempfile

    from repro.serve import (
        ArtifactStore,
        FleetConfig,
        FleetThread,
        PlacementFleet,
        RetryPolicy,
        process_worker_factory,
    )
    from repro.serve.shm import ShmArtifactPool

    shm_root = tempfile.mkdtemp(prefix="rapflow-bench-shm-")
    ready_dir = tempfile.mkdtemp(prefix="rapflow-bench-ready-")
    cache_dir = tempfile.mkdtemp(prefix="rapflow-bench-cache-")
    shm_pool = ShmArtifactPool(shm_root)
    manifest = shm_pool.publish(artifact)

    # Attach-vs-load latency, measured in this process: zero-copy map
    # of the published segment against a full npz read of the same
    # artifact from the disk cache.
    artifact.save(cache_dir)
    t0 = time.perf_counter()
    attached = ScenarioArtifact.attach(shm_pool, artifact.digest)
    attach_seconds = time.perf_counter() - t0
    del attached
    shm_pool.detach(artifact.digest)
    t0 = time.perf_counter()
    ArtifactStore(cache_dir).load(artifact.digest)
    load_seconds = time.perf_counter() - t0

    serve_args = [
        "--shm-attach", artifact.digest,
        "--shm-dir", shm_root,
        "--max-inflight", str(max(256, concurrency)),
        "--timeout", "30.0",
        "--batch-window", "0.002",
        "--max-batch", "512",
        "--cache-size", "0",
    ]
    config = FleetConfig(
        workers=workers,
        max_inflight=max(512, 2 * concurrency),
        timeout=30.0,
        heartbeat_interval=0.25,
        heartbeat_timeout=2.0,
        max_missed=4,
        retry=RetryPolicy(retries=3, backoff=0.02, backoff_cap=0.2),
        front_batch_window=0.002,
        front_max_batch=512,
        front_bypass=4,
        seed=0,
    )
    try:
        fleet = PlacementFleet(
            process_worker_factory(serve_args, ready_dir, start_timeout=60.0),
            digest=artifact.digest,
            config=config,
        )
        with FleetThread(fleet) as handle:
            run_raw_level(  # warm-up outside the timed window
                handle.port, min(32, concurrency), concurrency, pool, backend
            )
            level = run_raw_level(
                handle.port, concurrency, requests, pool, backend,
            )
            # The supervisor fills worker health (restore provenance)
            # from its heartbeat probes; give it a beat to catch up.
            client = handle.client()
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                health = client.healthz()
                docs = health["shards"][artifact.digest]["workers"]
                if all(doc.get("health") for doc in docs):
                    break
                time.sleep(0.1)
            # Server-side histograms from GET /metrics: the front's own
            # latency buckets plus the bucket-merged worker view — the
            # percentiles the operator would see, measured inside the
            # serving path rather than at the bench's client threads.
            metrics_doc = client.metrics()
        shard = health["shards"][artifact.digest]
        per_worker = []
        restore_deltas = []
        for doc in shard["workers"]:
            worker_health = doc.get("health") or {}
            restore = worker_health.get("restore") or {}
            per_worker.append(
                {
                    "id": doc["id"],
                    "state": doc["state"],
                    "respawns": doc["respawns"],
                    "restore": restore,
                }
            )
            if isinstance(restore.get("private_delta_bytes"), int):
                restore_deltas.append(restore["private_delta_bytes"])
    finally:
        shm_pool.unlink_all()
    return {
        "mode": "shm_fleet",
        "workers": workers,
        "concurrency": concurrency,
        "requests": level["requests"],
        "errors": level["errors"],
        "elapsed_s": level["elapsed_s"],
        "throughput_rps": level["throughput_rps"],
        "p50_ms": level["p50_ms"],
        "p95_ms": level["p95_ms"],
        "p99_ms": level["p99_ms"],
        "artifact_nbytes": manifest.nbytes,
        "attach_seconds": attach_seconds,
        "load_seconds": load_seconds,
        "per_worker": per_worker,
        # Sum of restore-time private-memory growth across N workers:
        # ~1x the segment size (shared mapping), not N copies.
        "total_restore_private_delta_bytes": sum(restore_deltas),
        "front_batching": shard.get("front_batching"),
        "respawns": int(health["respawns"]),
        "fleet_metrics": {
            "schema": metrics_doc["schema"],
            "latency": metrics_doc["latency"],
            "workers_latency": metrics_doc["workers_latency"],
            "workers_reporting": metrics_doc["workers_reporting"],
            "counters": metrics_doc["counters"],
        },
    }


def synthetic_journeys(
    routes: Sequence[str], journeys: int, window: float
) -> List[object]:
    """A deterministic feed of closed journeys with varying window counts.

    The number of journeys per window cycles, so consecutive windows
    carry different per-route counts and the estimator emits real
    (non-zero) deltas — a constant feed would fold to silence and the
    measured rate would skip the emission path entirely.
    """
    from repro.stream import ClosedJourney

    base_slots = max(4, 4 * len(routes))
    events: List[object] = []
    window_index = 0
    while len(events) < journeys:
        slots = base_slots + (window_index % (len(routes) + 1))
        for slot in range(slots):
            if len(events) >= journeys:
                break
            route = routes[slot % len(routes)]
            end = window_index * window + (slot + 1) * window / (slots + 1)
            events.append(
                ClosedJourney(
                    bus_id=f"bus-{slot:03d}",
                    route=route,
                    segment_id=f"{route}#{window_index:03d}",
                    start_time=max(0.0, end - 600.0),
                    end_time=end,
                    samples=20,
                )
            )
        window_index += 1
    return events


def run_stream_tier(
    artifact: ScenarioArtifact,
    pool: Sequence[Sequence[object]],
    backend: str,
    workers: int,
    concurrency: int,
    requests: int,
    journeys: int,
    refresh_reps: int,
) -> Dict[str, object]:
    """The streaming tier: fold rate, patch-vs-recompile, swap blip.

    Three measurements back the streaming pipeline's claims:

    1. **Fold rate** — a synthetic feed of closed journeys over the
       artifact's route labels folds through a
       :class:`~repro.stream.WindowedEstimator`; records journeys/s
       and the deltas emitted.
    2. **Patch vs recompile** — the same traffic deltas applied via
       :class:`~repro.stream.StreamRefresher` in both modes.  The
       digests must agree (bit-identity); the snapshot records the
       median seconds of each and the incremental speedup.
    3. **Swap blip** — a live fleet under load, measured in a baseline
       window and again while a background thread hot-swaps the
       default shard continuously; the p99 of both windows and their
       ratio quantify the swap-induced tail-latency blip.
    """
    import threading

    from repro.serve import (
        FleetConfig,
        FleetThread,
        PlacementFleet,
        RetryPolicy,
        local_worker_factory,
    )
    from repro.stream import StreamRefresher, TrafficDelta, WindowedEstimator

    routes = [
        flow.label for flow in artifact.scenario.flows if flow.label
    ][:8]
    if not routes:
        raise RuntimeError("stream tier needs labeled flows to map routes")
    passengers = 25.0

    # --- 1. fold rate -------------------------------------------------
    window = 3600.0
    events = synthetic_journeys(routes, journeys, window)
    estimator = WindowedEstimator(window)
    deltas_emitted = 0
    t0 = time.perf_counter()
    for event in events:
        deltas_emitted += len(estimator.observe(event))
    deltas_emitted += len(estimator.drain())
    fold_seconds = time.perf_counter() - t0
    fold = {
        "journeys": len(events),
        "routes": len(routes),
        "seconds": fold_seconds,
        "journeys_per_s": (
            len(events) / fold_seconds if fold_seconds else 0.0
        ),
        "deltas_emitted": deltas_emitted,
    }

    # --- 2. patch vs recompile ----------------------------------------
    refresh_deltas = [
        TrafficDelta(
            route=route, count=index + 2,
            window_start=0.0, window_end=window,
        )
        for index, route in enumerate(routes[:3])
    ]
    patch_times: List[float] = []
    recompile_times: List[float] = []
    digests: Dict[str, str] = {}
    for mode, times in (
        ("patch", patch_times), ("recompile", recompile_times)
    ):
        for _ in range(refresh_reps):
            refresher = StreamRefresher(
                artifact, passengers_per_bus=passengers
            )
            result = refresher.refresh(refresh_deltas, mode=mode)
            if not result.changed:
                raise RuntimeError("stream tier refresh produced no change")
            times.append(result.seconds)
            digests[mode] = result.new_digest
    flows_changed = len(refresh_deltas)
    patch_seconds = statistics.median(patch_times)
    recompile_seconds = statistics.median(recompile_times)
    refresh = {
        "reps": refresh_reps,
        "flows_changed": flows_changed,
        "patch_seconds": patch_seconds,
        "recompile_seconds": recompile_seconds,
        "patch_speedup": (
            recompile_seconds / patch_seconds if patch_seconds else 0.0
        ),
        "digests_agree": digests["patch"] == digests["recompile"],
    }

    # --- 3. swap-induced p99 blip -------------------------------------
    def factory_for(version: ScenarioArtifact):
        return local_worker_factory(
            lambda: QueryEngine(version, cache_size=0)
        )

    config = FleetConfig(
        workers=workers,
        max_inflight=max(128, 2 * concurrency),
        timeout=10.0,
        retry=RetryPolicy(retries=3, backoff=0.02, backoff_cap=0.2),
        seed=0,
    )
    fleet = PlacementFleet(
        factory_for(artifact), digest=artifact.digest, config=config
    )
    stop = threading.Event()
    swap_seconds: List[float] = []

    with FleetThread(fleet) as handle:
        run_level(  # warm-up outside the timed window
            handle.port, concurrency, concurrency * 2, pool, backend
        )
        baseline = run_level(
            handle.port, concurrency, requests // 2, pool, backend,
            keep_latencies=True,
        )

        refresher = StreamRefresher(
            artifact,
            fleet=fleet,
            worker_factory_for=factory_for,
            passengers_per_bus=passengers,
        )

        def flipper() -> None:
            flip = 0
            while not stop.is_set():
                result = refresher.refresh(
                    [
                        TrafficDelta(
                            route=routes[0],
                            count=1 if flip % 2 == 0 else -1,
                            window_start=window * flip,
                            window_end=window * (flip + 1),
                        )
                    ]
                )
                if result.swap is not None:
                    swap_seconds.append(float(result.swap["seconds"]))
                flip += 1
                stop.wait(0.02)

        swapper = threading.Thread(target=flipper, name="bench-swapper")
        swapper.start()
        try:
            under_swap = run_level(
                handle.port, concurrency, requests - requests // 2, pool,
                backend, keep_latencies=True,
            )
        finally:
            stop.set()
            swapper.join(timeout=60.0)

    attempted = int(baseline["requests"]) + int(baseline["errors"]) + int(
        under_swap["requests"]
    ) + int(under_swap["errors"])
    errors = int(baseline["errors"]) + int(under_swap["errors"])
    baseline_p99 = float(baseline["p99_ms"])
    swap = {
        "workers": workers,
        "concurrency": concurrency,
        "requests": int(baseline["requests"]) + int(under_swap["requests"]),
        "errors": errors,
        "availability": (
            1.0 - errors / attempted if attempted else 0.0
        ),
        "swaps": len(swap_seconds),
        "swap_seconds_p50": (
            statistics.median(swap_seconds) if swap_seconds else 0.0
        ),
        "baseline_throughput_rps": baseline["throughput_rps"],
        "under_swap_throughput_rps": under_swap["throughput_rps"],
        "baseline_p99_ms": baseline_p99,
        "under_swap_p99_ms": under_swap["p99_ms"],
        "p99_blip_ratio": (
            float(under_swap["p99_ms"]) / baseline_p99
            if baseline_p99 else 0.0
        ),
    }
    return {"mode": "stream", "fold": fold, "refresh": refresh, "swap": swap}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_serve.json"))
    parser.add_argument(
        "--requests", type=int, default=400,
        help="requests per (level, mode) pair (default: 400)",
    )
    parser.add_argument(
        "--levels", default="1,2,4,8,16",
        help="comma-separated concurrency levels",
    )
    parser.add_argument("--pool", type=int, default=4,
                        help="hot-placement pool size")
    parser.add_argument("--k", type=int, default=5,
                        help="sites per evaluated placement")
    parser.add_argument("--scale", default="paper",
                        choices=("paper", "small"))
    parser.add_argument(
        "--backend", default="python", choices=("python", "numpy"),
        help="evaluation backend for the workload (default: python — "
        "evaluation cost is what the batcher's dedup amortizes)",
    )
    parser.add_argument("--window", type=float, default=0.001,
                        help="batching window in seconds for batched mode")
    parser.add_argument("--fleet-workers", type=int, default=4,
                        help="worker replicas in the fleet tier")
    parser.add_argument("--fleet-concurrency", type=int, default=64,
                        help="client threads driving the fleet tier")
    parser.add_argument("--fleet-requests", type=int, default=1600,
                        help="total requests in the fleet tier")
    parser.add_argument("--shm-workers", type=int, default=4,
                        help="subprocess workers in the shm_fleet tier")
    parser.add_argument("--shm-concurrency", type=int, default=256,
                        help="client threads driving the shm_fleet tier")
    parser.add_argument("--shm-requests", type=int, default=8192,
                        help="total requests in the shm_fleet tier")
    parser.add_argument("--stream-workers", type=int, default=2,
                        help="worker replicas in the stream tier's fleet")
    parser.add_argument("--stream-concurrency", type=int, default=16,
                        help="client threads driving the stream tier")
    parser.add_argument(
        "--stream-requests", type=int, default=800,
        help="total requests across the stream tier's two windows",
    )
    parser.add_argument(
        "--stream-journeys", type=int, default=20000,
        help="synthetic closed journeys folded through the estimator",
    )
    parser.add_argument(
        "--stream-refresh-reps", type=int, default=5,
        help="repetitions of the patch/recompile refresh timing",
    )
    args = parser.parse_args()
    levels = [int(v) for v in args.levels.split(",") if v.strip()]

    scenario = build_scenario(args.scale)
    artifact = ScenarioArtifact.compile(scenario)
    pool = hot_placements(QueryEngine(artifact), args.pool, args.k)
    print(
        f"artifact {artifact.digest[:12]}: {artifact.stats['incidences']} "
        f"incidences; pool of {len(pool)} hot placements (k={args.k})"
    )

    results: List[Dict[str, object]] = []
    throughput: Dict[str, Dict[int, float]] = {"batched": {}, "unbatched": {}}
    for mode, batch_kwargs in (
        ("batched", {"batch_window": args.window, "max_batch": 256}),
        ("unbatched", {"batch_window": 0.0, "max_batch": 1}),
    ):
        for concurrency in levels:
            # Fresh engine per run: the result LRU must not serve one
            # mode's numbers to the other (identical requests recur by
            # design in this workload), and batching tallies start at 0.
            engine = QueryEngine(artifact, cache_size=0)
            with ServerThread(
                engine, max_inflight=max(64, 4 * concurrency), **batch_kwargs
            ) as handle:
                # One warm-up round outside the timed window.
                run_level(
                    handle.port, concurrency, concurrency * 4, pool,
                    args.backend,
                )
                level = run_level(
                    handle.port, concurrency, args.requests, pool,
                    args.backend,
                )
                level["mode"] = mode
                level["batching"] = handle.client().healthz()["batching"]
                results.append(level)
                throughput[mode][concurrency] = float(
                    level["throughput_rps"]
                )
                print(
                    f"{mode:>9} c={concurrency:<3} "
                    f"{level['throughput_rps']:8.1f} req/s  "
                    f"p50={level['p50_ms']:6.2f}ms "
                    f"p95={level['p95_ms']:6.2f}ms "
                    f"p99={level['p99_ms']:6.2f}ms "
                    f"(errors={level['errors']})"
                )

    fleet_tier = run_fleet_tier(
        artifact,
        pool,
        args.backend,
        workers=args.fleet_workers,
        concurrency=args.fleet_concurrency,
        requests=args.fleet_requests,
    )
    print(
        f"    fleet c={fleet_tier['concurrency']:<3} "
        f"{fleet_tier['throughput_rps']:8.1f} req/s  "
        f"p50={fleet_tier['p50_ms']:6.2f}ms "
        f"p99={fleet_tier['p99_ms']:6.2f}ms "
        f"(workers={fleet_tier['workers']}, "
        f"respawns={fleet_tier['respawns']}, "
        f"errors={fleet_tier['errors']})"
    )

    shm_tier = run_shm_fleet_tier(
        artifact,
        pool,
        args.backend,
        workers=args.shm_workers,
        concurrency=args.shm_concurrency,
        requests=args.shm_requests,
    )
    print(
        f"shm_fleet c={shm_tier['concurrency']:<3} "
        f"{shm_tier['throughput_rps']:8.1f} req/s  "
        f"p95={shm_tier['p95_ms']:6.2f}ms "
        f"p99={shm_tier['p99_ms']:6.2f}ms "
        f"(workers={shm_tier['workers']}, errors={shm_tier['errors']}, "
        f"attach={shm_tier['attach_seconds'] * 1000:.1f}ms vs "
        f"load={shm_tier['load_seconds'] * 1000:.1f}ms, "
        f"restore-growth={shm_tier['total_restore_private_delta_bytes']}B "
        f"over a {shm_tier['artifact_nbytes']}B segment)"
    )

    stream_tier = run_stream_tier(
        artifact,
        pool,
        args.backend,
        workers=args.stream_workers,
        concurrency=args.stream_concurrency,
        requests=args.stream_requests,
        journeys=args.stream_journeys,
        refresh_reps=args.stream_refresh_reps,
    )
    print(
        f"   stream fold {stream_tier['fold']['journeys_per_s']:10.0f} "
        f"journeys/s ({stream_tier['fold']['deltas_emitted']} deltas); "
        f"patch={stream_tier['refresh']['patch_seconds'] * 1000:.1f}ms vs "
        f"recompile={stream_tier['refresh']['recompile_seconds'] * 1000:.1f}ms "
        f"({stream_tier['refresh']['patch_speedup']:.1f}x); "
        f"swaps={stream_tier['swap']['swaps']} "
        f"p99 {stream_tier['swap']['baseline_p99_ms']:.2f}ms -> "
        f"{stream_tier['swap']['under_swap_p99_ms']:.2f}ms "
        f"(blip {stream_tier['swap']['p99_blip_ratio']:.2f}x, "
        f"errors={stream_tier['swap']['errors']})"
    )

    speedup = {
        str(c): throughput["batched"][c] / throughput["unbatched"][c]
        for c in levels
        if throughput["unbatched"].get(c)
    }
    snapshot = {
        "schema": "rapflow-bench-serve/5",
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "scale": args.scale,
        "backend": args.backend,
        "batch_window_s": args.window,
        "requests_per_level": args.requests,
        "pool_size": len(pool),
        "placement_k": args.k,
        "levels": results,
        "batching_speedup": speedup,
        "fleet": fleet_tier,
        "shm_fleet": shm_tier,
        "stream": stream_tier,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out_path}")
    for concurrency, ratio in sorted(
        ((int(c), r) for c, r in speedup.items())
    ):
        print(f"  batching speedup @ c={concurrency:<3}: {ratio:5.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
