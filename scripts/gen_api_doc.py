#!/usr/bin/env python3
"""Regenerate docs/api.md from the package exports.

Run from the repository root: ``python scripts/gen_api_doc.py``.
"""

import importlib
import inspect
import io

SUBPACKAGES = [
    "repro", "repro.graphs", "repro.core", "repro.algorithms",
    "repro.manhattan", "repro.traces", "repro.experiments",
    "repro.analysis", "repro.sim", "repro.viz", "repro.extensions",
    "repro.obs", "repro.serve", "repro.stream",
]


def generate() -> str:
    out = io.StringIO()
    out.write("# API overview\n\n")
    out.write(
        "Auto-generated from the package exports "
        "(`python scripts/gen_api_doc.py` regenerates it).\n"
    )
    for name in SUBPACKAGES:
        module = importlib.import_module(name)
        exports = [
            e for e in getattr(module, "__all__", []) if not e.startswith("_")
        ]
        if not exports:
            continue
        first_line = (module.__doc__ or "").strip().splitlines()[0]
        out.write(f"\n## `{name}`\n\n{first_line}\n\n")
        out.write("| symbol | kind | summary |\n|---|---|---|\n")
        for export in exports:
            if export in ("errors", "__version__"):
                continue
            obj = getattr(module, export)
            if inspect.isclass(obj):
                kind = "class"
            elif inspect.isfunction(obj):
                kind = "function"
            elif isinstance(obj, (int, float, str, tuple, dict)):
                kind = "constant"
            else:
                kind = "object"
            doc = (inspect.getdoc(obj) or "").strip().splitlines()
            summary = (doc[0] if doc else "").replace("|", "\\|")
            out.write(f"| `{export}` | {kind} | {summary} |\n")
    return out.getvalue()


if __name__ == "__main__":
    with open("docs/api.md", "w") as handle:
        handle.write(generate())
    print("wrote docs/api.md")
