#!/usr/bin/env python3
"""Benchmark-trajectory harness: archive per-bench medians per commit.

Runs the core benchmark files (``benchmarks/bench_algorithms.py`` and
``benchmarks/bench_scaling.py``) under pytest-benchmark at the small
trace scale, extracts the median runtime of every bench, and writes
``BENCH_core.json`` — one snapshot of {bench name, median seconds,
backend, git SHA} per invocation — so successive commits accumulate a
performance trajectory that CI can archive and compare.

The backend-paired benches (``test_greedy_backend_k10``) additionally
yield python-vs-numpy speedups per greedy variant, printed to stdout and
summarized as their geometric mean (``greedy_placement_speedup``).

When pytest-benchmark is unavailable the harness falls back to a
perf_counter timing loop over the same greedy backend pairs, marking the
snapshot's ``source`` accordingly.

Every snapshot also carries ``obs_counters``: per-greedy-variant work
counters (gain evaluations, CELF heap pops, lazy-skip ratio) captured
under an :class:`repro.obs.ObsContext`, so algorithmic-work regressions
are visible in the trajectory even when wall-clock medians are noisy.

Usage::

    PYTHONPATH=src python scripts/bench_trajectory.py [--out BENCH_core.json]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import statistics
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILES = (
    "benchmarks/bench_algorithms.py",
    "benchmarks/bench_scaling.py",
)
GREEDY_ALGORITHMS = (
    "greedy-coverage",
    "composite-greedy",
    "marginal-greedy",
    "lazy-greedy",
)


def git_sha() -> str:
    """Current commit SHA (``unknown`` outside a git checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return out.stdout.strip()


def _bench_env(scale: str) -> Dict[str, str]:
    env = dict(os.environ)
    env["RAPFLOW_BENCH_SCALE"] = scale
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def have_pytest_benchmark() -> bool:
    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        return False
    return True


def run_pytest_benchmarks(scale: str) -> List[Dict[str, object]]:
    """Run the bench files under pytest-benchmark; return bench records."""
    with tempfile.TemporaryDirectory() as tmp:
        report = pathlib.Path(tmp) / "report.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *BENCH_FILES,
            "-q",
            "-o",
            "addopts=",
            "--benchmark-min-rounds",
            "7",
            "--benchmark-json",
            str(report),
        ]
        completed = subprocess.run(cmd, cwd=REPO_ROOT, env=_bench_env(scale))
        if completed.returncode != 0:
            raise SystemExit(
                f"benchmark run failed with exit code {completed.returncode}"
            )
        payload = json.loads(report.read_text())
    records: List[Dict[str, object]] = []
    for bench in payload.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        records.append(
            {
                "name": bench["name"],
                "median_seconds": bench["stats"]["median"],
                "backend": extra.get("backend"),
                "algorithm": extra.get("algorithm"),
                "scale": extra.get("scale", scale),
            }
        )
    return records


def _dublin_scenario(scale: str):
    """The shared Dublin bench scenario (packed index pre-warmed)."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.core import LinearUtility, Scenario
    from repro.experiments import (
        LocationClass,
        TraceProvider,
        classify_intersections,
        locations_of_class,
    )

    provider = TraceProvider(scale=scale)
    bundle = provider.get("dublin")
    classes = classify_intersections(bundle.network, bundle.flows)
    shop = locations_of_class(classes, LocationClass.CITY)[0]
    scenario = Scenario(
        bundle.network, bundle.flows, shop, LinearUtility(20_000.0)
    )
    scenario.coverage.packed()
    return scenario


def run_fallback_timers(scale: str) -> List[Dict[str, object]]:
    """Minimal stand-in when pytest-benchmark is missing.

    Times only the greedy backend pairs (the speedup-bearing benches)
    with a perf_counter loop on the same Dublin scenario the benchmark
    module uses.
    """
    scenario = _dublin_scenario(scale)
    from repro.algorithms import algorithm_by_name

    k = min(10, len(scenario.candidate_sites))

    records: List[Dict[str, object]] = []
    for name in GREEDY_ALGORITHMS:
        for backend in ("python", "numpy"):
            algorithm = algorithm_by_name(name, backend=backend)
            algorithm.select(scenario, k)  # warm caches
            samples: List[float] = []
            for _ in range(75):
                start = time.perf_counter()
                algorithm.select(scenario, k)
                samples.append(time.perf_counter() - start)
            records.append(
                {
                    "name": f"test_greedy_backend_k10[{name}-{backend}]",
                    "median_seconds": statistics.median(samples),
                    "backend": backend,
                    "algorithm": name,
                    "scale": scale,
                }
            )
    return records


def obs_counter_snapshot(scale: str) -> Dict[str, Dict[str, float]]:
    """Per-algorithm observability counters on the shared Dublin scenario.

    Runs each greedy variant (numpy backend, the default) once under an
    :class:`repro.obs.ObsContext` and records the work counters — gain
    evaluations, CELF heap pops, lazy refreshes/skips — plus the derived
    ``lazy_skip_ratio`` (fraction of heap candidates a CELF round did
    *not* rescan: ``lazy_skips / (lazy_skips + lazy_refreshes)``).
    """
    scenario = _dublin_scenario(scale)
    from repro import obs
    from repro.algorithms import algorithm_by_name

    k = min(10, len(scenario.candidate_sites))
    snapshot: Dict[str, Dict[str, float]] = {}
    for name in GREEDY_ALGORITHMS:
        algorithm = algorithm_by_name(name, backend="numpy")
        with obs.ObsContext(label=f"bench {name}") as ctx:
            algorithm.select(scenario, k)
        counters = ctx.counters
        entry: Dict[str, float] = {
            "iterations": float(counters.get("algorithm.iterations", 0)),
            "gain_evaluations": float(counters.get("gain.evaluations", 0)),
        }
        pops = counters.get("celf.heap_pops", 0)
        if pops:
            refreshes = counters.get("celf.lazy_refreshes", 0)
            skips = counters.get("celf.lazy_skips", 0)
            entry["celf_heap_pops"] = float(pops)
            entry["celf_lazy_refreshes"] = float(refreshes)
            entry["celf_lazy_skips"] = float(skips)
            scanned = skips + refreshes
            if scanned:
                entry["lazy_skip_ratio"] = skips / scanned
        snapshot[name] = entry
    return snapshot


def backend_speedups(
    records: List[Dict[str, object]],
) -> Dict[str, float]:
    """Per-algorithm python/numpy median ratios from the paired benches."""
    medians: Dict[tuple, float] = {}
    for record in records:
        if record.get("backend") and record.get("algorithm"):
            key = (str(record["algorithm"]), str(record["backend"]))
            medians[key] = float(record["median_seconds"])  # type: ignore[arg-type]
    speedups: Dict[str, float] = {}
    for algorithm in GREEDY_ALGORITHMS:
        python = medians.get((algorithm, "python"))
        numpy = medians.get((algorithm, "numpy"))
        if python and numpy:
            speedups[algorithm] = python / numpy
    return speedups


def geometric_mean(values: List[float]) -> Optional[float]:
    if not values:
        return None
    return math.exp(sum(math.log(value) for value in values) / len(values))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_core.json"),
        help="output path for the trajectory snapshot",
    )
    parser.add_argument(
        "--scale",
        default=os.environ.get("RAPFLOW_BENCH_SCALE", "small"),
        choices=("small", "paper"),
        help="trace scale to benchmark at (default: small)",
    )
    args = parser.parse_args(argv)

    if have_pytest_benchmark():
        source = "pytest-benchmark"
        records = run_pytest_benchmarks(args.scale)
    else:
        source = "fallback-timer"
        records = run_fallback_timers(args.scale)

    speedups = backend_speedups(records)
    summary = geometric_mean(list(speedups.values()))
    obs_counters = obs_counter_snapshot(args.scale)
    snapshot = {
        "schema": "rapflow-bench-trajectory/1",
        "git_sha": git_sha(),
        "scale": args.scale,
        "source": source,
        "benches": records,
        "backend_speedups": speedups,
        "greedy_placement_speedup": summary,
        "obs_counters": obs_counters,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")

    print(f"wrote {len(records)} bench medians to {out_path}")
    for algorithm, speedup in sorted(speedups.items()):
        print(f"  {algorithm}: numpy is {speedup:.2f}x faster than python")
    if summary is not None:
        print(
            f"greedy placement speedup (geometric mean over "
            f"{len(speedups)} variants): {summary:.2f}x"
        )
    for algorithm, entry in sorted(obs_counters.items()):
        ratio = entry.get("lazy_skip_ratio")
        detail = f", lazy-skip ratio {ratio:.2f}" if ratio is not None else ""
        print(
            f"  {algorithm}: {entry['gain_evaluations']:.0f} gain "
            f"evaluations{detail}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
