#!/usr/bin/env python3
"""Check the observability layer's disabled-mode overhead contract.

The instrumented hot paths (``repro.core.kernel``, the greedy
algorithms) promise to cost < 5% extra when no
:class:`repro.obs.ObsContext` is active: every hook is one module-global
read plus a ``None`` check.  This script measures that promise instead
of trusting it.

Method: time ``select()`` for each greedy variant on the shared Dublin
bench scenario in two configurations, interleaved sample-by-sample so
machine drift hits both equally:

* **shipped** — the code as imported, hooks present but no context
  active (the configuration every ordinary library call runs in);
* **stubbed** — the module-level hooks in ``repro.obs`` monkeypatched
  to bare no-ops (no global read, no ``None`` check), approximating the
  code with the instrumentation compiled out.

The per-variant overhead is ``median(shipped) / median(stubbed)``; the
check fails when the geometric mean across variants exceeds the
threshold (default 1.05).  CI runs this non-blocking but loud.

Usage::

    PYTHONPATH=src python scripts/check_obs_overhead.py \
        [--threshold 1.05] [--samples 60] [--scale small] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import statistics
import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GREEDY_ALGORITHMS = (
    "greedy-coverage",
    "composite-greedy",
    "marginal-greedy",
    "lazy-greedy",
)


def _scenario(scale: str):
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.core import LinearUtility, Scenario
    from repro.experiments import (
        LocationClass,
        TraceProvider,
        classify_intersections,
        locations_of_class,
    )

    provider = TraceProvider(scale=scale)
    bundle = provider.get("dublin")
    classes = classify_intersections(bundle.network, bundle.flows)
    shop = locations_of_class(classes, LocationClass.CITY)[0]
    scenario = Scenario(
        bundle.network, bundle.flows, shop, LinearUtility(20_000.0)
    )
    scenario.coverage.packed()
    return scenario


@contextmanager
def stubbed_hooks() -> Iterator[None]:
    """Replace the ``repro.obs`` module hooks with bare no-ops."""
    from contextlib import nullcontext

    from repro import obs

    saved = {
        name: getattr(obs, name)
        for name in ("active", "span", "count", "count_many", "gauge")
    }
    null = nullcontext()
    try:
        obs.active = lambda: None
        obs.span = lambda name, **attrs: null
        obs.count = lambda name, value=1: None
        obs.count_many = lambda counters: None
        obs.gauge = lambda name, value: None
        yield
    finally:
        for name, hook in saved.items():
            setattr(obs, name, hook)


def measure(
    scale: str, samples: int
) -> Dict[str, Dict[str, float]]:
    """Interleaved shipped-vs-stubbed medians per greedy variant."""
    scenario = _scenario(scale)
    from repro.algorithms import algorithm_by_name

    k = min(10, len(scenario.candidate_sites))
    results: Dict[str, Dict[str, float]] = {}
    for name in GREEDY_ALGORITHMS:
        algorithm = algorithm_by_name(name, backend="numpy")
        algorithm.select(scenario, k)  # warm caches
        shipped: List[float] = []
        stubbed: List[float] = []
        for _ in range(samples):
            start = time.perf_counter()
            algorithm.select(scenario, k)
            shipped.append(time.perf_counter() - start)
            with stubbed_hooks():
                start = time.perf_counter()
                algorithm.select(scenario, k)
                stubbed.append(time.perf_counter() - start)
        shipped_median = statistics.median(shipped)
        stubbed_median = statistics.median(stubbed)
        results[name] = {
            "shipped_median_seconds": shipped_median,
            "stubbed_median_seconds": stubbed_median,
            "overhead_ratio": shipped_median / stubbed_median,
        }
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold", type=float, default=1.05,
        help="maximum acceptable shipped/stubbed ratio (default: 1.05)",
    )
    parser.add_argument(
        "--samples", type=int, default=60,
        help="timing samples per configuration per variant (default: 60)",
    )
    parser.add_argument(
        "--scale", choices=("small", "paper"), default="small",
        help="trace scale to measure at (default: small)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the measurements as JSON",
    )
    args = parser.parse_args(argv)

    results = measure(args.scale, args.samples)
    ratios = [entry["overhead_ratio"] for entry in results.values()]
    mean_ratio = math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    for name, entry in sorted(results.items()):
        print(
            f"  {name:<18} shipped {entry['shipped_median_seconds']*1e3:8.3f} ms"
            f"  stubbed {entry['stubbed_median_seconds']*1e3:8.3f} ms"
            f"  ratio {entry['overhead_ratio']:.3f}"
        )
    print(
        f"disabled-mode overhead (geometric mean over {len(ratios)} "
        f"variants): {mean_ratio:.3f} (threshold {args.threshold:.2f})"
    )
    if args.json:
        payload = {
            "schema": "rapflow-obs-overhead/1",
            "scale": args.scale,
            "samples": args.samples,
            "threshold": args.threshold,
            "variants": results,
            "geometric_mean_ratio": mean_ratio,
        }
        pathlib.Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote measurements to {args.json}")
    if mean_ratio > args.threshold:
        print(
            "FAIL: disabled-mode observability overhead exceeds the "
            "contract", file=sys.stderr,
        )
        return 1
    print("OK: disabled-mode observability overhead within contract")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
