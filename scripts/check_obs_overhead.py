#!/usr/bin/env python3
"""Check the observability layer's disabled-mode overhead contract.

The instrumented hot paths (``repro.core.kernel``, the greedy
algorithms) promise to cost < 5% extra when no
:class:`repro.obs.ObsContext` is active: every hook is one module-global
read plus a ``None`` check.  This script measures that promise instead
of trusting it.

Method: time ``select()`` for each greedy variant on the shared Dublin
bench scenario in two configurations, interleaved sample-by-sample so
machine drift hits both equally:

* **shipped** — the code as imported, hooks present but no context
  active (the configuration every ordinary library call runs in);
* **stubbed** — the module-level hooks in ``repro.obs`` monkeypatched
  to bare no-ops (no global read, no ``None`` check), approximating the
  code with the instrumentation compiled out.

The per-variant overhead is ``median(shipped) / median(stubbed)``; the
check fails when the geometric mean across variants exceeds the
threshold (default 1.05).  CI runs this non-blocking but loud.

The serving hot path is measured the same way: a one-worker fleet
(client -> front -> worker -> engine round trip) timed **disabled**
(tracing machinery present, no ``trace_dir``) against **stubbed**
hooks, interleaved sample-by-sample, with the same <5% gate on the
ratio.  A third, tracing-**enabled** configuration (``trace_dir`` set,
spans written every hop) is measured and reported but not gated —
turning tracing on is allowed to cost something; shipping it off must
be near-free.

Usage::

    PYTHONPATH=src python scripts/check_obs_overhead.py \
        [--threshold 1.05] [--samples 60] [--serve-samples 150] \
        [--scale small] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import statistics
import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GREEDY_ALGORITHMS = (
    "greedy-coverage",
    "composite-greedy",
    "marginal-greedy",
    "lazy-greedy",
)


def _scenario(scale: str):
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.core import LinearUtility, Scenario
    from repro.experiments import (
        LocationClass,
        TraceProvider,
        classify_intersections,
        locations_of_class,
    )

    provider = TraceProvider(scale=scale)
    bundle = provider.get("dublin")
    classes = classify_intersections(bundle.network, bundle.flows)
    shop = locations_of_class(classes, LocationClass.CITY)[0]
    scenario = Scenario(
        bundle.network, bundle.flows, shop, LinearUtility(20_000.0)
    )
    scenario.coverage.packed()
    return scenario


@contextmanager
def stubbed_hooks() -> Iterator[None]:
    """Replace the ``repro.obs`` module hooks with bare no-ops."""
    from contextlib import nullcontext

    from repro import obs

    saved = {
        name: getattr(obs, name)
        for name in ("active", "span", "count", "count_many", "gauge")
    }
    null = nullcontext()
    try:
        obs.active = lambda: None
        obs.span = lambda name, **attrs: null
        obs.count = lambda name, value=1: None
        obs.count_many = lambda counters: None
        obs.gauge = lambda name, value: None
        yield
    finally:
        for name, hook in saved.items():
            setattr(obs, name, hook)


def measure(
    scale: str, samples: int
) -> Dict[str, Dict[str, float]]:
    """Interleaved shipped-vs-stubbed medians per greedy variant."""
    scenario = _scenario(scale)
    from repro.algorithms import algorithm_by_name

    k = min(10, len(scenario.candidate_sites))
    results: Dict[str, Dict[str, float]] = {}
    for name in GREEDY_ALGORITHMS:
        algorithm = algorithm_by_name(name, backend="numpy")
        algorithm.select(scenario, k)  # warm caches
        shipped: List[float] = []
        stubbed: List[float] = []
        for _ in range(samples):
            start = time.perf_counter()
            algorithm.select(scenario, k)
            shipped.append(time.perf_counter() - start)
            with stubbed_hooks():
                start = time.perf_counter()
                algorithm.select(scenario, k)
                stubbed.append(time.perf_counter() - start)
        shipped_median = statistics.median(shipped)
        stubbed_median = statistics.median(stubbed)
        results[name] = {
            "shipped_median_seconds": shipped_median,
            "stubbed_median_seconds": stubbed_median,
            "overhead_ratio": shipped_median / stubbed_median,
        }
    return results


def measure_serve(
    scale: str, samples: int
) -> Dict[str, float]:
    """Front->worker round-trip medians: disabled vs stubbed vs traced.

    ``disabled`` is the shipped configuration (trace hooks present, no
    ``trace_dir``); ``stubbed`` monkeypatches the obs hooks to no-ops,
    approximating instrumentation compiled out; ``traced`` turns the
    span plane fully on.  Only disabled/stubbed is gated.
    """
    import tempfile

    from repro.serve import (
        FleetConfig,
        FleetThread,
        PlacementFleet,
        QueryEngine,
        ScenarioArtifact,
        local_worker_factory,
    )
    from repro.serve.engine import encode_site

    scenario = _scenario(scale)
    artifact = ScenarioArtifact.compile(scenario)
    placement = [
        [encode_site(site) for site in scenario.candidate_sites[:2]]
    ]

    def build_fleet(trace_dir: Optional[str]) -> PlacementFleet:
        config = FleetConfig(workers=1, trace_dir=trace_dir)
        return PlacementFleet(
            local_worker_factory(
                lambda: QueryEngine(artifact),
                **({"trace_dir": trace_dir} if trace_dir else {}),
            ),
            digest=artifact.digest,
            config=config,
        )

    def sample_round_trip(client) -> float:
        start = time.perf_counter()
        client.evaluate(placement)
        return time.perf_counter() - start

    disabled: List[float] = []
    stubbed: List[float] = []
    with FleetThread(build_fleet(None)) as handle:
        client = handle.client()
        for _ in range(8):
            client.evaluate(placement)  # warm connections and caches
        for _ in range(samples):
            disabled.append(sample_round_trip(client))
            with stubbed_hooks():
                stubbed.append(sample_round_trip(client))

    traced: List[float] = []
    trace_dir = tempfile.mkdtemp(prefix="rapflow-obs-overhead-")
    with FleetThread(build_fleet(trace_dir)) as handle:
        client = handle.client()
        for _ in range(8):
            client.evaluate(placement)
        for _ in range(samples):
            traced.append(sample_round_trip(client))

    disabled_median = statistics.median(disabled)
    stubbed_median = statistics.median(stubbed)
    traced_median = statistics.median(traced)
    return {
        "disabled_median_seconds": disabled_median,
        "stubbed_median_seconds": stubbed_median,
        "traced_median_seconds": traced_median,
        "overhead_ratio": disabled_median / stubbed_median,
        "traced_ratio": traced_median / stubbed_median,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold", type=float, default=1.05,
        help="maximum acceptable shipped/stubbed ratio (default: 1.05)",
    )
    parser.add_argument(
        "--samples", type=int, default=60,
        help="timing samples per configuration per variant (default: 60)",
    )
    parser.add_argument(
        "--serve-samples", type=int, default=150,
        help="round-trip samples per serving configuration "
        "(default: 150; 0 skips the serve-path check)",
    )
    parser.add_argument(
        "--scale", choices=("small", "paper"), default="small",
        help="trace scale to measure at (default: small)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the measurements as JSON",
    )
    args = parser.parse_args(argv)

    results = measure(args.scale, args.samples)
    ratios = [entry["overhead_ratio"] for entry in results.values()]
    mean_ratio = math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    for name, entry in sorted(results.items()):
        print(
            f"  {name:<18} shipped {entry['shipped_median_seconds']*1e3:8.3f} ms"
            f"  stubbed {entry['stubbed_median_seconds']*1e3:8.3f} ms"
            f"  ratio {entry['overhead_ratio']:.3f}"
        )
    print(
        f"disabled-mode overhead (geometric mean over {len(ratios)} "
        f"variants): {mean_ratio:.3f} (threshold {args.threshold:.2f})"
    )

    serve_path = None
    if args.serve_samples > 0:
        serve_path = measure_serve(args.scale, args.serve_samples)
        print(
            f"  serve round trip    "
            f"disabled {serve_path['disabled_median_seconds']*1e3:8.3f} ms"
            f"  stubbed {serve_path['stubbed_median_seconds']*1e3:8.3f} ms"
            f"  ratio {serve_path['overhead_ratio']:.3f}"
        )
        print(
            f"  tracing enabled     "
            f"traced   {serve_path['traced_median_seconds']*1e3:8.3f} ms"
            f"  ratio {serve_path['traced_ratio']:.3f} (informational)"
        )

    if args.json:
        payload = {
            "schema": "rapflow-obs-overhead/1",
            "scale": args.scale,
            "samples": args.samples,
            "threshold": args.threshold,
            "variants": results,
            "geometric_mean_ratio": mean_ratio,
            "serve_path": serve_path,
        }
        pathlib.Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote measurements to {args.json}")
    failed = False
    if mean_ratio > args.threshold:
        print(
            "FAIL: disabled-mode observability overhead exceeds the "
            "contract", file=sys.stderr,
        )
        failed = True
    if serve_path is not None and serve_path["overhead_ratio"] > args.threshold:
        print(
            "FAIL: serve-path disabled-mode tracing overhead exceeds "
            "the contract", file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK: disabled-mode observability overhead within contract")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
